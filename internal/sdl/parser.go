package sdl

import (
	"fmt"

	"repro/internal/schema"
)

// ParseSchema parses a relational schema from the DSL. The result is
// validated before being returned.
func ParseSchema(input string) (*schema.Schema, error) {
	lx, err := lex(input)
	if err != nil {
		return nil, err
	}
	s := schema.New()
	for lx.peek().kind != tokEOF {
		kw, err := lx.ident()
		if err != nil {
			return nil, err
		}
		switch kw {
		case "relation":
			if err := parseRelation(lx, s); err != nil {
				return nil, err
			}
		case "candidate":
			if err := parseCandidate(lx, s); err != nil {
				return nil, err
			}
		case "ind":
			if err := parseIND(lx, s); err != nil {
				return nil, err
			}
		case "nna":
			name, err := lx.ident()
			if err != nil {
				return nil, err
			}
			attrs, err := lx.identList("(", ")")
			if err != nil {
				return nil, err
			}
			s.Nulls = append(s.Nulls, schema.NNA(name, attrs...))
		case "nullexist":
			if err := parseNullExist(lx, s); err != nil {
				return nil, err
			}
		case "nullsync":
			name, err := lx.ident()
			if err != nil {
				return nil, err
			}
			attrs, err := lx.identList("(", ")")
			if err != nil {
				return nil, err
			}
			s.Nulls = append(s.Nulls, schema.NewNullSync(name, attrs...))
		case "partnull":
			if err := parsePartNull(lx, s); err != nil {
				return nil, err
			}
		case "totaleq":
			if err := parseTotalEq(lx, s); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("sdl: unknown statement %q (want relation, candidate, ind, nna, nullexist, nullsync, partnull, or totaleq)", kw)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sdl: %w", err)
	}
	return s, nil
}

// parseRelation handles:
//
//	relation NAME (A dom, B dom, ...) key (A, ...)
func parseRelation(lx *lexer, s *schema.Schema) error {
	name, err := lx.ident()
	if err != nil {
		return err
	}
	if err := lx.expect("("); err != nil {
		return err
	}
	var attrs []schema.Attribute
	for {
		an, err := lx.ident()
		if err != nil {
			return err
		}
		dom, err := lx.ident()
		if err != nil {
			return err
		}
		attrs = append(attrs, schema.Attribute{Name: an, Domain: dom})
		if lx.accept(")") {
			break
		}
		if err := lx.expect(","); err != nil {
			return err
		}
	}
	if err := lx.expect("key"); err != nil {
		return err
	}
	key, err := lx.identList("(", ")")
	if err != nil {
		return err
	}
	s.AddScheme(schema.NewScheme(name, attrs, key))
	return nil
}

// parseCandidate handles: candidate NAME (A, ...)
func parseCandidate(lx *lexer, s *schema.Schema) error {
	name, err := lx.ident()
	if err != nil {
		return err
	}
	attrs, err := lx.identList("(", ")")
	if err != nil {
		return err
	}
	rs := s.Scheme(name)
	if rs == nil {
		return fmt.Errorf("sdl: candidate key for unknown relation %s", name)
	}
	rs.CandidateKeys = append(rs.CandidateKeys, attrs)
	return nil
}

// parseIND handles: ind LEFT[A, ...] <= RIGHT[B, ...]
func parseIND(lx *lexer, s *schema.Schema) error {
	left, err := lx.ident()
	if err != nil {
		return err
	}
	leftAttrs, err := lx.identList("[", "]")
	if err != nil {
		return err
	}
	if err := lx.expect("<="); err != nil {
		return err
	}
	right, err := lx.ident()
	if err != nil {
		return err
	}
	rightAttrs, err := lx.identList("[", "]")
	if err != nil {
		return err
	}
	s.INDs = append(s.INDs, schema.NewIND(left, leftAttrs, right, rightAttrs))
	return nil
}

// parseNullExist handles: nullexist NAME (Y...) <= (Z...)
func parseNullExist(lx *lexer, s *schema.Schema) error {
	name, err := lx.ident()
	if err != nil {
		return err
	}
	y, err := lx.identList("(", ")")
	if err != nil {
		return err
	}
	if err := lx.expect("<="); err != nil {
		return err
	}
	z, err := lx.identList("(", ")")
	if err != nil {
		return err
	}
	s.Nulls = append(s.Nulls, schema.NewNullExistence(name, y, z))
	return nil
}

// parsePartNull handles: partnull NAME {A, ...} {B, ...} ...
func parsePartNull(lx *lexer, s *schema.Schema) error {
	name, err := lx.ident()
	if err != nil {
		return err
	}
	var sets [][]string
	for lx.peek().text == "{" {
		set, err := lx.identList("{", "}")
		if err != nil {
			return err
		}
		sets = append(sets, set)
	}
	if len(sets) == 0 {
		return fmt.Errorf("sdl: partnull %s needs at least one attribute set", name)
	}
	s.Nulls = append(s.Nulls, schema.NewPartNull(name, sets...))
	return nil
}

// parseTotalEq handles: totaleq NAME (Y...) = (Z...)
func parseTotalEq(lx *lexer, s *schema.Schema) error {
	name, err := lx.ident()
	if err != nil {
		return err
	}
	y, err := lx.identList("(", ")")
	if err != nil {
		return err
	}
	if err := lx.expect("="); err != nil {
		return err
	}
	z, err := lx.identList("(", ")")
	if err != nil {
		return err
	}
	s.Nulls = append(s.Nulls, schema.NewTotalEquality(name, y, z))
	return nil
}
