// Package sdl implements a small schema-definition language for the
// relational schemas (R, F ∪ I ∪ N) and EER schemas of the reproduction —
// the textual input format of the cmd/relmerge and cmd/sdt tools, written in
// a notation close to the paper's:
//
//	relation OFFER (O.C.NR course_nr, O.D.NAME dept_name) key (O.C.NR)
//	candidate OFFER (O.D.NAME)
//	ind TEACH[T.C.NR] <= OFFER[O.C.NR]
//	nna OFFER (O.C.NR, O.D.NAME)
//	nullexist COURSE' (T.C.NR, T.F.SSN) <= (O.C.NR, O.D.NAME)
//	nullsync COURSE' (O.C.NR, O.D.NAME)
//	partnull ASSIGN {O.CN, O.DN} {T.CN, T.FN}
//	totaleq COURSE' (C.NR) = (O.C.NR)
//
// and for EER schemas:
//
//	entity PERSON prefix P attrs (P.SSN ssn) id (P.SSN) copybase (SSN)
//	specialization FACULTY of PERSON prefix F
//	weak ROOM of BUILDING prefix R attrs (R.NR roomnr) discriminator (R.NR)
//	relationship OFFER prefix O parts (COURSE many, DEPARTMENT one)
//
// Lines starting with '#' are comments. Attribute names may contain dots and
// primes, matching the paper's qualified names. In EER attribute lists a
// trailing '?' on a domain marks the attribute nullable and a trailing '*'
// marks it multi-valued.
package sdl

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokPunct // one of ( ) [ ] { } , = ? or the two-char <=
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes the whole input up front; comments and blank lines are
// skipped.
type lexer struct {
	toks []token
	pos  int
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) ||
		r == '.' || r == '_' || r == '\'' || r == '-' || r == '+'
}

func lex(input string) (*lexer, error) {
	var toks []token
	for lineNo, line := range strings.Split(input, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		col := 0
		runes := []rune(line)
		for col < len(runes) {
			r := runes[col]
			switch {
			case unicode.IsSpace(r):
				col++
			case isIdentRune(r):
				start := col
				for col < len(runes) && isIdentRune(runes[col]) {
					col++
				}
				toks = append(toks, token{tokIdent, string(runes[start:col]), lineNo + 1, start + 1})
			case r == '<' && col+1 < len(runes) && runes[col+1] == '=':
				toks = append(toks, token{tokPunct, "<=", lineNo + 1, col + 1})
				col += 2
			case strings.ContainsRune("()[]{},=?*", r):
				toks = append(toks, token{tokPunct, string(r), lineNo + 1, col + 1})
				col++
			default:
				return nil, fmt.Errorf("sdl: line %d col %d: unexpected character %q", lineNo+1, col+1, r)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF})
	return &lexer{toks: toks}, nil
}

func (lx *lexer) peek() token { return lx.toks[lx.pos] }

func (lx *lexer) next() token {
	t := lx.toks[lx.pos]
	if t.kind != tokEOF {
		lx.pos++
	}
	return t
}

// accept consumes the next token if it matches the punctuation or keyword.
func (lx *lexer) accept(text string) bool {
	if lx.peek().kind != tokEOF && lx.peek().text == text {
		lx.next()
		return true
	}
	return false
}

func (lx *lexer) expect(text string) error {
	t := lx.next()
	if t.text != text || t.kind == tokEOF {
		return fmt.Errorf("sdl: line %d: expected %q, found %s", t.line, text, t)
	}
	return nil
}

func (lx *lexer) ident() (string, error) {
	t := lx.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sdl: line %d: expected identifier, found %s", t.line, t)
	}
	return t.text, nil
}

// identList parses ( A, B, ... ) with the given delimiters; the list may be
// empty.
func (lx *lexer) identList(open, close string) ([]string, error) {
	if err := lx.expect(open); err != nil {
		return nil, err
	}
	var out []string
	if lx.accept(close) {
		return out, nil
	}
	for {
		id, err := lx.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if lx.accept(close) {
			return out, nil
		}
		if err := lx.expect(","); err != nil {
			return nil, err
		}
	}
}
