package sdl

import (
	"testing"

	"repro/internal/figures"
)

func BenchmarkParseSchemaFig3(b *testing.B) {
	text := PrintSchema(figures.Fig3())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseSchema(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrintSchemaFig3(b *testing.B) {
	s := figures.Fig3()
	for i := 0; i < b.N; i++ {
		PrintSchema(s)
	}
}

func BenchmarkParseEERFig7(b *testing.B) {
	text := `
entity PERSON prefix P attrs (P.SSN ssn) id (P.SSN) copybase (SSN)
specialization FACULTY of PERSON prefix F
specialization STUDENT of PERSON prefix S
entity COURSE prefix C attrs (C.NR course_nr) id (C.NR)
entity DEPARTMENT prefix D attrs (D.NAME dept_name) id (D.NAME)
relationship OFFER prefix O parts (COURSE many, DEPARTMENT one)
relationship TEACH prefix T parts (OFFER many, FACULTY one)
relationship ASSIST prefix A parts (OFFER many, STUDENT one)
`
	for i := 0; i < b.N; i++ {
		if _, err := ParseEER(text); err != nil {
			b.Fatal(err)
		}
	}
}
