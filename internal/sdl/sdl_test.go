package sdl

import (
	"strings"
	"testing"

	"repro/internal/eer"
	"repro/internal/figures"
	"repro/internal/schema"
	"repro/internal/translate"
)

const fig2DSL = `
# Figure 2 of the paper, with the linking dependency.
relation OFFER (O.CN course_nr, O.DN dept_name) key (O.CN)
relation TEACH (T.CN course_nr, T.FN ssn) key (T.CN)
ind TEACH[T.CN] <= OFFER[O.CN]
nna OFFER (O.CN, O.DN)
nna TEACH (T.CN, T.FN)
`

func TestParseSchemaFig2(t *testing.T) {
	s, err := ParseSchema(fig2DSL)
	if err != nil {
		t.Fatal(err)
	}
	want := figures.Fig2(true)
	if !s.SameConstraints(want) {
		t.Errorf("parsed constraints differ:\n%s\nvs\n%s", s, want)
	}
	offer := s.Scheme("OFFER")
	if offer == nil || offer.Domain("O.DN") != "dept_name" {
		t.Error("OFFER attributes")
	}
	if !schema.EqualAttrLists(offer.PrimaryKey, []string{"O.CN"}) {
		t.Error("OFFER key")
	}
}

func TestParseSchemaAllConstraintKinds(t *testing.T) {
	s, err := ParseSchema(`
relation R (A d, B d, C d, D d) key (A)
candidate R (B)
nna R (A)
nullexist R (C) <= (B)
nullsync R (B, C)
partnull R {B} {C, D}
totaleq R (B) = (C)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Nulls) != 5 {
		t.Fatalf("parsed %d null constraints, want 5", len(s.Nulls))
	}
	kinds := map[string]bool{}
	for _, nc := range s.Nulls {
		switch nc.(type) {
		case schema.NullExistence:
			kinds["ne"] = true
		case schema.NullSync:
			kinds["ns"] = true
		case schema.PartNull:
			kinds["pn"] = true
		case schema.TotalEquality:
			kinds["te"] = true
		}
	}
	if len(kinds) != 4 {
		t.Errorf("kinds = %v", kinds)
	}
	if len(s.Scheme("R").CandidateKeys) != 1 {
		t.Error("candidate key lost")
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	for name, s := range map[string]*schema.Schema{
		"fig2": figures.Fig2(true),
		"fig3": figures.Fig3(),
		"fig1": figures.Fig1RS(),
	} {
		text := PrintSchema(s)
		back, err := ParseSchema(text)
		if err != nil {
			t.Fatalf("%s: %v\n%s", name, err, text)
		}
		if !back.SameConstraints(s) {
			t.Errorf("%s: constraints not preserved", name)
		}
		if !schema.EqualAttrLists(back.SchemeNames(), s.SchemeNames()) {
			t.Errorf("%s: scheme order not preserved", name)
		}
		// Idempotent rendering.
		if PrintSchema(back) != text {
			t.Errorf("%s: printer not idempotent", name)
		}
	}
}

func TestParseSchemaErrors(t *testing.T) {
	cases := []string{
		"relation",             // truncated
		"relation R",           // missing attrs
		"relation R (A d) key", // missing key list
		"frobnicate X",         // unknown statement
		"relation R (A d) key (A)\nind R[A] <= MISSING[B]", // validation
		"candidate X (A)", // unknown relation
		"partnull R",      // no sets
		"relation R (A d) key (A)\nnullexist R (A) (B)", // missing <=
		"relation R (A d) key (A)\ntotaleq R (A) (B)",   // missing =
		"relation R (A d, key (A)",                      // bad attr list
		"relation R (A d) key (A) @",                    // bad rune
	}
	for _, c := range cases {
		if _, err := ParseSchema(c); err == nil {
			t.Errorf("ParseSchema(%q) should fail", c)
		}
	}
}

const fig7DSL = `
entity PERSON prefix P attrs (P.SSN ssn) id (P.SSN) copybase (SSN)
specialization FACULTY of PERSON prefix F
specialization STUDENT of PERSON prefix S
entity COURSE prefix C attrs (C.NR course_nr) id (C.NR)
entity DEPARTMENT prefix D attrs (D.NAME dept_name) id (D.NAME)
relationship OFFER prefix O parts (COURSE many, DEPARTMENT one)
relationship TEACH prefix T parts (OFFER many, FACULTY one)
relationship ASSIST prefix A parts (OFFER many, STUDENT one)
`

func TestParseEERFig7(t *testing.T) {
	es, err := ParseEER(fig7DSL)
	if err != nil {
		t.Fatal(err)
	}
	// Its translation must be figure 3, which proves the parse is faithful.
	rs, err := translate.MS(es)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.SameConstraints(figures.Fig3()) {
		t.Errorf("translated constraints differ from figure 3:\n%s", rs)
	}
}

func TestParseEERNullableAndWeak(t *testing.T) {
	es, err := ParseEER(`
entity B prefix B attrs (B.N bname) id (B.N) copybase (N)
weak ROOM of B prefix R attrs (R.NR roomnr, R.NOTE text?) discriminator (R.NR)
`)
	if err != nil {
		t.Fatal(err)
	}
	room := es.Entity("ROOM")
	if room == nil || !room.Weak || room.Owner != "B" {
		t.Fatal("weak entity not parsed")
	}
	if !room.OwnAttrs[1].Nullable {
		t.Error("nullable marker lost")
	}
}

func TestEERRoundTrip(t *testing.T) {
	for name, es := range map[string]*eer.Schema{
		"fig1":    eer.Fig1(),
		"fig7":    eer.Fig7(),
		"fig8iii": eer.Fig8iii(),
		"fig8iv":  eer.Fig8iv(),
	} {
		text := PrintEER(es)
		back, err := ParseEER(text)
		if err != nil {
			t.Fatalf("%s: %v\n%s", name, err, text)
		}
		// Compare through the relational translation (a faithful functional
		// equality on everything the DSL represents).
		a, err := translate.MS(es)
		if err != nil {
			t.Fatal(err)
		}
		b, err := translate.MS(back)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !a.SameConstraints(b) || !schema.EqualAttrLists(a.SchemeNames(), b.SchemeNames()) {
			t.Errorf("%s: EER round trip not faithful", name)
		}
		if PrintEER(back) != text {
			t.Errorf("%s: printer not idempotent", name)
		}
	}
}

func TestParseEERErrors(t *testing.T) {
	cases := []string{
		"entity",                           // truncated
		"banana X",                         // unknown statement
		"specialization F PERSON",          // missing 'of'
		"weak W of B prefix W attrs (A d)", // missing discriminator
		"relationship R prefix R parts (A sideways)", // bad cardinality
		"relationship R parts (X many, Y one)",       // unknown participants (validation)
		"entity E prefix E attrs (A d) id (B)",       // id not own attr (validation)
	}
	for _, c := range cases {
		if _, err := ParseEER(c); err == nil {
			t.Errorf("ParseEER(%q) should fail", c)
		}
	}
}

func TestLexerDetails(t *testing.T) {
	// Primes and dots are identifier characters (COURSE' and O.C.NR).
	s, err := ParseSchema(`
relation COURSE' (C.NR course_nr, O.C.NR course_nr) key (C.NR)
totaleq COURSE' (C.NR) = (O.C.NR)
`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Scheme("COURSE'") == nil {
		t.Error("primed name should parse")
	}
	// Comments strip to end of line.
	if _, err := ParseSchema("# only a comment\n"); err != nil {
		t.Error(err)
	}
	// Unexpected character reports position.
	_, err = ParseSchema("relation R (A d) key (A) %")
	if err == nil || !strings.Contains(err.Error(), "unexpected character") {
		t.Errorf("err = %v", err)
	}
}
