package sdl

import (
	"strings"
	"testing"

	"repro/internal/figures"
	"repro/internal/relation"
	"repro/internal/state"
)

func TestParseStateBasic(t *testing.T) {
	s := figures.Fig2(true)
	db, err := ParseState(s, `
# two offers, one taught
insert OFFER (c1, math)
insert OFFER (c2, cs)
insert TEACH (c1, smith)
`)
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("OFFER").Len() != 2 || db.Relation("TEACH").Len() != 1 {
		t.Fatalf("parsed state wrong: %s", db)
	}
	if err := state.Consistent(s, db); err != nil {
		t.Fatal(err)
	}
}

func TestParseStateNulls(t *testing.T) {
	s := figures.Fig1RSPrime()
	db, err := ParseState(s, "insert WORKS (e1, null, null)")
	if err != nil {
		t.Fatal(err)
	}
	tup := db.Relation("WORKS").Tuples()[0]
	if !tup[1].IsNull() || !tup[2].IsNull() {
		t.Errorf("nulls not parsed: %v", tup)
	}
	if tup[0].IsNull() {
		t.Error("e1 should be a value")
	}
}

func TestParseStateErrors(t *testing.T) {
	s := figures.Fig2(true)
	cases := []string{
		"insert NOPE (a)",        // unknown relation
		"insert OFFER (a)",       // arity
		"insert OFFER (a, b, c)", // arity
		"delete OFFER (a, b)",    // unknown statement
		"insert OFFER a, b",      // missing parens
	}
	for _, c := range cases {
		if _, err := ParseState(s, c); err == nil {
			t.Errorf("ParseState(%q) should fail", c)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	s := figures.Fig2(true)
	db := state.New(s)
	db.Relation("OFFER").Add(relation.Tuple{relation.NewString("c1"), relation.NewString("math")})
	db.Relation("TEACH").Add(relation.Tuple{relation.NewString("c1"), relation.Null()})

	text := PrintState(s, db)
	if !strings.Contains(text, "insert TEACH (c1, null)") {
		t.Errorf("PrintState = %q", text)
	}
	back, err := ParseState(s, text)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(db) {
		t.Error("state round trip failed")
	}
	// Deterministic and ordered by schema declaration.
	if PrintState(s, back) != text {
		t.Error("PrintState not idempotent")
	}
	if strings.Index(text, "OFFER") > strings.Index(text, "TEACH") {
		t.Error("schema order not respected")
	}
}
