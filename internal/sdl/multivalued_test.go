package sdl

import (
	"strings"
	"testing"

	"repro/internal/translate"
)

func TestParseEERMultiValued(t *testing.T) {
	es, err := ParseEER(`
entity PERSON prefix P attrs (P.SSN ssn, P.PHONE phone*) id (P.SSN) copybase (SSN)
`)
	if err != nil {
		t.Fatal(err)
	}
	p := es.Entity("PERSON")
	if !p.OwnAttrs[1].MultiValued {
		t.Fatal("multi-valued marker lost")
	}
	rs, err := translate.MS(es)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Scheme("P.PHONE") == nil {
		t.Error("multi-valued relation missing from translation")
	}

	// Round trip preserves the marker.
	text := PrintEER(es)
	if !strings.Contains(text, "P.PHONE phone*") {
		t.Errorf("printer lost the marker: %q", text)
	}
	back, err := ParseEER(text)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Entity("PERSON").OwnAttrs[1].MultiValued {
		t.Error("round trip lost the marker")
	}
}

func TestParseEERNullableMultiValuedCombined(t *testing.T) {
	es, err := ParseEER(`
entity E prefix E attrs (E.ID d, E.X x?*) id (E.ID)
`)
	if err != nil {
		t.Fatal(err)
	}
	a := es.Entity("E").OwnAttrs[1]
	if !a.Nullable || !a.MultiValued {
		t.Errorf("markers = %+v", a)
	}
}
