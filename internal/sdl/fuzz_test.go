package sdl

import (
	"testing"

	"repro/internal/figures"
)

// Native fuzz targets: the parsers must never panic, and anything they
// accept must survive a print/parse round trip.

func FuzzParseSchema(f *testing.F) {
	f.Add("relation R (A d) key (A)\nnna R (A)")
	f.Add(PrintSchema(figures.Fig3()))
	f.Add("ind A[X] <= B[Y]")
	f.Add("totaleq R (A) = (B)\npartnull R {A} {B}")
	f.Add("# comment only")
	f.Add("relation R (A d, B e) key (A)\nnullexist R (B) <= (A)")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ParseSchema(input)
		if err != nil {
			return
		}
		// Accepted input must round-trip.
		text := PrintSchema(s)
		back, err := ParseSchema(text)
		if err != nil {
			t.Fatalf("printed schema does not re-parse: %v\n%s", err, text)
		}
		if !back.SameConstraints(s) {
			t.Fatalf("round trip changed constraints:\n%s\nvs\n%s", s, back)
		}
	})
}

func FuzzParseEER(f *testing.F) {
	f.Add("entity E prefix E attrs (E.ID d) id (E.ID)")
	f.Add(`entity P prefix P attrs (P.ID d) id (P.ID) copybase (ID)
specialization S of P prefix S
relationship R prefix R parts (S many, P one)`)
	f.Add("weak W of B prefix W attrs (W.D d) discriminator (W.D)")
	f.Fuzz(func(t *testing.T, input string) {
		es, err := ParseEER(input)
		if err != nil {
			return
		}
		text := PrintEER(es)
		if _, err := ParseEER(text); err != nil {
			t.Fatalf("printed EER schema does not re-parse: %v\n%s", err, text)
		}
	})
}

func FuzzParseState(f *testing.F) {
	f.Add("insert OFFER (c1, math)")
	f.Add("insert TEACH (c1, null)")
	f.Fuzz(func(t *testing.T, input string) {
		s := figures.Fig2(true)
		db, err := ParseState(s, input)
		if err != nil {
			return
		}
		text := PrintState(s, db)
		back, err := ParseState(s, text)
		if err != nil {
			t.Fatalf("printed state does not re-parse: %v\n%s", err, text)
		}
		if !back.Equal(db) {
			t.Fatal("state round trip changed contents")
		}
	})
}
