package sdl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/state"
)

// ParseState parses a database state for the given schema from the data DSL:
// one insert statement per tuple, values positional in the scheme's
// attribute order, the keyword null for a null value:
//
//	insert OFFER (c1, math)
//	insert TEACH (c1, null)
//
// The parsed state is NOT consistency-checked; callers decide whether to
// enforce it (cmd/relmerge reports violations explicitly).
func ParseState(s *schema.Schema, input string) (*state.DB, error) {
	lx, err := lex(input)
	if err != nil {
		return nil, err
	}
	db := state.New(s)
	for lx.peek().kind != tokEOF {
		if err := lx.expect("insert"); err != nil {
			return nil, err
		}
		name, err := lx.ident()
		if err != nil {
			return nil, err
		}
		rs := s.Scheme(name)
		if rs == nil {
			return nil, fmt.Errorf("sdl: insert into unknown relation %s", name)
		}
		vals, err := lx.identList("(", ")")
		if err != nil {
			return nil, err
		}
		if len(vals) != len(rs.Attrs) {
			return nil, fmt.Errorf("sdl: insert into %s has %d values, scheme has %d attributes",
				name, len(vals), len(rs.Attrs))
		}
		tup := make(relation.Tuple, len(vals))
		for i, v := range vals {
			if v == "null" {
				tup[i] = relation.Null()
			} else {
				tup[i] = relation.NewString(v)
			}
		}
		db.Relation(name).Add(tup)
	}
	return db, nil
}

// PrintState renders a database state in the data DSL, deterministically
// (schemes in schema order, tuples in canonical order), so that
// ParseState(s, PrintState(s, db)) reproduces db.
func PrintState(s *schema.Schema, db *state.DB) string {
	var b strings.Builder
	names := make([]string, 0, len(db.Relations))
	order := make(map[string]int, len(s.Relations))
	for i, rs := range s.Relations {
		order[rs.Name] = i
	}
	for n := range db.Relations {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := order[names[i]]
		oj, jok := order[names[j]]
		if iok && jok {
			return oi < oj
		}
		if iok != jok {
			return iok
		}
		return names[i] < names[j]
	})
	for _, n := range names {
		for _, t := range db.Relations[n].Sorted() {
			vals := make([]string, len(t))
			for i, v := range t {
				if v.IsNull() {
					vals[i] = "null"
				} else {
					vals[i] = v.String()
				}
			}
			fmt.Fprintf(&b, "insert %s (%s)\n", n, strings.Join(vals, ", "))
		}
	}
	return b.String()
}
