package sdl

import (
	"testing"

	"repro/internal/schema"
)

// Exhaustive malformed-input table covering the parser error branches: every
// statement kind truncated at each clause boundary must fail cleanly (no
// panic, non-nil error).
func TestParserErrorBranches(t *testing.T) {
	schemaCases := []string{
		"relation",
		"relation R",
		"relation R (",
		"relation R (A",
		"relation R (A d",
		"relation R (A d,",
		"relation R (A d)",
		"relation R (A d) key",
		"relation R (A d) key (",
		"relation R (A d) key (A",
		"candidate",
		"candidate R",
		"ind",
		"ind L",
		"ind L[",
		"ind L[A",
		"ind L[A]",
		"ind L[A] <=",
		"ind L[A] <= R",
		"ind L[A] <= R[",
		"nna",
		"nna R",
		"nullexist",
		"nullexist R",
		"nullexist R (A)",
		"nullexist R (A) <=",
		"nullsync",
		"nullsync R",
		"partnull",
		"partnull R {",
		"partnull R {A",
		"totaleq",
		"totaleq R",
		"totaleq R (A)",
		"totaleq R (A) =",
	}
	for _, c := range schemaCases {
		if _, err := ParseSchema(c); err == nil {
			t.Errorf("ParseSchema(%q) should fail", c)
		}
	}

	eerCases := []string{
		"entity",
		"entity E prefix",
		"entity E attrs",
		"entity E attrs (",
		"entity E attrs (A",
		"entity E attrs (A d,",
		"entity E id",
		"entity E id (",
		"entity E attrs (A d) id (A) copybase",
		"specialization",
		"specialization S",
		"specialization S of",
		"weak",
		"weak W",
		"weak W of",
		"weak W of B discriminator",
		"weak W of B attrs (A d) discriminator (",
		"relationship",
		"relationship R",
		"relationship R parts",
		"relationship R parts (",
		"relationship R parts (X",
		"relationship R parts (X many",
		"relationship R parts (X many, Y",
		"relationship R prefix R parts (X many, Y one) attrs (",
	}
	for _, c := range eerCases {
		if _, err := ParseEER(c); err == nil {
			t.Errorf("ParseEER(%q) should fail", c)
		}
	}

	dataCases := []string{
		"insert",
		"insert OFFER",
		"insert OFFER (",
		"insert OFFER (a",
	}
	for _, c := range dataCases {
		if _, err := ParseState(figuresFig2(), c); err == nil {
			t.Errorf("ParseState(%q) should fail", c)
		}
	}
}

// figuresFig2 builds a tiny schema for the data-statement cases.
func figuresFig2() *schema.Schema {
	s, err := ParseSchema(`
relation OFFER (O.CN course_nr, O.DN dept_name) key (O.CN)
nna OFFER (O.CN, O.DN)
`)
	if err != nil {
		panic(err)
	}
	return s
}
