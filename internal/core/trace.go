package core

import (
	"fmt"

	"repro/internal/schema"
)

// Trace returns a human-readable account of what Merge and each Remove did,
// step by step in the numbering of Definitions 4.1 and 4.3 — the explanation
// a schema designer needs to audit the rewrite. Lines are appended as the
// procedures run.
func (m *MergedScheme) Trace() []string {
	return append([]string(nil), m.trace...)
}

func (m *MergedScheme) tracef(format string, args ...any) {
	m.trace = append(m.trace, fmt.Sprintf(format, args...))
}

// traceMerge records the Definition 4.1 provenance after the schema rewrite
// is complete.
func (m *MergedScheme) traceMerge() {
	if m.Synthetic {
		m.tracef("Def 3.1: no member satisfies Prop 3.1; synthesized key-relation with key (%s)", joinAttrList(m.Km))
	} else {
		m.tracef("Prop 3.1: %s is a key-relation of the merge set", m.KeyRelation)
	}
	m.tracef("Def 4.1 step 1: %s(%s) with key (%s)", m.Name, joinAttrList(m.FullAttrs), joinAttrList(m.Km))
	m.tracef("Def 4.1 step 2: key dependencies of the members replaced by %s: %s → Xm", m.Name, joinAttrList(m.Km))
	m.tracef("Def 4.1 step 3(a): nulls-not-allowed on Xk: ∅ ⊑ %s", joinAttrList(m.Xk))
	for _, mb := range m.Members {
		if mb.Name == m.KeyRelation {
			continue
		}
		m.tracef("Def 4.1 step 3(b): total-equality %s =⊥ %s (member %s)", joinAttrList(m.Km), joinAttrList(mb.Key), mb.Name)
		if len(mb.Attrs) > 1 {
			m.tracef("Def 4.1 step 3(c): null-synchronization NS(%s) (member %s)", joinAttrList(mb.Attrs), mb.Name)
		}
	}
	if m.Synthetic {
		m.tracef("Def 4.1 step 3(d): part-null constraint over the %d member attribute sets", len(m.Members))
	}
	for _, nc := range m.Schema.NullsOf(m.Name) {
		if ne, ok := nc.(schema.NullExistence); ok && !ne.IsNNA() {
			m.tracef("Def 4.1 step 3(e): null-existence %s ⊑ %s (from the member-to-member inclusion dependency)",
				joinAttrList(ne.Y), joinAttrList(ne.Z))
		}
	}
	internalDropped := 0
	for _, ind := range m.original.INDs {
		if m.Member(ind.Left) != nil && m.Member(ind.Right) != nil {
			internalDropped++
		}
	}
	m.tracef("Def 4.1 step 4: inclusion dependencies rewritten (%d internal dependencies absorbed, %d remain)",
		internalDropped, len(m.Schema.INDs))
}

// traceRemove records a Definition 4.3 application.
func (m *MergedScheme) traceRemove(mb *Member) {
	m.tracef("Def 4.3 Remove(%s): dropped the key copy of %s from Xm (step 1), re-expressed dependencies via (%s) (steps 2–3), dropped %s =⊥ %s and simplified the null constraints (step 4)",
		joinAttrList(mb.Key), mb.Name, joinAttrList(m.Km), joinAttrList(m.Km), joinAttrList(mb.Key))
}

func joinAttrList(attrs []string) string {
	out := ""
	for i, a := range attrs {
		if i > 0 {
			out += ","
		}
		out += a
	}
	return out
}
