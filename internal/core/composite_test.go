package core

import (
	"math/rand"
	"testing"

	"repro/internal/eer"
	"repro/internal/figures"
	"repro/internal/nullcon"
	"repro/internal/schema"
	"repro/internal/state"
	"repro/internal/translate"
)

// weakSchema builds an EER schema with a weak entity-set (composite key) and
// two attribute-less many-to-one relationship-sets hanging off it — the
// composite-key analogue of figure 8(iv).
func weakSchema(t *testing.T) *schema.Schema {
	t.Helper()
	es := eer.New()
	es.Entities = []*eer.EntitySet{
		{
			Name: "BUILDING", Prefix: "B",
			OwnAttrs:  []eer.Attr{{Name: "B.NAME", Domain: "bname"}},
			ID:        []string{"B.NAME"},
			CopyBases: []string{"NAME"},
		},
		{
			Name: "ROOM", Prefix: "R",
			Weak: true, Owner: "BUILDING",
			OwnAttrs:      []eer.Attr{{Name: "R.NR", Domain: "roomnr"}},
			Discriminator: []string{"R.NR"},
		},
		{
			Name: "JANITOR", Prefix: "J",
			OwnAttrs: []eer.Attr{{Name: "J.ID", Domain: "jid"}},
			ID:       []string{"J.ID"},
		},
		{
			Name: "KEYHOLDER", Prefix: "K",
			OwnAttrs: []eer.Attr{{Name: "K.ID", Domain: "kid"}},
			ID:       []string{"K.ID"},
		},
	}
	es.Relationships = []*eer.RelationshipSet{
		{
			Name: "CLEANS", Prefix: "CL",
			Parts: []eer.Participant{
				{Object: "ROOM", Card: eer.Many},
				{Object: "JANITOR", Card: eer.One},
			},
		},
		{
			Name: "OPENS", Prefix: "OP",
			Parts: []eer.Participant{
				{Object: "ROOM", Card: eer.Many},
				{Object: "KEYHOLDER", Card: eer.One},
			},
		},
	}
	rs, err := translate.MS(es)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// Composite-key merging: ROOM (key R.NAME, R.NR) is the key-relation of
// {ROOM, CLEANS, OPENS}; the key copies are two-attribute sets and still
// removable.
func TestCompositeKeyMerge(t *testing.T) {
	s := weakSchema(t)
	room := s.Scheme("ROOM")
	if len(room.PrimaryKey) != 2 {
		t.Fatalf("ROOM key = %v, want composite", room.PrimaryKey)
	}
	names := []string{"ROOM", "CLEANS", "OPENS"}
	if rk, ok := Prop52(s, names); !ok || rk != "ROOM" {
		t.Fatalf("Prop52 = %q, %v", rk, ok)
	}
	m, err := Merge(s, names, "ROOM'")
	if err != nil {
		t.Fatal(err)
	}
	if m.KeyRelation != "ROOM" {
		t.Fatalf("key-relation = %q", m.KeyRelation)
	}
	// Total-equality constraints pair the composite keys position-wise.
	teCount := 0
	for _, nc := range m.Schema.NullsOf("ROOM'") {
		if te, ok := nc.(schema.TotalEquality); ok {
			teCount++
			if len(te.Y) != 2 || len(te.Z) != 2 {
				t.Errorf("composite TE should have 2 pairs: %v", te)
			}
		}
	}
	if teCount != 2 {
		t.Errorf("TE constraints = %d, want 2", teCount)
	}

	removed := m.RemoveAll()
	if len(removed) != 2 {
		t.Fatalf("removals = %v", removed)
	}
	if !nullcon.OnlyNNA(m.Schema.NullsOf("ROOM'")) {
		t.Errorf("composite Prop. 5.2 merge should be only-NNA: %v", m.Schema.NullsOf("ROOM'"))
	}
	want := []string{"R.NAME", "R.NR", "CL.J.ID", "OP.K.ID"}
	if !schema.EqualAttrLists(m.Schema.Scheme("ROOM'").AttrNames(), want) {
		t.Errorf("ROOM' = %v, want %v", m.Schema.Scheme("ROOM'").AttrNames(), want)
	}
}

// Round trip with composite keys, including the Remove reconstructions.
func TestCompositeKeyRoundTrip(t *testing.T) {
	s := weakSchema(t)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		m, err := Merge(s, []string{"ROOM", "CLEANS", "OPENS"}, "ROOM'")
		if err != nil {
			t.Fatal(err)
		}
		m.RemoveAll()
		db := state.MustGenerate(s, rng, state.GenOptions{
			Rows:    6,
			RowsPer: map[string]int{"CLEANS": 3, "OPENS": 4},
		})
		if !m.RoundTrip(db) {
			t.Fatalf("trial %d: composite-key round trip failed", trial)
		}
		if err := state.Consistent(m.Schema, m.MapState(db)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestMergeWithExplicitKeyRelation(t *testing.T) {
	s := figures.Fig3()
	// COURSE qualifies; explicitly selecting it works.
	m, err := MergeWith(s, []string{"COURSE", "OFFER", "TEACH"}, "COURSE'",
		Options{KeyRelation: "COURSE"})
	if err != nil || m.KeyRelation != "COURSE" {
		t.Fatalf("explicit key-relation: %v / %q", err, m.KeyRelation)
	}
	// OFFER does not qualify for this set.
	if _, err := MergeWith(s, []string{"COURSE", "OFFER", "TEACH"}, "X",
		Options{KeyRelation: "OFFER"}); err == nil {
		t.Error("non-qualifying key-relation must be rejected")
	}
	// Conflicting options.
	if _, err := MergeWith(s, []string{"COURSE", "OFFER"}, "X",
		Options{KeyRelation: "COURSE", ForceSynthetic: true}); err == nil {
		t.Error("conflicting options must be rejected")
	}
}

func TestMergeWithForceSynthetic(t *testing.T) {
	s := figures.Fig2(true) // OFFER qualifies, but we force a synthetic key
	m, err := MergeWith(s, []string{"OFFER", "TEACH"}, "ASSIGN",
		Options{ForceSynthetic: true})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Synthetic || m.KeyRelation != "" {
		t.Fatal("expected a synthetic key-relation")
	}
	// The part-null constraint appears, and the round trip still holds.
	hasPN := false
	for _, nc := range m.Schema.NullsOf("ASSIGN") {
		if _, ok := nc.(schema.PartNull); ok {
			hasPN = true
		}
	}
	if !hasPN {
		t.Error("forced synthetic merge should carry a part-null constraint")
	}
	rng := rand.New(rand.NewSource(3))
	db := state.MustGenerate(s, rng, state.GenOptions{Rows: 5, RowsPer: map[string]int{"TEACH": 3}})
	if !m.RoundTrip(db) {
		t.Error("forced synthetic round trip failed")
	}
}
