package core

import (
	"testing"

	"repro/internal/figures"
	"repro/internal/nullcon"
	"repro/internal/schema"
)

// E10 — Prop. 5.1(i): the syntactic condition agrees with inspection of the
// merge output on the paper's own examples.
func TestProp51KeyBasedCondition(t *testing.T) {
	s := figures.Fig3()

	// Figure 4's merge set: OFFER (not a key-relation of the set) is
	// referenced by ASSIST from outside → non-key-based dependency expected.
	kb, _ := Prop51(s, []string{"COURSE", "OFFER", "TEACH"})
	if kb {
		t.Error("Prop51(i) should fail for the figure 4 merge set")
	}
	m4, _ := Merge(s, []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	if AllINDsKeyBased(m4.Schema) {
		t.Error("figure 4's output should contain a non-key-based dependency")
	}

	// Figure 5's merge set: ASSIST joins the set → all key-based.
	kb, _ = Prop51(s, []string{"COURSE", "OFFER", "TEACH", "ASSIST"})
	if !kb {
		t.Error("Prop51(i) should hold for the figure 5 merge set")
	}
	m5, _ := Merge(s, []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	if !AllINDsKeyBased(m5.Schema) {
		t.Error("figure 5's output should be all key-based")
	}
}

// E10 — Prop. 5.1(i) agreement over many merge sets: the pre-merge condition
// predicts exactly whether the output contains non-key-based dependencies.
func TestProp51AgreesWithMergeOutput(t *testing.T) {
	mergeSets := [][]string{
		{"COURSE", "OFFER"},
		{"COURSE", "OFFER", "TEACH"},
		{"COURSE", "OFFER", "TEACH", "ASSIST"},
		{"COURSE", "OFFER", "ASSIST"},
		{"OFFER", "TEACH"},
		{"OFFER", "TEACH", "ASSIST"},
		{"PERSON", "FACULTY"},
		{"PERSON", "FACULTY", "STUDENT"},
	}
	for _, names := range mergeSets {
		s := figures.Fig3()
		kb, _ := Prop51(s, names)
		m, err := Merge(s, names, "MERGED")
		if err != nil {
			t.Fatalf("%v: %v", names, err)
		}
		if got := AllINDsKeyBased(m.Schema); got != kb {
			t.Errorf("%v: Prop51(i)=%v but output key-based=%v", names, kb, got)
		}
	}
}

// Prop. 5.1(ii): extra candidate keys on a non-key-relation member produce
// nullable candidate keys in the merged scheme.
func TestProp51NonNullKeys(t *testing.T) {
	s := figures.Fig3()
	if _, nn := Prop51(s, []string{"COURSE", "OFFER", "TEACH"}); !nn {
		t.Error("figure 3 members have unique keys: Prop51(ii) should hold")
	}
	s.Scheme("TEACH").CandidateKeys = [][]string{{"T.F.SSN"}}
	if _, nn := Prop51(s, []string{"COURSE", "OFFER", "TEACH"}); nn {
		t.Error("an extra candidate key on TEACH should fail Prop51(ii)")
	}
	m, err := Merge(s, []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	if err != nil {
		t.Fatal(err)
	}
	if len(NullableCandidateKeys(m.Schema, "COURSE'")) == 0 {
		t.Error("merged scheme should carry a nullable candidate key")
	}
	// Extra candidate keys on the key-relation itself are harmless: they stay
	// under the Xk NNA constraint.
	s2 := figures.Fig3()
	s2.AddScheme(schema.NewScheme("CODE",
		[]schema.Attribute{
			{Name: "CD.NR", Domain: figures.DomCourseNr},
			{Name: "CD.ALT", Domain: "alt_code"},
		}, []string{"CD.NR"}))
	s2.Relations[len(s2.Relations)-1].CandidateKeys = [][]string{{"CD.ALT"}}
	s2.Nulls = append(s2.Nulls, schema.NNA("CODE", "CD.NR", "CD.ALT"))
	s2.INDs = append(s2.INDs, schema.NewIND("CODE", []string{"CD.NR"}, "COURSE", []string{"C.NR"}))
	if _, nn := Prop51(s2, []string{"COURSE", "CODE"}); nn {
		t.Error("CODE is not a key-relation of {COURSE, CODE}; its extra key fails Prop51(ii)")
	}
	if _, nn := Prop51(s2, []string{"CODE", "COURSE"}); nn {
		t.Error("order must not matter")
	}
}

// E10 — Prop. 5.2 on the paper's examples: {OFFER, TEACH, ASSIST} qualifies
// with key-relation OFFER; adding COURSE to the set disqualifies it.
func TestProp52OnFig3(t *testing.T) {
	s := figures.Fig3()
	rk, ok := Prop52(s, []string{"OFFER", "TEACH", "ASSIST"})
	if !ok || rk != "OFFER" {
		t.Fatalf("Prop52({OFFER,TEACH,ASSIST}) = %q, %v; want OFFER, true", rk, ok)
	}
	if _, ok := Prop52(s, []string{"COURSE", "OFFER", "TEACH", "ASSIST"}); ok {
		t.Error("Prop52 should fail when COURSE joins the set (TEACH has no dependency into COURSE)")
	}
	if _, ok := Prop52(s, []string{"COURSE", "OFFER", "TEACH"}); ok {
		t.Error("Prop52 should fail for the figure 4 set")
	}
	// {PERSON, FACULTY, STUDENT}: FACULTY and STUDENT have zero non-key
	// attributes, failing condition (2).
	if _, ok := Prop52(s, []string{"PERSON", "FACULTY", "STUDENT"}); ok {
		t.Error("single-attribute members fail Prop52 condition (2)")
	}
}

// Prop. 5.2's conclusion, verified mechanically: merge sets satisfying the
// conditions reduce to only-NNA constraint sets after Merge + RemoveAll, and
// the §5.2 counterexample retains general null constraints.
func TestProp52ConclusionHolds(t *testing.T) {
	s := figures.Fig3()
	m, err := Merge(s, []string{"OFFER", "TEACH", "ASSIST"}, "OFFER'")
	if err != nil {
		t.Fatal(err)
	}
	removed := m.RemoveAll()
	if len(removed) != 2 {
		t.Fatalf("RemoveAll removed %v, want TEACH and ASSIST copies", removed)
	}
	if !nullcon.OnlyNNA(m.Schema.NullsOf("OFFER'")) {
		t.Errorf("Prop52 conclusion: expected only NNA constraints, got %v", m.Schema.NullsOf("OFFER'"))
	}
	rm := m.Schema.Scheme("OFFER'")
	if !schema.EqualAttrLists(rm.AttrNames(), []string{"O.C.NR", "O.D.NAME", "T.F.SSN", "A.S.SSN"}) {
		t.Errorf("OFFER' = %v", rm.AttrNames())
	}
	// NNA covers exactly Xk = {O.C.NR, O.D.NAME}.
	nna := m.Schema.NNAAttrs("OFFER'")
	if !nna["O.C.NR"] || !nna["O.D.NAME"] || nna["T.F.SSN"] || nna["A.S.SSN"] {
		t.Errorf("NNA attrs = %v", nna)
	}

	// Counterexample: the figure 5/6 merge (COURSE in the set) keeps
	// null-existence constraints (figure 6's constraints 2 and 3).
	m2, err := Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	if err != nil {
		t.Fatal(err)
	}
	m2.RemoveAll()
	if nullcon.OnlyNNA(m2.Schema.NullsOf("COURSE''")) {
		t.Error("the figure 6 schema requires general null-existence constraints")
	}
}

// The Prop. 5.2(4) proviso: a member whose key is also a foreign key to an
// external scheme qualifies only when the key-relation shares the dependency.
func TestProp52Condition4Proviso(t *testing.T) {
	build := func(withCounterpart bool) *schema.Schema {
		s := figures.Fig2(true)
		s.AddScheme(schema.NewScheme("CATALOG",
			[]schema.Attribute{{Name: "CAT.CN", Domain: figures.DomCourseNr}},
			[]string{"CAT.CN"}))
		s.Nulls = append(s.Nulls, schema.NNA("CATALOG", "CAT.CN"))
		s.INDs = append(s.INDs, schema.NewIND("TEACH", []string{"T.CN"}, "CATALOG", []string{"CAT.CN"}))
		if withCounterpart {
			s.INDs = append(s.INDs, schema.NewIND("OFFER", []string{"O.CN"}, "CATALOG", []string{"CAT.CN"}))
		}
		return s
	}
	if _, ok := Prop52(build(false), []string{"OFFER", "TEACH"}); ok {
		t.Error("missing Rk counterpart should fail condition (4)")
	}
	rk, ok := Prop52(build(true), []string{"OFFER", "TEACH"})
	if !ok || rk != "OFFER" {
		t.Errorf("Prop52 with counterpart = %q, %v", rk, ok)
	}
	// Mechanical confirmation of the conclusion.
	m, err := Merge(build(true), []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		t.Fatal(err)
	}
	m.RemoveAll()
	if !nullcon.OnlyNNA(m.Schema.NullsOf("ASSIGN")) {
		t.Errorf("expected only NNA, got %v", m.Schema.NullsOf("ASSIGN"))
	}
}

// Prop. 5.2 condition (3): a member referenced by any dependency disqualifies.
func TestProp52Condition3(t *testing.T) {
	s := figures.Fig2(true)
	s.AddScheme(schema.NewScheme("EVAL",
		[]schema.Attribute{
			{Name: "E.CN", Domain: figures.DomCourseNr},
			{Name: "E.SCORE", Domain: "score"},
		}, []string{"E.CN"}))
	s.Nulls = append(s.Nulls, schema.NNA("EVAL", "E.CN", "E.SCORE"))
	s.INDs = append(s.INDs, schema.NewIND("EVAL", []string{"E.CN"}, "TEACH", []string{"T.CN"}))
	if _, ok := Prop52(s, []string{"OFFER", "TEACH"}); ok {
		t.Error("TEACH referenced by EVAL should fail condition (3)")
	}
}

func TestSchemeDepsAndBCNF(t *testing.T) {
	s := figures.Fig3()
	m, err := Merge(s, []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	if err != nil {
		t.Fatal(err)
	}
	deps := SchemeDeps(m.Schema, "COURSE'")
	// Key dependency + 2 total-equality pairs (bidirectional).
	if len(deps) != 5 {
		t.Errorf("SchemeDeps = %d deps, want 5 (1 key + 2×2 TE)", len(deps))
	}
	if !IsSchemeBCNF(m.Schema, "COURSE'") {
		t.Error("COURSE' should be BCNF")
	}
	if IsSchemeBCNF(m.Schema, "NOPE") {
		t.Error("unknown scheme is not BCNF")
	}
	// A deliberately broken scheme: a non-key FD whose LHS is not a
	// candidate key (B → C with key A).
	bad := schema.New()
	bad.AddScheme(schema.NewScheme("R", []schema.Attribute{
		{Name: "A", Domain: "d"}, {Name: "B", Domain: "d"}, {Name: "C", Domain: "d"},
	}, []string{"A"}))
	bad.FDs = append(bad.FDs, schema.NewFD("R", []string{"B"}, []string{"C"}))
	if IsSchemeBCNF(bad, "R") {
		t.Error("B → C with key A violates BCNF")
	}
	if AllBCNF(bad) {
		t.Error("AllBCNF should detect the violation")
	}
}
