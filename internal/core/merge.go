// Package core implements the relation merging technique of Markowitz
// (ICDE 1992): the Merge procedure of Definition 4.1, the attribute
// removability analysis of Definition 4.2, the Remove procedure of
// Definition 4.3, the associated state mappings η/η′ and μ/μ′, and the
// applicability conditions of Propositions 5.1 and 5.2.
//
// Merge rewrites a relational schema RS = (R, F ∪ I ∪ N) by replacing a set
// R̄ of relation-schemes with pairwise-compatible primary keys by a single
// relation-scheme Rm, generating the exact dependency and constraint rewrite
// of the paper (total-equality constraints, null-synchronization sets,
// part-null constraints, inner-relational null-existence constraints, and
// the four-step inclusion-dependency rewrite). Remove then strips attributes
// made redundant by total-equality constraints. Both procedures preserve
// information capacity (Props. 4.1 and 4.2) — verified empirically by this
// package's tests via the state mappings — and Boyce-Codd Normal Form.
package core

import (
	"fmt"

	"repro/internal/keyrel"
	"repro/internal/obs"
	"repro/internal/schema"
)

// Member records one relation-scheme of the merge set R̄: its name, its
// original attribute list Xi, and its original primary key Ki (ordered; the
// positional correspondence with Km drives renamings and total-equality
// constraints).
type Member struct {
	Name  string
	Attrs []string
	Key   []string
}

// MergedScheme is the result of Merge: the rewritten schema, the merged
// relation-scheme's identity, the merge-set metadata needed by Remove and by
// the state mappings, and the record of removals applied so far.
type MergedScheme struct {
	// Schema is the current rewritten schema (RS' after Merge, RS'' after
	// each Remove). It is mutated in place by Remove.
	Schema *schema.Schema
	// Name is the merged relation-scheme Rm.
	Name string
	// Km is the merged primary key (ordered).
	Km []string
	// KeyRelation is the member serving as key-relation Rk, or "" when a
	// synthetic key-relation was created (Rk ∉ R̄).
	KeyRelation string
	// Synthetic reports whether the key-relation was synthesized.
	Synthetic bool
	// Xk is the key-relation's attribute list (equals Km when synthetic).
	Xk []string
	// Members are the R̄ members in merge order, with their original Xi/Ki.
	Members []Member
	// FullAttrs is Xm as produced by Merge, before any Remove.
	FullAttrs []string

	// removals, in application order.
	removals []removal
	original *schema.Schema // RS, for documentation and mapping checks
	trace    []string       // step-by-step provenance (see Trace)
}

type removal struct {
	member Member   // the member whose key copy was removed
	yj     []string // the removed attributes (the member's Ki), in key order
}

// Removals returns the attribute sets removed so far, in application order.
func (m *MergedScheme) Removals() [][]string {
	out := make([][]string, len(m.removals))
	for i, r := range m.removals {
		out[i] = append([]string(nil), r.yj...)
	}
	return out
}

// Original returns the pre-merge schema RS.
func (m *MergedScheme) Original() *schema.Schema { return m.original }

// Member returns the merge-set member record by name, or nil.
func (m *MergedScheme) Member(name string) *Member {
	for i := range m.Members {
		if m.Members[i].Name == name {
			return &m.Members[i]
		}
	}
	return nil
}

// memberByKey returns the member whose original key equals yj as a set.
func (m *MergedScheme) memberByKey(yj []string) *Member {
	for i := range m.Members {
		if schema.EqualAttrSets(m.Members[i].Key, yj) {
			return &m.Members[i]
		}
	}
	return nil
}

func (m *MergedScheme) removedOf(member string) []string {
	for _, r := range m.removals {
		if r.member.Name == member {
			return r.yj
		}
	}
	return nil
}

// kmFor maps an attribute of a member's key to the corresponding Km
// attribute (positional correspondence).
func (m *MergedScheme) kmFor(member *Member, attr string) string {
	for i, k := range member.Key {
		if k == attr {
			return m.Km[i]
		}
	}
	return attr
}

// alignKm returns the Km attributes corresponding position-wise to the given
// subset of a member's key (in the given order).
func (m *MergedScheme) alignKm(member *Member, attrs []string) []string {
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = m.kmFor(member, a)
	}
	return out
}

// Merge applies Definition 4.1 to schema s: the relation-schemes named in
// names (the merge set R̄, in presentation order) are replaced by a new
// relation-scheme mergedName, and F, I, N are rewritten per steps 1–4.
//
// Requirements checked: at least two distinct existing schemes; pairwise
// compatible primary keys; every member attribute covered by a
// nulls-not-allowed constraint (the paper's simplifying assumption); a fresh
// merged name. The key-relation is the first member (in names order)
// satisfying Prop. 3.1; if none qualifies a synthetic key-relation
// Rk(Kk) with fresh attributes mergedName+".K<i>" is used, and a part-null
// constraint is generated per step 3(d).
//
// The input schema is not mutated; the result holds a rewritten clone.
//
// Merge is shorthand for MergeSet(s, names, WithName(mergedName)).
func Merge(s *schema.Schema, names []string, mergedName string) (*MergedScheme, error) {
	return MergeSet(s, names, WithName(mergedName))
}

// Options tune Merge beyond the paper's defaults.
//
// Deprecated: Options predates the functional options of MergeSet; new code
// should pass WithKeyRelation / WithSyntheticKey directly.
type Options struct {
	// KeyRelation names the member to use as the key-relation Rk. It must
	// satisfy the Prop. 3.1 condition; Merge fails otherwise. Empty selects
	// the first qualifying member in names order.
	KeyRelation string
	// ForceSynthetic creates a synthetic key-relation even when a member
	// qualifies (Def. 3.1's "a new relation-scheme Rk(Kk) can be specified").
	ForceSynthetic bool
}

// MergeWith is Merge with explicit Options.
func MergeWith(s *schema.Schema, names []string, mergedName string, opts Options) (*MergedScheme, error) {
	fo := []Option{WithName(mergedName)}
	if opts.KeyRelation != "" {
		fo = append(fo, WithKeyRelation(opts.KeyRelation))
	}
	if opts.ForceSynthetic {
		fo = append(fo, WithSyntheticKey())
	}
	return MergeSet(s, names, fo...)
}

// MergeSet is the canonical Definition 4.1 entry point: it merges the named
// relation-schemes under the given options. Without WithName the merged
// scheme is named after the first member with enough trailing primes to be
// fresh (the paper's R' convention). A tracer attached via WithTrace or a
// context from WithContext receives one span per definition step.
func MergeSet(s *schema.Schema, names []string, opts ...Option) (*MergedScheme, error) {
	cfg := newConfig(opts)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: input schema invalid: %w", err)
	}
	if len(names) < 2 {
		return nil, ErrMergeSetTooSmall
	}
	mergedName := cfg.name
	if mergedName == "" {
		mergedName = names[0] + "'"
		for s.Scheme(mergedName) != nil {
			mergedName += "'"
		}
	}
	ctx, sp := obs.Span(cfg.ctx, "core.Merge")
	defer sp.End()
	sp.SetAttr("merged", mergedName)
	if s.Scheme(mergedName) != nil {
		return nil, fmt.Errorf("%w: %s", ErrNameCollision, mergedName)
	}
	seen := make(map[string]bool, len(names))
	members := make([]Member, 0, len(names))
	for _, n := range names {
		if seen[n] {
			return nil, fmt.Errorf("%w %s", ErrDuplicateMember, n)
		}
		seen[n] = true
		rs := s.Scheme(n)
		if rs == nil {
			return nil, fmt.Errorf("%w %s", ErrUnknownScheme, n)
		}
		members = append(members, Member{Name: n, Attrs: rs.AttrNames(), Key: append([]string(nil), rs.PrimaryKey...)})
	}
	first := s.Scheme(names[0])
	for _, n := range names[1:] {
		if !first.KeyCompatible(s.Scheme(n)) {
			return nil, fmt.Errorf("%w: %s and %s", ErrIncompatibleKeys, names[0], n)
		}
	}
	for _, mb := range members {
		nna := s.NNAAttrs(mb.Name)
		for _, a := range mb.Attrs {
			if !nna[a] {
				return nil, fmt.Errorf("%w: attribute %s of member %s (Merge assumes nulls-not-allowed members, Def. 4.1)", ErrNullableMember, a, mb.Name)
			}
		}
	}

	// Key-relation selection (Prop. 3.1), preferring names order.
	keyRel := ""
	switch {
	case cfg.forceSynthetic:
		if cfg.keyRelation != "" {
			return nil, fmt.Errorf("core: WithSyntheticKey and WithKeyRelation are mutually exclusive")
		}
	case cfg.keyRelation != "":
		if !keyrel.IsKeyRelation(s, cfg.keyRelation, names) {
			return nil, fmt.Errorf("%w: %s for %v", ErrBadKeyRelation, cfg.keyRelation, names)
		}
		keyRel = cfg.keyRelation
	default:
		qualified := keyrel.Find(s, names)
		for _, n := range names {
			for _, q := range qualified {
				if n == q {
					keyRel = n
					break
				}
			}
			if keyRel != "" {
				break
			}
		}
	}

	m := &MergedScheme{
		Name:     mergedName,
		Members:  members,
		original: s.Clone(),
	}
	out := s.Clone()

	// Step 1: the merged relation-scheme Rm(Xm) with Km := Kk and
	// Xm := Xk ∪ ⋃ Xi (key-relation attributes first, then the remaining
	// members in names order).
	_, step1 := obs.Span(ctx, "merge.step1.scheme")
	var attrs []schema.Attribute
	if keyRel != "" {
		krs := s.Scheme(keyRel)
		m.KeyRelation = keyRel
		m.Km = append([]string(nil), krs.PrimaryKey...)
		m.Xk = krs.AttrNames()
		attrs = append(attrs, krs.Attrs...)
	} else {
		// Synthetic key-relation Rk(Kk): fresh attributes compatible with
		// the member keys.
		m.Synthetic = true
		firstKey := members[0].Key
		for i := range firstKey {
			name := fmt.Sprintf("%s.K%d", mergedName, i+1)
			attrs = append(attrs, schema.Attribute{Name: name, Domain: first.Domain(firstKey[i])})
			m.Km = append(m.Km, name)
		}
		m.Xk = append([]string(nil), m.Km...)
	}
	for _, mb := range members {
		if mb.Name == keyRel {
			continue
		}
		mrs := s.Scheme(mb.Name)
		attrs = append(attrs, mrs.Attrs...)
	}
	merged := schema.NewScheme(mergedName, attrs, m.Km)
	// Candidate keys of members beyond their primary keys carry over; they
	// are the nullable candidate keys Prop. 5.1(ii) warns about (for
	// non-key-relation members).
	for _, mb := range members {
		for _, ck := range s.Scheme(mb.Name).CandidateKeys {
			merged.CandidateKeys = append(merged.CandidateKeys, append([]string(nil), ck...))
		}
	}
	m.FullAttrs = merged.AttrNames()
	step1.End()

	// Step 2 (and the scheme replacement): drop members (their key
	// dependencies and null constraints go with them), add Rm with
	// Rm: Km → Xm.
	_, step2 := obs.Span(ctx, "merge.step2.dependencies")
	for _, mb := range members {
		out.RemoveScheme(mb.Name)
	}
	out.AddScheme(merged)
	step2.End()

	// Step 3: null constraints N'.
	_, step3 := obs.Span(ctx, "merge.step3.null_constraints")
	// 3(a): NNA on Xk.
	out.Nulls = append(out.Nulls, schema.NNA(mergedName, m.Xk...))
	// 3(b): total-equality Km =⊥ Ki for every member with Ki ≠ Km.
	for _, mb := range members {
		if mb.Name == keyRel {
			continue
		}
		out.Nulls = append(out.Nulls, schema.NewTotalEquality(mergedName, m.Km, mb.Key))
	}
	// 3(c): null-synchronization NS(Xi) for every non-key-relation member
	// with more than one attribute.
	for _, mb := range members {
		if mb.Name == keyRel || len(mb.Attrs) < 2 {
			continue
		}
		out.Nulls = append(out.Nulls, schema.NewNullSync(mergedName, mb.Attrs...))
	}
	// 3(d): part-null over the member attribute sets when Rk ∉ R̄.
	if m.Synthetic {
		sets := make([][]string, len(members))
		for i, mb := range members {
			sets[i] = append([]string(nil), mb.Attrs...)
		}
		out.Nulls = append(out.Nulls, schema.NewPartNull(mergedName, sets...))
	}
	// 3(e): inner-relational null-existence constraints Xj ⊑ Xi for every
	// original inclusion dependency Rj[Kj] ⊆ Ri[Ki] between members with
	// Ki ≠ Km. (The paper writes the IND form Rj[Z] ⊆ Ri[Ki]; the constraint
	// Xj ⊑ Xi expresses the tuple-wise existence implication, which is sound
	// exactly when Z is Rj's primary key — the only form arising in key-based
	// schemas — so that is what we require.)
	for _, ind := range s.INDs {
		rj, ri := m.Member(ind.Left), m.Member(ind.Right)
		if rj == nil || ri == nil || ri.Name == keyRel {
			continue
		}
		if !schema.EqualAttrSets(ind.LeftAttrs, rj.Key) || !schema.EqualAttrSets(ind.RightAttrs, ri.Key) {
			continue
		}
		out.Nulls = append(out.Nulls, schema.NewNullExistence(mergedName, rj.Attrs, ri.Attrs))
	}

	step3.End()

	// Step 4: inclusion dependencies I'.
	_, step4 := obs.Span(ctx, "merge.step4.inclusion_dependencies")
	out.INDs = m.rewriteINDs(s.INDs)
	step4.End()

	m.Schema = out
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("core: merge produced an invalid schema: %w", err)
	}
	m.traceMerge()
	for _, line := range m.trace {
		cfg.observe(line)
	}
	return m, nil
}

// rewriteINDs applies Definition 4.1 step 4 to the original IND set:
// (a) substitute Rm for members on either side; (b) in internal dependencies
// Rm[Z] ⊆ Rm[Ki], replace Ki with Km (position-wise); (c) drop internal
// dependencies Rm[Ki] ⊆ Rm[Km] whose left side is a member's primary key —
// they are implied by the total-equality and null-existence constraints.
// Duplicates arising from the rewrite are removed.
func (m *MergedScheme) rewriteINDs(inds []schema.IND) []schema.IND {
	var out []schema.IND
	seen := make(map[string]bool)
	for _, ind := range inds {
		nd := ind
		leftMember, rightMember := m.Member(nd.Left), m.Member(nd.Right)
		if leftMember != nil {
			nd.Left = m.Name
		}
		if rightMember != nil {
			nd.Right = m.Name
		}
		if nd.Left == m.Name && nd.Right == m.Name {
			// (b): right side Ki -> Km.
			if rightMember != nil && schema.EqualAttrSets(nd.RightAttrs, rightMember.Key) {
				nd.RightAttrs = m.alignKm(rightMember, nd.RightAttrs)
			}
			// (c): drop Rm[Ki] ⊆ Rm[Km].
			if leftMember != nil && schema.EqualAttrSets(nd.LeftAttrs, leftMember.Key) &&
				schema.EqualAttrSets(nd.RightAttrs, m.Km) {
				continue
			}
			// Fully internal self-dependency on identical sides is trivial.
			if schema.EqualAttrLists(nd.LeftAttrs, nd.RightAttrs) {
				continue
			}
		}
		if !seen[nd.Key()] {
			seen[nd.Key()] = true
			out = append(out, nd)
		}
	}
	return out
}
