package core

import (
	"strings"
	"testing"

	"repro/internal/figures"
	"repro/internal/schema"
)

// nullKeys returns the canonical keys of the null constraints attached to
// one scheme, as a set.
func nullKeys(s *schema.Schema, name string) map[string]bool {
	out := make(map[string]bool)
	for _, nc := range s.NullsOf(name) {
		out[nc.Key()] = true
	}
	return out
}

func indKeys(s *schema.Schema) map[string]bool {
	out := make(map[string]bool)
	for _, ind := range s.INDs {
		out[ind.Key()] = true
	}
	return out
}

func wantExactly(t *testing.T, label string, got map[string]bool, want []string) {
	t.Helper()
	for _, w := range want {
		if !got[w] {
			t.Errorf("%s: missing %s", label, w)
		}
	}
	if len(got) != len(want) {
		var keys []string
		for k := range got {
			keys = append(keys, k)
		}
		t.Errorf("%s: got %d items, want %d:\n  got  %s", label, len(got), len(want), strings.Join(keys, "\n  got  "))
	}
}

// E4 — Figure 4: Merge(COURSE, OFFER, TEACH) on the figure 3 schema.
func TestFig4Merge(t *testing.T) {
	s := figures.Fig3()
	m, err := Merge(s, []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	if err != nil {
		t.Fatal(err)
	}
	if m.Synthetic || m.KeyRelation != "COURSE" {
		t.Fatalf("key-relation = %q (synthetic=%v), want COURSE", m.KeyRelation, m.Synthetic)
	}
	rm := m.Schema.Scheme("COURSE'")
	if rm == nil {
		t.Fatal("merged scheme missing")
	}
	wantAttrs := []string{"C.NR", "O.C.NR", "O.D.NAME", "T.C.NR", "T.F.SSN"}
	if !schema.EqualAttrLists(rm.AttrNames(), wantAttrs) {
		t.Errorf("Xm = %v, want %v", rm.AttrNames(), wantAttrs)
	}
	if !schema.EqualAttrLists(rm.PrimaryKey, []string{"C.NR"}) {
		t.Errorf("Km = %v", rm.PrimaryKey)
	}
	// Members gone, others untouched.
	for _, gone := range []string{"COURSE", "OFFER", "TEACH"} {
		if m.Schema.Scheme(gone) != nil {
			t.Errorf("member %s should be replaced", gone)
		}
	}
	for _, stay := range []string{"PERSON", "FACULTY", "STUDENT", "DEPARTMENT", "ASSIST"} {
		if m.Schema.Scheme(stay) == nil {
			t.Errorf("scheme %s should remain", stay)
		}
	}

	// Inclusion dependencies: figure 4's (1), (2), (8) unchanged + (9)–(11).
	wantExactly(t, "fig4 INDs", indKeys(m.Schema), []string{
		schema.NewIND("FACULTY", []string{"F.SSN"}, "PERSON", []string{"P.SSN"}).Key(),
		schema.NewIND("STUDENT", []string{"S.SSN"}, "PERSON", []string{"P.SSN"}).Key(),
		schema.NewIND("ASSIST", []string{"A.S.SSN"}, "STUDENT", []string{"S.SSN"}).Key(),
		schema.NewIND("COURSE'", []string{"O.D.NAME"}, "DEPARTMENT", []string{"D.NAME"}).Key(),
		schema.NewIND("COURSE'", []string{"T.F.SSN"}, "FACULTY", []string{"F.SSN"}).Key(),
		schema.NewIND("ASSIST", []string{"A.C.NR"}, "COURSE'", []string{"O.C.NR"}).Key(),
	})

	// Null constraints on COURSE': figure 4's (9)–(14).
	wantExactly(t, "fig4 nulls", nullKeys(m.Schema, "COURSE'"), []string{
		schema.NNA("COURSE'", "C.NR").Key(),
		schema.NewNullSync("COURSE'", "O.C.NR", "O.D.NAME").Key(),
		schema.NewNullSync("COURSE'", "T.C.NR", "T.F.SSN").Key(),
		schema.NewNullExistence("COURSE'", []string{"T.C.NR", "T.F.SSN"}, []string{"O.C.NR", "O.D.NAME"}).Key(),
		schema.NewTotalEquality("COURSE'", []string{"C.NR"}, []string{"O.C.NR"}).Key(),
		schema.NewTotalEquality("COURSE'", []string{"C.NR"}, []string{"T.C.NR"}).Key(),
	})

	// Unmerged schemes keep their NNA constraints.
	for _, stay := range []string{"PERSON", "FACULTY", "STUDENT", "DEPARTMENT", "ASSIST"} {
		if len(m.Schema.NullsOf(stay)) != 1 {
			t.Errorf("%s should keep its single NNA constraint", stay)
		}
	}

	// Prop. 4.1(ii): BCNF preserved.
	if !AllBCNF(m.Schema) {
		t.Error("merged schema should be in BCNF")
	}
	// Figure 4's schema has a non-key-based dependency (11).
	if AllINDsKeyBased(m.Schema) {
		t.Error("ASSIST[A.C.NR] ⊆ COURSE'[O.C.NR] is not key-based")
	}
}

// E5 — Figure 5: Merge(COURSE, OFFER, TEACH, ASSIST).
func TestFig5Merge(t *testing.T) {
	s := figures.Fig3()
	m, err := Merge(s, []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	if err != nil {
		t.Fatal(err)
	}
	rm := m.Schema.Scheme("COURSE''")
	wantAttrs := []string{"C.NR", "O.C.NR", "O.D.NAME", "T.C.NR", "T.F.SSN", "A.C.NR", "A.S.SSN"}
	if !schema.EqualAttrLists(rm.AttrNames(), wantAttrs) {
		t.Errorf("Xm = %v, want %v", rm.AttrNames(), wantAttrs)
	}

	// Figure 5's inclusion dependencies (9)–(11) plus the untouched (1), (2).
	wantExactly(t, "fig5 INDs", indKeys(m.Schema), []string{
		schema.NewIND("FACULTY", []string{"F.SSN"}, "PERSON", []string{"P.SSN"}).Key(),
		schema.NewIND("STUDENT", []string{"S.SSN"}, "PERSON", []string{"P.SSN"}).Key(),
		schema.NewIND("COURSE''", []string{"O.D.NAME"}, "DEPARTMENT", []string{"D.NAME"}).Key(),
		schema.NewIND("COURSE''", []string{"T.F.SSN"}, "FACULTY", []string{"F.SSN"}).Key(),
		schema.NewIND("COURSE''", []string{"A.S.SSN"}, "STUDENT", []string{"S.SSN"}).Key(),
	})
	// All key-based now (Prop. 5.1(i) holds for this merge set).
	if !AllINDsKeyBased(m.Schema) {
		t.Error("figure 5's dependencies are all key-based")
	}

	// Null constraints on COURSE'': figure 5's (9)–(17).
	wantExactly(t, "fig5 nulls", nullKeys(m.Schema, "COURSE''"), []string{
		schema.NNA("COURSE''", "C.NR").Key(),
		schema.NewNullSync("COURSE''", "O.C.NR", "O.D.NAME").Key(),
		schema.NewNullSync("COURSE''", "T.C.NR", "T.F.SSN").Key(),
		schema.NewNullSync("COURSE''", "A.C.NR", "A.S.SSN").Key(),
		schema.NewNullExistence("COURSE''", []string{"T.C.NR", "T.F.SSN"}, []string{"O.C.NR", "O.D.NAME"}).Key(),
		schema.NewNullExistence("COURSE''", []string{"A.C.NR", "A.S.SSN"}, []string{"O.C.NR", "O.D.NAME"}).Key(),
		schema.NewTotalEquality("COURSE''", []string{"C.NR"}, []string{"O.C.NR"}).Key(),
		schema.NewTotalEquality("COURSE''", []string{"C.NR"}, []string{"T.C.NR"}).Key(),
		schema.NewTotalEquality("COURSE''", []string{"C.NR"}, []string{"A.C.NR"}).Key(),
	})
	if !AllBCNF(m.Schema) {
		t.Error("figure 5's schema should be in BCNF")
	}
}

// E2 — Figure 2 with the linking dependency: OFFER is the key-relation.
func TestFig2MergeLinked(t *testing.T) {
	s := figures.Fig2(true)
	m, err := Merge(s, []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		t.Fatal(err)
	}
	if m.Synthetic || m.KeyRelation != "OFFER" {
		t.Fatalf("key-relation = %q, want OFFER", m.KeyRelation)
	}
	rm := m.Schema.Scheme("ASSIGN")
	if !schema.EqualAttrLists(rm.AttrNames(), []string{"O.CN", "O.DN", "T.CN", "T.FN"}) {
		t.Errorf("Xm = %v", rm.AttrNames())
	}
	wantExactly(t, "fig2 nulls", nullKeys(m.Schema, "ASSIGN"), []string{
		schema.NNA("ASSIGN", "O.CN", "O.DN").Key(),
		schema.NewNullSync("ASSIGN", "T.CN", "T.FN").Key(),
		schema.NewTotalEquality("ASSIGN", []string{"O.CN"}, []string{"T.CN"}).Key(),
	})
	if len(m.Schema.INDs) != 0 {
		t.Errorf("internal dependency should be removed, got %v", m.Schema.INDs)
	}
}

// E2 — Figure 2 without the link: no key-relation exists, so Merge
// synthesizes one and generates the part-null constraint of step 3(d).
func TestFig2MergeSynthetic(t *testing.T) {
	s := figures.Fig2(false)
	m, err := Merge(s, []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Synthetic || m.KeyRelation != "" {
		t.Fatal("expected a synthetic key-relation")
	}
	rm := m.Schema.Scheme("ASSIGN")
	if !schema.EqualAttrLists(rm.AttrNames(), []string{"ASSIGN.K1", "O.CN", "O.DN", "T.CN", "T.FN"}) {
		t.Errorf("Xm = %v", rm.AttrNames())
	}
	if !schema.EqualAttrLists(rm.PrimaryKey, []string{"ASSIGN.K1"}) {
		t.Errorf("Km = %v", rm.PrimaryKey)
	}
	if rm.Domain("ASSIGN.K1") != figures.DomCourseNr {
		t.Errorf("synthetic key domain = %q", rm.Domain("ASSIGN.K1"))
	}
	wantExactly(t, "fig2 synthetic nulls", nullKeys(m.Schema, "ASSIGN"), []string{
		schema.NNA("ASSIGN", "ASSIGN.K1").Key(),
		schema.NewNullSync("ASSIGN", "O.CN", "O.DN").Key(),
		schema.NewNullSync("ASSIGN", "T.CN", "T.FN").Key(),
		schema.NewPartNull("ASSIGN", []string{"O.CN", "O.DN"}, []string{"T.CN", "T.FN"}).Key(),
		schema.NewTotalEquality("ASSIGN", []string{"ASSIGN.K1"}, []string{"O.CN"}).Key(),
		schema.NewTotalEquality("ASSIGN", []string{"ASSIGN.K1"}, []string{"T.CN"}).Key(),
	})
}

// The §1 example: merging EMPLOYEE and MANAGES of figure 1's RS yields
// EMPLOYEE'(SSN, NR) with SSN non-null, NR nullable, and — after Remove —
// no other null constraints.
func TestSection1EmployeeManagesMerge(t *testing.T) {
	s := figures.Fig1RS()
	m, err := Merge(s, []string{"EMPLOYEE", "MANAGES"}, "EMPLOYEE'")
	if err != nil {
		t.Fatal(err)
	}
	if m.KeyRelation != "EMPLOYEE" {
		t.Fatalf("key-relation = %q", m.KeyRelation)
	}
	if err := m.Remove("MANAGES"); err != nil {
		t.Fatalf("M.SSN should be removable: %v", err)
	}
	rm := m.Schema.Scheme("EMPLOYEE'")
	if !schema.EqualAttrLists(rm.AttrNames(), []string{"E.SSN", "M.NR"}) {
		t.Errorf("Xm = %v, want [E.SSN M.NR]", rm.AttrNames())
	}
	wantExactly(t, "EMPLOYEE' nulls", nullKeys(m.Schema, "EMPLOYEE'"), []string{
		schema.NNA("EMPLOYEE'", "E.SSN").Key(),
	})
	if m.Schema.AllowsNull("EMPLOYEE'", "E.SSN") {
		t.Error("SSN must not allow nulls")
	}
	if !m.Schema.AllowsNull("EMPLOYEE'", "M.NR") {
		t.Error("NR must allow nulls")
	}
	// The foreign key MANAGES[M.NR] ⊆ PROJECT[PJ.NR] survives on EMPLOYEE'.
	found := false
	for _, ind := range m.Schema.INDsFrom("EMPLOYEE'") {
		if ind.Right == "PROJECT" && schema.EqualAttrSets(ind.LeftAttrs, []string{"M.NR"}) {
			found = true
		}
	}
	if !found {
		t.Error("EMPLOYEE'[M.NR] ⊆ PROJECT[PJ.NR] missing")
	}
}

func TestMergeValidation(t *testing.T) {
	s := figures.Fig3()
	cases := []struct {
		name    string
		members []string
		merged  string
	}{
		{"single member", []string{"COURSE"}, "X"},
		{"unknown member", []string{"COURSE", "NOPE"}, "X"},
		{"duplicate member", []string{"COURSE", "COURSE"}, "X"},
		{"incompatible keys", []string{"COURSE", "PERSON"}, "X"},
		{"name collision", []string{"COURSE", "OFFER"}, "PERSON"},
	}
	for _, c := range cases {
		if _, err := Merge(s, c.members, c.merged); err == nil {
			t.Errorf("%s: Merge should fail", c.name)
		}
	}

	// Nullable member attributes violate the Def. 4.1 assumption.
	s2 := figures.Fig2(true)
	s2.Nulls = []schema.NullConstraint{schema.NNA("OFFER", "O.CN", "O.DN"), schema.NNA("TEACH", "T.CN")}
	if _, err := Merge(s2, []string{"OFFER", "TEACH"}, "ASSIGN"); err == nil {
		t.Error("nullable member attribute should be rejected")
	}
}

func TestMergeDoesNotMutateInput(t *testing.T) {
	s := figures.Fig3()
	before := s.String()
	if _, err := Merge(s, []string{"COURSE", "OFFER", "TEACH"}, "COURSE'"); err != nil {
		t.Fatal(err)
	}
	if s.String() != before {
		t.Error("Merge must not mutate its input schema")
	}
}

func TestMergeCarriesCandidateKeys(t *testing.T) {
	s := figures.Fig2(true)
	// Make TEACH one-to-one: T.FN is an additional candidate key.
	s.Scheme("TEACH").CandidateKeys = [][]string{{"T.FN"}}
	m, err := Merge(s, []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		t.Fatal(err)
	}
	rm := m.Schema.Scheme("ASSIGN")
	if len(rm.CandidateKeys) != 1 || !schema.EqualAttrSets(rm.CandidateKeys[0], []string{"T.FN"}) {
		t.Errorf("candidate keys = %v", rm.CandidateKeys)
	}
	// T.FN allows nulls in ASSIGN: a nullable candidate key (Prop. 5.1(ii)).
	nks := NullableCandidateKeys(m.Schema, "ASSIGN")
	if len(nks) != 1 {
		t.Errorf("NullableCandidateKeys = %v", nks)
	}
}
