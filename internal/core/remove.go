package core

import (
	"fmt"

	"repro/internal/nullcon"
	"repro/internal/obs"
	"repro/internal/schema"
)

// IsRemovable checks the removability conditions of Definition 4.2 for the
// key copy of the named member (the attribute set Yj = Ki, which is the only
// kind of attribute set the merged scheme's total-equality constraints
// involve). It returns nil when removable, or an error naming the first
// failing condition.
//
// Conditions (numbering follows the paper):
//
//	(1) at least one attribute of the member remains after removal;
//	(2) Yj does not appear in the right-hand side of any inclusion
//	    dependency from another scheme;
//	(3) if Yj is a foreign key Rm[Yj] ⊆ Rj[Kj], the schema must also contain
//	    Rm[Km] ⊆ Rj[Kj], so the rewritten dependency is already implied
//	    (the paper states this over every total-equality subset W; Km is the
//	    weakest sound requirement and the one its own §5.2 examples need —
//	    see DESIGN.md);
//	(4) Yj does not overlap any other foreign key of Rm.
func (m *MergedScheme) IsRemovable(memberName string) error {
	mb := m.Member(memberName)
	if mb == nil {
		return notRemovable(memberName, nil, PreconditionMember, "core: %s is not a member of the merge set", memberName)
	}
	if mb.Name == m.KeyRelation {
		return notRemovable(memberName, mb.Key, PreconditionMember, "core: %s is the key-relation; its key is Km and is never removable", memberName)
	}
	if m.removedOf(mb.Name) != nil {
		return notRemovable(memberName, mb.Key, PreconditionMember, "core: key copy of %s already removed", memberName)
	}
	yj := mb.Key

	// The defining total-equality constraint Km =⊥ Yj must be present.
	teFound := false
	for _, nc := range m.Schema.NullsOf(m.Name) {
		if te, ok := nc.(schema.TotalEquality); ok {
			if (schema.EqualAttrSets(te.Y, m.Km) && schema.EqualAttrSets(te.Z, yj)) ||
				(schema.EqualAttrSets(te.Z, m.Km) && schema.EqualAttrSets(te.Y, yj)) {
				teFound = true
				break
			}
		}
	}
	if !teFound {
		return notRemovable(memberName, yj, PreconditionTotalEquality, "core: no total-equality constraint Km =⊥ %v", yj)
	}

	// (1)
	if len(schema.DiffAttrs(mb.Attrs, yj)) < 1 {
		return notRemovable(memberName, yj, Condition1, "core: condition (1) fails: removing %v would leave no attribute of %s", yj, mb.Name)
	}
	// (2)
	for _, ind := range m.Schema.INDs {
		if ind.Right == m.Name && ind.Left != m.Name && schema.OverlapAttrs(ind.RightAttrs, yj) {
			return notRemovable(memberName, yj, Condition2, "core: condition (2) fails: %s targets %v", ind, yj)
		}
	}
	// (3) and (4)
	for _, ind := range m.Schema.INDs {
		if ind.Left != m.Name || ind.Right == m.Name {
			continue
		}
		if schema.EqualAttrSets(ind.LeftAttrs, yj) {
			// (3): Rm[Km] ⊆ Rj[Kj] must exist with matching target.
			found := false
			for _, other := range m.Schema.INDs {
				if other.Left == m.Name && other.Right == ind.Right &&
					schema.EqualAttrSets(other.LeftAttrs, m.Km) &&
					schema.EqualAttrLists(other.RightAttrs, ind.RightAttrs) {
					found = true
					break
				}
			}
			if !found {
				return notRemovable(memberName, yj, Condition3, "core: condition (3) fails: %s has no Km counterpart", ind)
			}
		} else if schema.OverlapAttrs(ind.LeftAttrs, yj) {
			return notRemovable(memberName, yj, Condition4, "core: condition (4) fails: %v overlaps foreign key %v", yj, ind.LeftAttrs)
		}
	}
	return nil
}

// RemovableMembers lists the members whose key copies are currently
// removable, in merge order.
func (m *MergedScheme) RemovableMembers() []string {
	var out []string
	for _, mb := range m.Members {
		if m.IsRemovable(mb.Name) == nil {
			out = append(out, mb.Name)
		}
	}
	return out
}

// Remove applies Definition 4.3 for the key copy of the named member,
// mutating the held schema:
//
//  1. the attributes Yj are dropped from Xm;
//  2. in F, every occurrence of an attribute of Yj is replaced by the
//     corresponding attribute of Km;
//  3. inclusion dependencies Rm[Yj] ⊆ Rj[Kj] are rewritten to
//     Rm[Km] ⊆ Rj[Kj] (deduplicated — condition (3) guarantees the rewritten
//     dependency already exists);
//  4. the attributes of Yj are removed from part-null and null-existence
//     constraints (including null-synchronization sets), the total-equality
//     constraint Km =⊥ Yj is dropped, and the surviving constraint set is
//     simplified (trivial and implied constraints removed).
func (m *MergedScheme) Remove(memberName string, opts ...Option) error {
	cfg := newConfig(opts)
	ctx, sp := obs.Span(cfg.ctx, "core.Remove")
	defer sp.End()
	sp.SetAttr("member", memberName)
	if err := m.IsRemovable(memberName); err != nil {
		return err
	}
	mb := m.Member(memberName)
	yj := mb.Key
	yjSet := make(map[string]bool, len(yj))
	for _, a := range yj {
		yjSet[a] = true
	}
	s := m.Schema
	rm := s.Scheme(m.Name)

	// 1. Shrink Xm.
	_, step1 := obs.Span(ctx, "remove.step1.attrs")
	var kept []schema.Attribute
	for _, a := range rm.Attrs {
		if !yjSet[a.Name] {
			kept = append(kept, a)
		}
	}
	rm.Attrs = kept
	// Candidate keys naming Yj attributes are re-expressed via Km.
	for i, ck := range rm.CandidateKeys {
		rm.CandidateKeys[i] = schema.NormalizeAttrs(m.substituteKm(mb, ck))
	}
	step1.End()

	// 2. Rewrite F (dependencies of Rm only).
	_, step2 := obs.Span(ctx, "remove.step2.fds")
	for i, fdep := range s.FDs {
		if fdep.Scheme != m.Name {
			continue
		}
		s.FDs[i].LHS = dedupe(m.substituteKm(mb, fdep.LHS))
		s.FDs[i].RHS = dedupe(m.substituteKm(mb, fdep.RHS))
	}
	step2.End()

	// 3. Rewrite I.
	_, step3 := obs.Span(ctx, "remove.step3.inclusion_dependencies")
	var inds []schema.IND
	seen := make(map[string]bool)
	for _, ind := range s.INDs {
		nd := ind
		if nd.Left == m.Name && schema.EqualAttrSets(nd.LeftAttrs, yj) {
			nd.LeftAttrs = m.alignKm(mb, nd.LeftAttrs)
		} else if nd.Left == m.Name && schema.OverlapAttrs(nd.LeftAttrs, yj) {
			// Internal non-key left sides may mention Yj; substitute.
			nd.LeftAttrs = dedupe(m.substituteKm(mb, nd.LeftAttrs))
		}
		if nd.Left == nd.Right && schema.EqualAttrLists(nd.LeftAttrs, nd.RightAttrs) {
			continue // became trivial
		}
		if !seen[nd.Key()] {
			seen[nd.Key()] = true
			inds = append(inds, nd)
		}
	}
	s.INDs = inds
	step3.End()

	// 4. Rewrite N.
	_, step4 := obs.Span(ctx, "remove.step4.null_constraints")
	var nulls []schema.NullConstraint
	for _, nc := range s.Nulls {
		if nc.SchemeName() != m.Name {
			nulls = append(nulls, nc)
			continue
		}
		switch c := nc.(type) {
		case schema.TotalEquality:
			if (schema.EqualAttrSets(c.Y, m.Km) && schema.EqualAttrSets(c.Z, yj)) ||
				(schema.EqualAttrSets(c.Z, m.Km) && schema.EqualAttrSets(c.Y, yj)) {
				continue // 4(b): drop Km =⊥ Yj
			}
			nulls = append(nulls, c)
		case schema.NullExistence:
			c.Y = schema.DiffAttrs(c.Y, yj)
			c.Z = schema.DiffAttrs(c.Z, yj)
			nulls = append(nulls, c)
		case schema.NullSync:
			c.Y = schema.DiffAttrs(c.Y, yj)
			nulls = append(nulls, c)
		case schema.PartNull:
			sets := make([][]string, len(c.Sets))
			for i, set := range c.Sets {
				sets[i] = schema.DiffAttrs(set, yj)
			}
			c.Sets = sets
			nulls = append(nulls, c)
		default:
			nulls = append(nulls, c)
		}
	}
	s.Nulls = nullcon.Simplify(nulls)
	step4.End()

	m.removals = append(m.removals, removal{member: *mb, yj: append([]string(nil), yj...)})
	before := len(m.trace)
	m.traceRemove(mb)
	for _, line := range m.trace[before:] {
		cfg.observe(line)
	}
	if err := s.Validate(); err != nil {
		return fmt.Errorf("core: Remove produced an invalid schema: %w", err)
	}
	return nil
}

// RemoveAll removes every removable key copy, iterating to a fixpoint
// (removing one member's copy can enable another's, because total-equality
// constraints and foreign-key counterparts change). It returns the names of
// the members whose copies were removed, in order.
func (m *MergedScheme) RemoveAll(opts ...Option) []string {
	cfg := newConfig(opts)
	_, sp := obs.Span(cfg.ctx, "core.RemoveAll")
	defer sp.End()
	var removed []string
	for {
		progress := false
		for _, mb := range m.Members {
			if m.removedOf(mb.Name) != nil {
				continue
			}
			if m.IsRemovable(mb.Name) == nil {
				if err := m.Remove(mb.Name, opts...); err == nil {
					removed = append(removed, mb.Name)
					progress = true
				}
			}
		}
		if !progress {
			sp.SetAttr("removed", fmt.Sprint(len(removed)))
			return removed
		}
	}
}

// substituteKm replaces attributes of the member's key with the
// corresponding Km attributes, leaving others untouched.
func (m *MergedScheme) substituteKm(mb *Member, attrs []string) []string {
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = m.kmFor(mb, a)
	}
	return out
}

func dedupe(attrs []string) []string {
	seen := make(map[string]bool, len(attrs))
	var out []string
	for _, a := range attrs {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}
