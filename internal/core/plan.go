package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/schema"
)

// Prop52Clusters plans merges over a whole schema: it returns disjoint merge
// sets, each satisfying the conditions of Proposition 5.2 (so each merges to
// a relation-scheme maintainable with only nulls-not-allowed constraints).
// Clusters are grown greedily around each scheme in declaration order: a
// scheme acts as the key-relation Rk, and every not-yet-consumed scheme
// satisfying the per-member conditions joins its cluster. Only clusters with
// at least two members are returned, key-relation first.
func Prop52Clusters(s *schema.Schema, opts ...Option) [][]string {
	cfg := newConfig(opts)
	_, sp := obs.Span(cfg.ctx, "core.Prop52Clusters")
	defer sp.End()
	used := make(map[string]bool)
	var out [][]string
	for _, rk := range s.Relations {
		if used[rk.Name] {
			continue
		}
		cluster := []string{rk.Name}
		for _, ri := range s.Relations {
			if ri.Name == rk.Name || used[ri.Name] {
				continue
			}
			if prop52With(s, []string{rk.Name, ri.Name}, rk.Name) {
				cluster = append(cluster, ri.Name)
			}
		}
		if len(cluster) < 2 {
			continue
		}
		for _, n := range cluster {
			used[n] = true
		}
		cfg.observe(fmt.Sprintf("Prop 5.2: cluster around %s: %v", rk.Name, cluster))
		out = append(out, cluster)
	}
	sp.SetAttr("clusters", fmt.Sprint(len(out)))
	return out
}

// ApplyPlan merges every cluster in order, naming each merged scheme after
// its key-relation with a trailing prime, and removes all removable key
// copies. It returns the rewritten schema and the merge records.
//
// A context attached with WithContext is checked between clusters, so a long
// plan can be abandoned with the schema rewritten up to a cluster boundary
// discarded (the input schema is never mutated).
func ApplyPlan(s *schema.Schema, clusters [][]string, opts ...Option) (*schema.Schema, []*MergedScheme, error) {
	cfg := newConfig(opts)
	ctx, sp := obs.Span(cfg.ctx, "core.ApplyPlan")
	defer sp.End()
	sp.SetAttr("clusters", fmt.Sprint(len(clusters)))
	cur := s
	var merges []*MergedScheme
	for _, cluster := range clusters {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		m, err := MergeSet(cur, cluster, WithContext(ctx), withObserverOf(cfg))
		if err != nil {
			return nil, nil, fmt.Errorf("core: merging %v: %w", cluster, err)
		}
		m.RemoveAll(WithContext(ctx), withObserverOf(cfg))
		merges = append(merges, m)
		cur = m.Schema
	}
	return cur, merges, nil
}

// withObserverOf forwards an existing configuration's observer.
func withObserverOf(cfg config) Option {
	return func(c *config) { c.observer = cfg.observer }
}
