package core

import (
	"fmt"

	"repro/internal/schema"
)

// Prop52Clusters plans merges over a whole schema: it returns disjoint merge
// sets, each satisfying the conditions of Proposition 5.2 (so each merges to
// a relation-scheme maintainable with only nulls-not-allowed constraints).
// Clusters are grown greedily around each scheme in declaration order: a
// scheme acts as the key-relation Rk, and every not-yet-consumed scheme
// satisfying the per-member conditions joins its cluster. Only clusters with
// at least two members are returned, key-relation first.
func Prop52Clusters(s *schema.Schema) [][]string {
	used := make(map[string]bool)
	var out [][]string
	for _, rk := range s.Relations {
		if used[rk.Name] {
			continue
		}
		cluster := []string{rk.Name}
		for _, ri := range s.Relations {
			if ri.Name == rk.Name || used[ri.Name] {
				continue
			}
			if prop52With(s, []string{rk.Name, ri.Name}, rk.Name) {
				cluster = append(cluster, ri.Name)
			}
		}
		if len(cluster) < 2 {
			continue
		}
		for _, n := range cluster {
			used[n] = true
		}
		out = append(out, cluster)
	}
	return out
}

// ApplyPlan merges every cluster in order, naming each merged scheme after
// its key-relation with a trailing prime, and removes all removable key
// copies. It returns the rewritten schema and the merge records.
func ApplyPlan(s *schema.Schema, clusters [][]string) (*schema.Schema, []*MergedScheme, error) {
	cur := s
	var merges []*MergedScheme
	for _, cluster := range clusters {
		name := cluster[0] + "'"
		for cur.Scheme(name) != nil {
			name += "'"
		}
		m, err := Merge(cur, cluster, name)
		if err != nil {
			return nil, nil, fmt.Errorf("core: merging %v: %w", cluster, err)
		}
		m.RemoveAll()
		merges = append(merges, m)
		cur = m.Schema
	}
	return cur, merges, nil
}
