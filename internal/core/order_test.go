package core

import (
	"testing"

	"repro/internal/fd"
	"repro/internal/figures"
	"repro/internal/normalize"
	"repro/internal/schema"
)

// Removal order does not matter: removing the three key copies of the
// figure 5 merge in any order yields identical schemas.
func TestRemoveOrderIndependence(t *testing.T) {
	orders := [][]string{
		{"OFFER", "TEACH", "ASSIST"},
		{"ASSIST", "OFFER", "TEACH"},
		{"TEACH", "ASSIST", "OFFER"},
	}
	var reference *schema.Schema
	for _, order := range orders {
		m, err := Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
		if err != nil {
			t.Fatal(err)
		}
		for _, member := range order {
			if err := m.Remove(member); err != nil {
				t.Fatalf("order %v: Remove(%s): %v", order, member, err)
			}
		}
		if reference == nil {
			reference = m.Schema
			continue
		}
		if !m.Schema.SameConstraints(reference) {
			t.Errorf("order %v produced different constraints", order)
		}
		if !schema.EqualAttrSets(m.Schema.Scheme("COURSE''").AttrNames(),
			reference.Scheme("COURSE''").AttrNames()) {
			t.Errorf("order %v produced different attributes", order)
		}
	}
}

// The two directions of the introduction meet: BCNF normalization splits a
// denormalized relation into fragments, but those fragments have DIFFERENT
// primary keys (COURSE vs FACULTY), so the paper's merge — which requires
// pairwise-compatible primary keys — correctly refuses to undo the split.
// Recombining split fragments is the job of joins (Reassemble), not Merge.
func TestNormalizeFragmentsNotMergeable(t *testing.T) {
	res, err := normalize.BCNF("TEACHES", []schema.Attribute{
		{Name: "COURSE", Domain: "cnr"},
		{Name: "FACULTY", Domain: "fid"},
		{Name: "OFFICE", Domain: "office"},
	}, []fd.Dep{
		fd.NewDep([]string{"COURSE"}, []string{"FACULTY"}),
		fd.NewDep([]string{"FACULTY"}, []string{"OFFICE"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 2 {
		t.Fatalf("fragments = %v", res.Fragments)
	}
	_, err = Merge(res.Schema, res.Fragments, "RECOMBINED")
	if err == nil {
		t.Fatal("fragments with incompatible keys must not merge")
	}
}
