package core

import (
	"strings"
	"testing"

	"repro/internal/figures"
)

func TestTraceFig6(t *testing.T) {
	m := mergeFig5(t)
	m.RemoveAll()
	trace := strings.Join(m.Trace(), "\n")
	for _, want := range []string{
		"Prop 3.1: COURSE is a key-relation",
		"Def 4.1 step 1: COURSE''(C.NR,O.C.NR,O.D.NAME,T.C.NR,T.F.SSN,A.C.NR,A.S.SSN) with key (C.NR)",
		"Def 4.1 step 3(a): nulls-not-allowed on Xk: ∅ ⊑ C.NR",
		"Def 4.1 step 3(b): total-equality C.NR =⊥ O.C.NR (member OFFER)",
		"Def 4.1 step 3(c): null-synchronization NS(T.C.NR,T.F.SSN) (member TEACH)",
		"Def 4.1 step 3(e): null-existence T.C.NR,T.F.SSN ⊑ O.C.NR,O.D.NAME",
		"Def 4.1 step 4: inclusion dependencies rewritten (3 internal dependencies absorbed, 5 remain)",
		"Def 4.3 Remove(O.C.NR)",
		"Def 4.3 Remove(T.C.NR)",
		"Def 4.3 Remove(A.C.NR)",
	} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q in:\n%s", want, trace)
		}
	}
}

func TestTraceSynthetic(t *testing.T) {
	m, err := Merge(figures.Fig2(false), []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		t.Fatal(err)
	}
	trace := strings.Join(m.Trace(), "\n")
	for _, want := range []string{
		"synthesized key-relation with key (ASSIGN.K1)",
		"Def 4.1 step 3(d): part-null constraint over the 2 member attribute sets",
	} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q in:\n%s", want, trace)
		}
	}
}

func TestTraceIsACopy(t *testing.T) {
	m := mergeFig5(t)
	tr := m.Trace()
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	tr[0] = "mutated"
	if m.Trace()[0] == "mutated" {
		t.Error("Trace must return a copy")
	}
}
