package core

import (
	"context"

	"repro/internal/obs"
)

// Option tunes MergeSet, Remove, RemoveAll, and ApplyPlan. Options compose
// left to right; the zero configuration reproduces the paper's defaults.
type Option func(*config)

type config struct {
	name           string
	keyRelation    string
	forceSynthetic bool
	ctx            context.Context
	observer       func(step string)
}

func newConfig(opts []Option) config {
	cfg := config{ctx: context.Background()}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// observe reports a completed step to the observer callback, if any.
func (c *config) observe(step string) {
	if c.observer != nil {
		c.observer(step)
	}
}

// WithName sets the merged relation-scheme's name Rm. The default is the
// first member's name with enough trailing primes to be fresh.
func WithName(name string) Option {
	return func(c *config) { c.name = name }
}

// WithKeyRelation names the member to use as the key-relation Rk. It must
// satisfy the Prop. 3.1 condition; the merge fails otherwise. The default
// selects the first qualifying member in merge-set order.
func WithKeyRelation(name string) Option {
	return func(c *config) { c.keyRelation = name }
}

// WithSyntheticKey creates a synthetic key-relation even when a member
// qualifies (Def. 3.1's "a new relation-scheme Rk(Kk) can be specified").
func WithSyntheticKey() Option {
	return func(c *config) { c.forceSynthetic = true }
}

// WithContext attaches a context: cancellation is honoured between plan
// clusters in ApplyPlan, and any tracer carried by the context (via
// obs.WithTracer) receives the procedure's spans.
func WithContext(ctx context.Context) Option {
	return func(c *config) {
		if ctx != nil {
			c.ctx = ctx
		}
	}
}

// WithTrace records Definition 4.1/4.3 step spans into the tracer — shorthand
// for WithContext(obs.WithTracer(ctx, t)) when no context is otherwise
// needed.
func WithTrace(t *obs.Tracer) Option {
	return func(c *config) { c.ctx = obs.WithTracer(c.ctx, t) }
}

// WithObserver invokes fn after each procedure step with the same provenance
// line that Trace records — a hook for progress reporting.
func WithObserver(fn func(step string)) Option {
	return func(c *config) { c.observer = fn }
}
