package core

import (
	"testing"

	"repro/internal/figures"
	"repro/internal/nullcon"
	"repro/internal/schema"
)

func TestProp52ClustersFig3(t *testing.T) {
	s := figures.Fig3()
	clusters := Prop52Clusters(s)
	if len(clusters) != 1 {
		t.Fatalf("clusters = %v, want exactly the OFFER cluster", clusters)
	}
	if clusters[0][0] != "OFFER" || !schema.EqualAttrSets(clusters[0], []string{"OFFER", "TEACH", "ASSIST"}) {
		t.Errorf("cluster = %v, want OFFER-rooted {OFFER, TEACH, ASSIST}", clusters[0])
	}
}

func TestProp52ClustersDisjoint(t *testing.T) {
	// Two independent stars must give two disjoint clusters.
	s := schema.New()
	mk := func(name, dom string, key string, extra ...schema.Attribute) {
		attrs := append([]schema.Attribute{{Name: key, Domain: dom}}, extra...)
		s.AddScheme(schema.NewScheme(name, attrs, []string{key}))
		s.Nulls = append(s.Nulls, schema.NNA(name, schema.AttrNames(attrs)...))
	}
	mk("A", "da", "A.ID")
	mk("A1", "da", "A1.ID", schema.Attribute{Name: "A1.X", Domain: "xa"})
	mk("B", "db", "B.ID")
	mk("B1", "db", "B1.ID", schema.Attribute{Name: "B1.X", Domain: "xb"})
	s.INDs = []schema.IND{
		schema.NewIND("A1", []string{"A1.ID"}, "A", []string{"A.ID"}),
		schema.NewIND("B1", []string{"B1.ID"}, "B", []string{"B.ID"}),
	}
	clusters := Prop52Clusters(s)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
	seen := map[string]bool{}
	for _, c := range clusters {
		for _, n := range c {
			if seen[n] {
				t.Errorf("scheme %s in two clusters", n)
			}
			seen[n] = true
		}
	}
}

func TestApplyPlanFig3(t *testing.T) {
	s := figures.Fig3()
	out, merges, err := ApplyPlan(s, Prop52Clusters(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(merges) != 1 {
		t.Fatalf("merges = %d", len(merges))
	}
	merged := out.Scheme("OFFER'")
	if merged == nil {
		t.Fatal("OFFER' missing")
	}
	if !schema.EqualAttrLists(merged.AttrNames(), []string{"O.C.NR", "O.D.NAME", "T.F.SSN", "A.S.SSN"}) {
		t.Errorf("OFFER' = %v", merged.AttrNames())
	}
	if !nullcon.OnlyNNA(out.NullsOf("OFFER'")) {
		t.Errorf("plan output should be only-NNA, got %v", out.NullsOf("OFFER'"))
	}
	// 8 schemes collapse to 6.
	if len(out.Relations) != 6 {
		t.Errorf("%d relations, want 6", len(out.Relations))
	}
	if err := out.Validate(); err != nil {
		t.Error(err)
	}
}

func TestApplyPlanNameCollision(t *testing.T) {
	s := figures.Fig3()
	// Occupy the OFFER' name to force the planner to prime twice.
	s.AddScheme(schema.NewScheme("OFFER'",
		[]schema.Attribute{{Name: "X.ID", Domain: "x"}}, []string{"X.ID"}))
	s.Nulls = append(s.Nulls, schema.NNA("OFFER'", "X.ID"))
	out, _, err := ApplyPlan(s, Prop52Clusters(s))
	if err != nil {
		t.Fatal(err)
	}
	if out.Scheme("OFFER''") == nil {
		t.Error("collision should produce OFFER''")
	}
}
