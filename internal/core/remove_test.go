package core

import (
	"testing"

	"repro/internal/figures"
	"repro/internal/schema"
)

func mergeFig5(t *testing.T) *MergedScheme {
	t.Helper()
	m, err := Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// E6 — Figure 6: removing O.C.NR, T.C.NR, and A.C.NR from COURSE”.
func TestFig6RemoveAll(t *testing.T) {
	m := mergeFig5(t)

	// All three key copies are removable in COURSE''.
	for _, mb := range []string{"OFFER", "TEACH", "ASSIST"} {
		if err := m.IsRemovable(mb); err != nil {
			t.Fatalf("%s key copy should be removable: %v", mb, err)
		}
	}
	if err := m.IsRemovable("COURSE"); err == nil {
		t.Fatal("the key-relation's key is never removable")
	}

	removed := m.RemoveAll()
	if len(removed) != 3 {
		t.Fatalf("RemoveAll removed %v, want all three copies", removed)
	}

	rm := m.Schema.Scheme("COURSE''")
	if !schema.EqualAttrLists(rm.AttrNames(), []string{"C.NR", "O.D.NAME", "T.F.SSN", "A.S.SSN"}) {
		t.Errorf("figure 6 scheme = %v", rm.AttrNames())
	}
	// Inclusion dependencies are unchanged by Remove (figure 6).
	wantExactly(t, "fig6 INDs", indKeys(m.Schema), []string{
		schema.NewIND("FACULTY", []string{"F.SSN"}, "PERSON", []string{"P.SSN"}).Key(),
		schema.NewIND("STUDENT", []string{"S.SSN"}, "PERSON", []string{"P.SSN"}).Key(),
		schema.NewIND("COURSE''", []string{"O.D.NAME"}, "DEPARTMENT", []string{"D.NAME"}).Key(),
		schema.NewIND("COURSE''", []string{"T.F.SSN"}, "FACULTY", []string{"F.SSN"}).Key(),
		schema.NewIND("COURSE''", []string{"A.S.SSN"}, "STUDENT", []string{"S.SSN"}).Key(),
	})
	// Figure 6's exact null constraints for COURSE''.
	wantExactly(t, "fig6 nulls", nullKeys(m.Schema, "COURSE''"), []string{
		schema.NNA("COURSE''", "C.NR").Key(),
		schema.NewNullExistence("COURSE''", []string{"T.F.SSN"}, []string{"O.D.NAME"}).Key(),
		schema.NewNullExistence("COURSE''", []string{"A.S.SSN"}, []string{"O.D.NAME"}).Key(),
	})
	if !AllBCNF(m.Schema) {
		t.Error("figure 6's schema should be in BCNF")
	}
}

// Definition 4.2's context-sensitivity: O.C.NR is removable in COURSE” but
// NOT in COURSE' (figure 4), because ASSIST still references it there.
func TestRemovabilityDependsOnMergeSet(t *testing.T) {
	m4, err := Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	if err != nil {
		t.Fatal(err)
	}
	if err := m4.IsRemovable("OFFER"); err == nil {
		t.Error("O.C.NR must not be removable in COURSE' (condition 2)")
	}
	// T.C.NR is removable in COURSE' though.
	if err := m4.IsRemovable("TEACH"); err != nil {
		t.Errorf("T.C.NR should be removable in COURSE': %v", err)
	}
	m5 := mergeFig5(t)
	if err := m5.IsRemovable("OFFER"); err != nil {
		t.Errorf("O.C.NR should be removable in COURSE'': %v", err)
	}
}

func TestRemoveCondition1SingleAttributeMember(t *testing.T) {
	// Merging PERSON and FACULTY: FACULTY has only its key, so removing
	// F.SSN would leave nothing to record a faculty's existence.
	s := figures.Fig3()
	m, err := Merge(s, []string{"PERSON", "FACULTY"}, "PERSON'")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.IsRemovable("FACULTY"); err == nil {
		t.Error("condition (1) should block removing a single-attribute member's key")
	}
	if got := m.RemovableMembers(); len(got) != 0 {
		t.Errorf("RemovableMembers = %v, want none", got)
	}
}

func TestRemoveCondition3ForeignKeyCounterpart(t *testing.T) {
	// OFFER's key copy is a foreign key to an external scheme; without the
	// Km counterpart the removal must be blocked, with it allowed.
	s := figures.Fig2(true)
	// External target for the key: CATALOG(CAT.CN).
	s.AddScheme(schema.NewScheme("CATALOG",
		[]schema.Attribute{{Name: "CAT.CN", Domain: figures.DomCourseNr}},
		[]string{"CAT.CN"}))
	s.Nulls = append(s.Nulls, schema.NNA("CATALOG", "CAT.CN"))
	s.INDs = append(s.INDs, schema.NewIND("TEACH", []string{"T.CN"}, "CATALOG", []string{"CAT.CN"}))

	m, err := Merge(s, []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		t.Fatal(err)
	}
	// ASSIGN[T.CN] ⊆ CATALOG[CAT.CN] exists but ASSIGN[O.CN] ⊆ CATALOG does
	// not: condition (3) fails.
	if err := m.IsRemovable("TEACH"); err == nil {
		t.Fatal("condition (3) should block removal without a Km counterpart")
	}

	// Now with the counterpart (the Prop. 5.2(4) proviso shape).
	s2 := figures.Fig2(true)
	s2.AddScheme(schema.NewScheme("CATALOG",
		[]schema.Attribute{{Name: "CAT.CN", Domain: figures.DomCourseNr}},
		[]string{"CAT.CN"}))
	s2.Nulls = append(s2.Nulls, schema.NNA("CATALOG", "CAT.CN"))
	s2.INDs = append(s2.INDs,
		schema.NewIND("TEACH", []string{"T.CN"}, "CATALOG", []string{"CAT.CN"}),
		schema.NewIND("OFFER", []string{"O.CN"}, "CATALOG", []string{"CAT.CN"}))
	m2, err := Merge(s2, []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Remove("TEACH"); err != nil {
		t.Fatalf("removal with Km counterpart should succeed: %v", err)
	}
	// The rewritten dependency deduplicates onto ASSIGN[O.CN] ⊆ CATALOG.
	count := 0
	for _, ind := range m2.Schema.INDsFrom("ASSIGN") {
		if ind.Right == "CATALOG" {
			count++
			if !schema.EqualAttrSets(ind.LeftAttrs, []string{"O.CN"}) {
				t.Errorf("rewritten dependency = %v", ind)
			}
		}
	}
	if count != 1 {
		t.Errorf("want exactly one ASSIGN→CATALOG dependency, got %d", count)
	}
}

func TestRemoveErrors(t *testing.T) {
	m := mergeFig5(t)
	if err := m.Remove("NOPE"); err == nil {
		t.Error("unknown member")
	}
	if err := m.Remove("COURSE"); err == nil {
		t.Error("key-relation")
	}
	if err := m.Remove("OFFER"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("OFFER"); err == nil {
		t.Error("double removal should fail")
	}
	if got := m.Removals(); len(got) != 1 || !schema.EqualAttrSets(got[0], []string{"O.C.NR"}) {
		t.Errorf("Removals = %v", got)
	}
}

func TestRemoveSyntheticKeyShrinksPartNull(t *testing.T) {
	s := figures.Fig2(false)
	m, err := Merge(s, []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("OFFER"); err != nil {
		t.Fatalf("O.CN should be removable under a synthetic key: %v", err)
	}
	// The part-null constraint now reads PN({O.DN}, {T.CN, T.FN}).
	found := false
	for _, nc := range m.Schema.NullsOf("ASSIGN") {
		if pn, ok := nc.(schema.PartNull); ok {
			found = true
			if len(pn.Sets) != 2 {
				t.Errorf("PN sets = %v", pn.Sets)
			}
			for _, set := range pn.Sets {
				if schema.ContainsAttr(set, "O.CN") {
					t.Errorf("O.CN should be gone from PN: %v", pn)
				}
			}
		}
	}
	if !found {
		t.Error("part-null constraint should survive (no empty member set)")
	}
}
