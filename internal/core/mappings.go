package core

import (
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/state"
)

// MapState applies the forward state mapping of the merge — η of Definition
// 4.1 composed with the μ projections of every Remove applied so far — to a
// database state of the original schema RS, producing a state of the current
// rewritten schema.
//
// η is computed exactly as the paper defines it: r_m starts as the
// key-relation's relation (or, for a synthetic key-relation, the union of
// the renamed key projections of the members) and is outer-equi-joined with
// each remaining member's relation on Km = Ki; each Remove then projects out
// the removed attributes.
func (m *MergedScheme) MapState(db *state.DB) *state.DB {
	memberSet := make(map[string]bool, len(m.Members))
	for _, mb := range m.Members {
		memberSet[mb.Name] = true
	}
	out := &state.DB{Relations: make(map[string]*relation.Relation, len(db.Relations))}
	for name, r := range db.Relations {
		if !memberSet[name] {
			out.Set(name, r.Clone())
		}
	}

	var rm *relation.Relation
	if m.Synthetic {
		rm = relation.New(m.Km...)
		for _, mb := range m.Members {
			proj := db.Relation(mb.Name).Project(mb.Key).Rename(mb.Key, m.Km)
			rm = rm.Union(proj)
		}
	} else {
		rm = db.Relation(m.KeyRelation).Clone()
	}
	for _, mb := range m.Members {
		if mb.Name == m.KeyRelation {
			continue
		}
		rm = rm.OuterEquiJoin(db.Relation(mb.Name), relation.JoinSpec{Left: m.Km, Right: mb.Key})
	}

	// μ chain: project onto the current (possibly reduced) Xm.
	rm = rm.Project(m.Schema.Scheme(m.Name).AttrNames())
	out.Set(m.Name, rm)
	return out
}

// UnmapState applies the inverse state mapping — the μ′ reconstructions of
// the removals in reverse order, followed by η′ — to a database state of the
// current rewritten schema, producing a state of the original schema RS.
//
// μ′ restores a removed key copy Yj by outer-equi-joining r_m with
// rename(π_Km(π↓_{Km ∪ (Xi−Yj)}(r_m)), Km ← Yj) on Km = Yj: a tuple whose
// surviving member attributes are total regains Yj = Km, all others get null
// Yj. η′ recovers each member's relation as the total projection π↓_Xi(r_m).
func (m *MergedScheme) UnmapState(db *state.DB) *state.DB {
	out := &state.DB{Relations: make(map[string]*relation.Relation, len(db.Relations))}
	for name, r := range db.Relations {
		if name != m.Name {
			out.Set(name, r.Clone())
		}
	}
	r := db.Relation(m.Name).Clone()
	for i := len(m.removals) - 1; i >= 0; i-- {
		rec := m.removals[i]
		remaining := schema.DiffAttrs(rec.member.Attrs, rec.yj)
		right := r.TotalProject(schema.UnionAttrs(m.Km, remaining)).
			Project(m.Km).
			Rename(m.Km, rec.yj)
		r = r.OuterEquiJoin(right, relation.JoinSpec{Left: m.Km, Right: rec.yj})
	}
	r = r.Project(m.FullAttrs)
	for _, mb := range m.Members {
		out.Set(mb.Name, r.TotalProject(mb.Attrs))
	}
	return out
}

// RoundTrip reports whether η′∘η (with the removal mappings composed in) is
// the identity on the given state of the original schema — the
// information-capacity direction of Props. 4.1/4.2 exercised empirically.
func (m *MergedScheme) RoundTrip(db *state.DB) bool {
	return m.UnmapState(m.MapState(db)).Equal(db)
}

// RoundTripMerged reports whether η∘η′ is the identity on the given state of
// the rewritten schema — the converse direction of Definition 2.1's third
// condition.
func (m *MergedScheme) RoundTripMerged(db *state.DB) bool {
	return m.MapState(m.UnmapState(db)).Equal(db)
}
