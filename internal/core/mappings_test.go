package core

import (
	"math/rand"
	"testing"

	"repro/internal/figures"
	"repro/internal/relation"
	"repro/internal/state"
)

func str(s string) relation.Value { return relation.NewString(s) }

// A small hand-built consistent state of figure 3.
func fig3State(t *testing.T) *state.DB {
	t.Helper()
	s := figures.Fig3()
	db := state.New(s)
	add := func(rel string, vals ...relation.Value) {
		db.Relation(rel).Add(relation.Tuple(vals))
	}
	add("PERSON", str("p1"))
	add("PERSON", str("p2"))
	add("PERSON", str("p3"))
	add("FACULTY", str("p1"))
	add("STUDENT", str("p2"))
	add("STUDENT", str("p3"))
	add("COURSE", str("c1"))
	add("COURSE", str("c2"))
	add("COURSE", str("c3"))
	add("DEPARTMENT", str("math"))
	add("DEPARTMENT", str("cs"))
	add("OFFER", str("c1"), str("math"))
	add("OFFER", str("c2"), str("cs"))
	add("TEACH", str("c1"), str("p1"))
	add("ASSIST", str("c1"), str("p2"))
	add("ASSIST", str("c2"), str("p3"))
	if err := state.Consistent(s, db); err != nil {
		t.Fatalf("fixture state inconsistent: %v", err)
	}
	return db
}

// η produces exactly the expected merged relation for the fixture:
// COURSE”(C.NR, O.C.NR, O.D.NAME, T.C.NR, T.F.SSN, A.C.NR, A.S.SSN).
func TestEtaExactContents(t *testing.T) {
	m := mergeFig5(t)
	db := fig3State(t)
	out := m.MapState(db)

	rm := out.Relation("COURSE''")
	want := relation.New("C.NR", "O.C.NR", "O.D.NAME", "T.C.NR", "T.F.SSN", "A.C.NR", "A.S.SSN")
	nul := relation.Null()
	want.Add(relation.Tuple{str("c1"), str("c1"), str("math"), str("c1"), str("p1"), str("c1"), str("p2")})
	want.Add(relation.Tuple{str("c2"), str("c2"), str("cs"), nul, nul, str("c2"), str("p3")})
	want.Add(relation.Tuple{str("c3"), nul, nul, nul, nul, nul, nul})
	if !rm.Equal(want) {
		t.Errorf("η(r) =\n%v\nwant\n%v", rm, want)
	}

	// Non-member relations pass through.
	if !out.Relation("PERSON").Equal(db.Relation("PERSON")) {
		t.Error("PERSON should pass through η unchanged")
	}
	// Members are gone from the mapped state.
	if out.Relation("OFFER") != nil {
		t.Error("OFFER should not exist in the merged state")
	}

	// The mapped state is consistent with RS' (Prop. 4.1 condition 1).
	if err := state.Consistent(m.Schema, out); err != nil {
		t.Errorf("η(r) inconsistent with RS': %v", err)
	}
}

func TestEtaPrimeInverse(t *testing.T) {
	m := mergeFig5(t)
	db := fig3State(t)
	if !m.RoundTrip(db) {
		back := m.UnmapState(m.MapState(db))
		t.Errorf("η′∘η ≠ id:\noriginal:\n%s\nround-trip:\n%s", db, back)
	}
}

// Prop. 4.1 (information capacity), forward direction, property-tested over
// randomized consistent states, including states where the outer joins leave
// many nulls.
func TestMergeRoundTripProperty(t *testing.T) {
	s := figures.Fig3()
	mergeSets := [][]string{
		{"COURSE", "OFFER", "TEACH"},
		{"COURSE", "OFFER", "TEACH", "ASSIST"},
		{"PERSON", "FACULTY", "STUDENT"},
		{"OFFER", "TEACH", "ASSIST"},
		{"COURSE", "OFFER"},
	}
	rng := rand.New(rand.NewSource(21))
	for _, names := range mergeSets {
		m, err := Merge(s, names, "MERGED")
		if err != nil {
			t.Fatalf("%v: %v", names, err)
		}
		for trial := 0; trial < 15; trial++ {
			db := state.MustGenerate(s, rng, state.GenOptions{
				Rows:    7,
				RowsPer: map[string]int{"OFFER": 4, "TEACH": 2, "ASSIST": 3, "FACULTY": 4, "STUDENT": 5},
			})
			mapped := m.MapState(db)
			if err := state.Consistent(m.Schema, mapped); err != nil {
				t.Fatalf("%v trial %d: η(r) inconsistent: %v", names, trial, err)
			}
			if !m.RoundTrip(db) {
				t.Fatalf("%v trial %d: η′∘η ≠ id", names, trial)
			}
		}
	}
}

// Prop. 4.2: round trip with removals composed in (μ′∘μ and η′∘η together).
func TestRemoveRoundTripProperty(t *testing.T) {
	s := figures.Fig3()
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 15; trial++ {
		m, err := Merge(s, []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
		if err != nil {
			t.Fatal(err)
		}
		m.RemoveAll()
		db := state.MustGenerate(s, rng, state.GenOptions{
			Rows:    7,
			RowsPer: map[string]int{"OFFER": 4, "TEACH": 2, "ASSIST": 3},
		})
		mapped := m.MapState(db)
		if err := state.Consistent(m.Schema, mapped); err != nil {
			t.Fatalf("trial %d: mapped state inconsistent after removes: %v", trial, err)
		}
		if !m.RoundTrip(db) {
			back := m.UnmapState(m.MapState(db))
			t.Fatalf("trial %d: round trip failed\noriginal:\n%s\nback:\n%s", trial, db, back)
		}
	}
}

// The converse direction of Definition 2.1 condition 3: η∘η′ is the identity
// on consistent states of the merged schema.
func TestMergedRoundTripConverse(t *testing.T) {
	m := mergeFig5(t)
	db := fig3State(t)
	mapped := m.MapState(db)
	if !m.RoundTripMerged(mapped) {
		t.Error("η∘η′ ≠ id on an η-image state")
	}

	// A hand-built consistent RS' state that is not an η image of the
	// fixture: includes a course with only an ASSIST part — legal under the
	// constraint set (A.C.NR, A.S.SSN total requires O.C.NR, O.D.NAME total,
	// so give it an OFFER part too).
	m2 := mergeFig5(t)
	db2 := state.New(m2.Schema)
	nul := relation.Null()
	db2.Relation("PERSON").Add(relation.Tuple{str("p1")})
	db2.Relation("FACULTY").Add(relation.Tuple{str("p1")})
	db2.Relation("STUDENT").Add(relation.Tuple{str("p1")})
	db2.Relation("DEPARTMENT").Add(relation.Tuple{str("d")})
	db2.Relation("COURSE''").Add(relation.Tuple{str("c1"), str("c1"), str("d"), nul, nul, str("c1"), str("p1")})
	db2.Relation("COURSE''").Add(relation.Tuple{str("c2"), nul, nul, nul, nul, nul, nul})
	if err := state.Consistent(m2.Schema, db2); err != nil {
		t.Fatalf("hand-built RS' state inconsistent: %v", err)
	}
	if !m2.RoundTripMerged(db2) {
		t.Error("η∘η′ ≠ id on a hand-built consistent RS' state")
	}
}

// After RemoveAll, the merged relation is narrower but reconstructs the same
// original state: the removed copies carry no information (Prop. 4.2).
func TestRemoveShrinksWithoutInformationLoss(t *testing.T) {
	db := fig3State(t)

	wide := mergeFig5(t)
	narrow := mergeFig5(t)
	narrow.RemoveAll()

	wideRel := wide.MapState(db).Relation("COURSE''")
	narrowRel := narrow.MapState(db).Relation("COURSE''")
	if narrowRel.Arity() >= wideRel.Arity() {
		t.Errorf("arity %d should shrink below %d", narrowRel.Arity(), wideRel.Arity())
	}
	if !wide.UnmapState(wide.MapState(db)).Equal(narrow.UnmapState(narrow.MapState(db))) {
		t.Error("wide and narrow reconstructions disagree")
	}
}

// Synthetic key-relation round trip (figure 2 without the link).
func TestSyntheticKeyRoundTrip(t *testing.T) {
	s := figures.Fig2(false)
	m, err := Merge(s, []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		t.Fatal(err)
	}
	db := state.New(s)
	db.Relation("OFFER").Add(relation.Tuple{str("c1"), str("math")})
	db.Relation("OFFER").Add(relation.Tuple{str("c2"), str("cs")})
	db.Relation("TEACH").Add(relation.Tuple{str("c2"), str("smith")})
	db.Relation("TEACH").Add(relation.Tuple{str("c3"), str("jones")})
	if err := state.Consistent(s, db); err != nil {
		t.Fatal(err)
	}
	mapped := m.MapState(db)
	rm := mapped.Relation("ASSIGN")
	if rm.Len() != 3 {
		t.Errorf("ASSIGN should have 3 tuples (c1, c2, c3), got\n%v", rm)
	}
	if err := state.Consistent(m.Schema, mapped); err != nil {
		t.Errorf("mapped synthetic state inconsistent: %v", err)
	}
	if !m.RoundTrip(db) {
		t.Error("synthetic-key round trip failed")
	}

	// And with the OFFER copy removed.
	if err := m.Remove("OFFER"); err != nil {
		t.Fatal(err)
	}
	if !m.RoundTrip(db) {
		t.Error("synthetic-key round trip failed after Remove")
	}
}
