package core

import (
	"testing"

	"repro/internal/eer"
	"repro/internal/nullcon"
	"repro/internal/schema"
	"repro/internal/translate"
)

// E8 — the four figure 8 structures: the EER-level conditions of §5.2
// predict exactly whether the merged relational representation needs general
// null constraints (8i, 8ii) or only nulls-not-allowed constraints
// (8iii, 8iv).
func TestFig8StructuresEndToEnd(t *testing.T) {
	cases := []struct {
		name     string
		es       *eer.Schema
		object   string
		others   []string
		cond     func(*eer.Schema, string, []string) error
		wantOnly bool // only-NNA expected after Merge + RemoveAll
	}{
		{
			name: "8i-hierarchy-multiattr", es: eer.Fig8i(),
			object: "VEHICLE", others: []string{"CAR", "TRUCK"},
			cond:     (*eer.Schema).CheckCondition1,
			wantOnly: false,
		},
		{
			name: "8ii-relationships-with-attrs", es: eer.Fig8ii(),
			object: "EMPLOYEE", others: []string{"WORKS", "BELONGS"},
			cond:     (*eer.Schema).CheckCondition2,
			wantOnly: false,
		},
		{
			name: "8iii-hierarchy-single-attr", es: eer.Fig8iii(),
			object: "PERSON", others: []string{"FACULTY", "STUDENT"},
			cond:     (*eer.Schema).CheckCondition1,
			wantOnly: true,
		},
		{
			name: "8iv-attrless-relationships", es: eer.Fig8iv(),
			object: "COURSE", others: []string{"OFFER", "TEACH"},
			cond:     (*eer.Schema).CheckCondition2,
			wantOnly: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			condErr := c.cond(c.es, c.object, c.others)
			if c.wantOnly && condErr != nil {
				t.Fatalf("EER condition should hold: %v", condErr)
			}
			if !c.wantOnly && condErr == nil {
				t.Fatal("EER condition should fail")
			}

			rs, err := translate.MS(c.es)
			if err != nil {
				t.Fatal(err)
			}
			names := append([]string{c.object}, c.others...)
			// The relational-level Prop. 5.2 agrees with the EER condition.
			if _, ok := Prop52(rs, names); ok != c.wantOnly {
				t.Errorf("Prop52 = %v, want %v", ok, c.wantOnly)
			}
			m, err := Merge(rs, names, "MERGED")
			if err != nil {
				t.Fatal(err)
			}
			m.RemoveAll()
			got := nullcon.OnlyNNA(m.Schema.NullsOf("MERGED"))
			if got != c.wantOnly {
				t.Errorf("only-NNA = %v, want %v; constraints: %v",
					got, c.wantOnly, m.Schema.NullsOf("MERGED"))
			}
			if !AllBCNF(m.Schema) {
				t.Error("merged schema should stay BCNF")
			}
		})
	}
}

// The figure 8(ii) case reproduces the paper's §1 WORKS example inside the
// merged relation: NS(W.NR, W.DATE) implies the DATE ⊑ NR null-existence
// restriction the Teorey translation misses.
func TestFig8iiRetainsDateNRConstraint(t *testing.T) {
	rs, err := translate.MS(eer.Fig8ii())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(rs, []string{"EMPLOYEE", "WORKS", "BELONGS"}, "EMPLOYEE'")
	if err != nil {
		t.Fatal(err)
	}
	m.RemoveAll()
	date2nr := schema.NewNullExistence("EMPLOYEE'", []string{"W.DATE"}, []string{"W.NR"})
	if !nullcon.Implied(m.Schema.NullsOf("EMPLOYEE'"), date2nr) {
		t.Errorf("merged constraints must imply %v; got %v", date2nr, m.Schema.NullsOf("EMPLOYEE'"))
	}
}
