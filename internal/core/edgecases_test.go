package core

import (
	"math/rand"
	"testing"

	"repro/internal/figures"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/state"
)

// A member-to-member inclusion dependency whose left side is NOT the
// referencing member's primary key (the Z ≠ Kj case of Def. 4.1 step 3(e)):
// the sound treatment keeps the dependency as a rewritten internal
// dependency rather than generating an (unsound) null-existence constraint.
func TestMergeNonKeyInternalIND(t *testing.T) {
	s := schema.New()
	s.AddScheme(schema.NewScheme("COURSE",
		[]schema.Attribute{{Name: "C.NR", Domain: "cnr"}}, []string{"C.NR"}))
	// PREREQ: each course's prerequisite, a non-key reference to COURSE.
	s.AddScheme(schema.NewScheme("PREREQ",
		[]schema.Attribute{
			{Name: "PR.C.NR", Domain: "cnr"},
			{Name: "PR.REQ", Domain: "cnr"},
		}, []string{"PR.C.NR"}))
	s.INDs = []schema.IND{
		schema.NewIND("PREREQ", []string{"PR.C.NR"}, "COURSE", []string{"C.NR"}),
		// Non-key left side into a member's key.
		schema.NewIND("PREREQ", []string{"PR.REQ"}, "COURSE", []string{"C.NR"}),
	}
	s.Nulls = []schema.NullConstraint{
		schema.NNA("COURSE", "C.NR"),
		schema.NNA("PREREQ", "PR.C.NR", "PR.REQ"),
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	m, err := Merge(s, []string{"COURSE", "PREREQ"}, "COURSE'")
	if err != nil {
		t.Fatal(err)
	}
	// The key-based internal dependency is absorbed (step 4c); the non-key
	// one survives as an internal self-dependency COURSE'[PR.REQ] ⊆
	// COURSE'[C.NR] (which is key-based for the merged scheme).
	if len(m.Schema.INDs) != 1 {
		t.Fatalf("INDs = %v", m.Schema.INDs)
	}
	ind := m.Schema.INDs[0]
	if ind.Left != "COURSE'" || ind.Right != "COURSE'" ||
		!schema.EqualAttrSets(ind.LeftAttrs, []string{"PR.REQ"}) ||
		!schema.EqualAttrSets(ind.RightAttrs, []string{"C.NR"}) {
		t.Errorf("internal dependency = %v", ind)
	}
	if !ind.KeyBased(m.Schema) {
		t.Error("the rewritten self-dependency targets Km and is key-based")
	}
	// No null-existence constraint was generated for the non-key dependency
	// (only the TE and NS from the standard steps).
	for _, nc := range m.Schema.NullsOf("COURSE'") {
		if ne, ok := nc.(schema.NullExistence); ok && !ne.IsNNA() {
			t.Errorf("unexpected null-existence constraint %v", ne)
		}
	}

	// Round trip on a self-referential state: c2's prerequisite is c1.
	db := state.New(s)
	add := func(rel string, vals ...string) {
		tup := make(relation.Tuple, len(vals))
		for i, v := range vals {
			tup[i] = relation.NewString(v)
		}
		db.Relation(rel).Add(tup)
	}
	add("COURSE", "c1")
	add("COURSE", "c2")
	add("PREREQ", "c2", "c1")
	if err := state.Consistent(s, db); err != nil {
		t.Fatal(err)
	}
	mapped := m.MapState(db)
	if err := state.Consistent(m.Schema, mapped); err != nil {
		t.Fatalf("mapped state inconsistent: %v\n%s", err, mapped)
	}
	if !m.RoundTrip(db) {
		t.Error("round trip failed")
	}

	// The PREREQ key copy is removable; the internal dependency's left side
	// is untouched (PR.REQ is not the key copy).
	if err := m.Remove("PREREQ"); err != nil {
		t.Fatal(err)
	}
	if len(m.Schema.INDs) != 1 || !schema.EqualAttrSets(m.Schema.INDs[0].LeftAttrs, []string{"PR.REQ"}) {
		t.Errorf("post-remove INDs = %v", m.Schema.INDs)
	}
	if !m.RoundTrip(db) {
		t.Error("round trip after remove failed")
	}
}

// Merging in a different member order changes Xm's layout but nothing
// semantic: same constraints, same round trips.
func TestMergeOrderInsensitiveSemantics(t *testing.T) {
	a, err := Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"}, "M")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Merge(figures.Fig3(), []string{"TEACH", "COURSE", "OFFER"}, "M")
	if err != nil {
		t.Fatal(err)
	}
	if a.KeyRelation != b.KeyRelation {
		t.Errorf("key-relation differs: %s vs %s", a.KeyRelation, b.KeyRelation)
	}
	if !a.Schema.SameConstraints(b.Schema) {
		t.Error("constraint sets must not depend on member order")
	}
	rng := rand.New(rand.NewSource(8))
	db := state.MustGenerate(figures.Fig3(), rng, state.GenOptions{Rows: 6})
	ra := a.MapState(db).Relation("M")
	rb := b.MapState(db).Relation("M")
	if !ra.EqualUpToOrder(rb) {
		t.Error("mapped relations must agree up to column order")
	}
}
