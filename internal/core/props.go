package core

import (
	"repro/internal/fd"
	"repro/internal/keyrel"
	"repro/internal/schema"
)

// Prop51 evaluates the two syntactic conditions of Proposition 5.1 on the
// original schema for a prospective merge set:
//
//	keyBasedOnly — after Merge, I' contains only key-based inclusion
//	dependencies iff no relation-scheme of R̄ that is not a key-relation of R̄
//	is referenced (in its primary key) by an inclusion dependency from
//	outside R̄;
//
//	nonNullKeys — the key attributes (candidate keys) of Rm are all
//	non-null iff every member that is not a key-relation has a unique
//	(primary) key, i.e. no additional candidate keys.
func Prop51(s *schema.Schema, names []string) (keyBasedOnly, nonNullKeys bool) {
	inSet := make(map[string]bool, len(names))
	for _, n := range names {
		inSet[n] = true
	}
	keyBasedOnly, nonNullKeys = true, true
	for _, n := range names {
		if keyrel.IsKeyRelation(s, n, names) {
			continue
		}
		rs := s.Scheme(n)
		if rs == nil {
			return false, false
		}
		for _, ind := range s.INDsInto(n) {
			if !inSet[ind.Left] && schema.OverlapAttrs(ind.RightAttrs, rs.PrimaryKey) {
				keyBasedOnly = false
			}
		}
		if len(rs.CandidateKeys) > 0 {
			nonNullKeys = false
		}
	}
	return keyBasedOnly, nonNullKeys
}

// AllINDsKeyBased reports whether every inclusion dependency of the schema
// is key-based (a referential integrity constraint) — the post-merge check
// corresponding to Prop. 5.1(i).
func AllINDsKeyBased(s *schema.Schema) bool {
	for _, ind := range s.INDs {
		if !ind.KeyBased(s) {
			return false
		}
	}
	return true
}

// NullableCandidateKeys returns the candidate keys of the named scheme that
// contain an attribute allowed to be null — the keys Prop. 5.1(ii) warns
// cannot be maintained by DBMSs that consider all nulls identical.
func NullableCandidateKeys(s *schema.Schema, name string) [][]string {
	rs := s.Scheme(name)
	if rs == nil {
		return nil
	}
	var out [][]string
	for _, ck := range rs.CandidateKeys {
		for _, a := range ck {
			if s.AllowsNull(name, a) {
				out = append(out, ck)
				break
			}
		}
	}
	return out
}

// Prop52 evaluates the conditions of Proposition 5.2 on the original schema:
// whether the merge set contains a relation-scheme Rk such that, for every
// other member Ri:
//
//	(1) Ri[Ki] ⊆ Rk[Kk] belongs to I (Rk is a direct key-relation);
//	(2) Ri has exactly one non-primary-key attribute;
//	(3) Ri is not referenced by any inclusion dependency;
//	(4) every other inclusion dependency from Ri is key-based, and if it maps
//	    Ri's own key to some Rj[Kj] then Rk[Kk] ⊆ Rj[Kj] also belongs to I.
//
// When the conditions hold, Merge followed by RemoveAll yields a null
// constraint set consisting only of nulls-not-allowed constraints. The
// function returns the qualifying key-relation ("" and false when none).
func Prop52(s *schema.Schema, names []string) (string, bool) {
	for _, rk := range names {
		if prop52With(s, names, rk) {
			return rk, true
		}
	}
	return "", false
}

func prop52With(s *schema.Schema, names []string, rk string) bool {
	rkScheme := s.Scheme(rk)
	if rkScheme == nil {
		return false
	}
	for _, n := range names {
		if n == rk {
			continue
		}
		ri := s.Scheme(n)
		if ri == nil {
			return false
		}
		// (1)
		found := false
		for _, ind := range s.INDsFrom(n) {
			if ind.Right == rk &&
				schema.EqualAttrSets(ind.LeftAttrs, ri.PrimaryKey) &&
				schema.EqualAttrSets(ind.RightAttrs, rkScheme.PrimaryKey) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
		// (2)
		if len(schema.DiffAttrs(ri.AttrNames(), ri.PrimaryKey)) != 1 {
			return false
		}
		// (3)
		if len(s.INDsInto(n)) > 0 {
			return false
		}
		// (4)
		for _, ind := range s.INDsFrom(n) {
			if ind.Right == rk && schema.EqualAttrSets(ind.LeftAttrs, ri.PrimaryKey) {
				continue // the (1) dependency
			}
			if ind.Right == n || !ind.KeyBased(s) {
				return false
			}
			if schema.EqualAttrSets(ind.LeftAttrs, ri.PrimaryKey) {
				// Key copy as foreign key: Rk needs the same dependency.
				ok := false
				for _, other := range s.INDsFrom(rk) {
					if other.Right == ind.Right &&
						schema.EqualAttrSets(other.LeftAttrs, rkScheme.PrimaryKey) &&
						schema.EqualAttrLists(other.RightAttrs, ind.RightAttrs) {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
	}
	return true
}

// SchemeDeps collects the functional dependencies relevant to the BCNF
// analysis of one scheme: its declared FDs plus, for every total-equality
// constraint Y =⊥ Z of the scheme, the bidirectional dependencies Y → Z and
// Z → Y (Klug-style equality axioms; on the total subtuples where the
// constraint bites, each side determines the other).
func SchemeDeps(s *schema.Schema, name string) []fd.Dep {
	var deps []fd.Dep
	for _, f := range s.FDsOf(name) {
		deps = append(deps, fd.NewDep(f.LHS, f.RHS))
	}
	for _, nc := range s.NullsOf(name) {
		if te, ok := nc.(schema.TotalEquality); ok {
			deps = append(deps, fd.NewDep(te.Y, te.Z), fd.NewDep(te.Z, te.Y))
		}
	}
	return deps
}

// IsSchemeBCNF reports whether the named scheme is in BCNF under SchemeDeps.
func IsSchemeBCNF(s *schema.Schema, name string) bool {
	rs := s.Scheme(name)
	if rs == nil {
		return false
	}
	return fd.IsBCNF(rs.AttrNames(), SchemeDeps(s, name))
}

// AllBCNF reports whether every relation-scheme of the schema is in BCNF —
// the normal-form preservation claim of Prop. 4.1(ii).
func AllBCNF(s *schema.Schema) bool {
	for _, rs := range s.Relations {
		if !IsSchemeBCNF(s, rs.Name) {
			return false
		}
	}
	return true
}
