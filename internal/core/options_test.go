package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/figures"
	"repro/internal/obs"
)

func TestMergeSetDefaultName(t *testing.T) {
	m, err := MergeSet(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "COURSE'" {
		t.Errorf("default merged name = %s", m.Name)
	}
	// A second merge rooted at the same member primes again.
	m2, err := MergeSet(m.Schema, []string{"COURSE'", "ASSIST"})
	if err == nil && m2.Name != "COURSE''" {
		t.Errorf("fresh-name deduplication: %s", m2.Name)
	}
}

func TestMergeSentinelErrors(t *testing.T) {
	s := figures.Fig3()
	if _, err := MergeSet(s, []string{"COURSE"}); !errors.Is(err, ErrMergeSetTooSmall) {
		t.Errorf("too small: %v", err)
	}
	if _, err := MergeSet(s, []string{"COURSE", "NOPE"}); !errors.Is(err, ErrUnknownScheme) {
		t.Errorf("unknown scheme: %v", err)
	}
	if _, err := MergeSet(s, []string{"COURSE", "COURSE"}); !errors.Is(err, ErrDuplicateMember) {
		t.Errorf("duplicate member: %v", err)
	}
	if _, err := MergeSet(s, []string{"COURSE", "OFFER"}, WithName("TEACH")); !errors.Is(err, ErrNameCollision) {
		t.Errorf("name collision: %v", err)
	}
	if _, err := MergeSet(s, []string{"PERSON", "OFFER"}); !errors.Is(err, ErrIncompatibleKeys) {
		t.Errorf("incompatible keys: %v", err)
	}
	// ASSIST does not reference TEACH, so TEACH cannot be its key-relation.
	if _, err := MergeSet(s, []string{"OFFER", "TEACH"}, WithKeyRelation("TEACH")); !errors.Is(err, ErrBadKeyRelation) {
		t.Errorf("bad key-relation: %v", err)
	}
}

func TestErrNotRemovable(t *testing.T) {
	m, err := MergeSet(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, WithName("COURSE''"))
	if err != nil {
		t.Fatal(err)
	}
	var nr *ErrNotRemovable
	if err := m.Remove("COURSE"); !errors.As(err, &nr) {
		t.Fatalf("key-relation removal should fail typed, got %v", err)
	}
	if nr.Member != "COURSE" || nr.Condition != PreconditionMember {
		t.Errorf("fields = %+v", nr)
	}
	if err := m.Remove("NOPE"); !errors.As(err, &nr) || nr.Condition != PreconditionMember {
		t.Errorf("unknown member: %v", err)
	}
	if err := m.Remove("OFFER"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("OFFER"); !errors.As(err, &nr) {
		t.Errorf("double removal should fail typed, got %v", err)
	}
	if got := Condition3.String(); got != "condition (3)" {
		t.Errorf("Condition3.String() = %q", got)
	}
}

func TestMergeTraceSpans(t *testing.T) {
	tr := obs.NewTracer(obs.DefaultTraceCapacity)
	m, err := MergeSet(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"},
		WithName("COURSE'"), WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	m.RemoveAll(WithTrace(tr))
	want := map[string]bool{
		"core.Merge":                    false,
		"merge.step1.scheme":            false,
		"merge.step3.null_constraints":  false,
		"core.RemoveAll":                false,
		"core.Remove":                   false,
		"remove.step4.null_constraints": false,
	}
	for _, ev := range tr.Events() {
		if _, ok := want[ev.Name]; ok {
			want[ev.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("span %s not recorded", name)
		}
	}
}

func TestMergeObserver(t *testing.T) {
	var steps []string
	m, err := MergeSet(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"},
		WithObserver(func(s string) { steps = append(steps, s) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 || len(steps) != len(m.Trace()) {
		t.Fatalf("observer saw %d steps, trace has %d", len(steps), len(m.Trace()))
	}
	if !strings.Contains(steps[0], "Prop 3.1") {
		t.Errorf("first step = %q", steps[0])
	}
}

func TestApplyPlanCancellation(t *testing.T) {
	s := figures.Fig3()
	clusters := Prop52Clusters(s)
	if len(clusters) == 0 {
		t.Fatal("fig3 should yield at least one Prop 5.2 cluster")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ApplyPlan(s, clusters, WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled plan: %v", err)
	}
	// Without a context the plan still applies.
	if _, merges, err := ApplyPlan(s, clusters); err != nil || len(merges) != len(clusters) {
		t.Errorf("plan without context: %v (%d merges)", err, len(merges))
	}
}
