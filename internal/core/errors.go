package core

import (
	"errors"
	"fmt"
)

// Sentinel errors for the merge preconditions of Definition 4.1. They are
// wrapped with the offending names, so match with errors.Is.
var (
	// ErrMergeSetTooSmall: fewer than two relation-schemes in the merge set.
	ErrMergeSetTooSmall = errors.New("core: merge set must have at least two relation-schemes")
	// ErrUnknownScheme: a merge-set name the schema does not define.
	ErrUnknownScheme = errors.New("core: unknown relation-scheme")
	// ErrDuplicateMember: a name listed twice in the merge set.
	ErrDuplicateMember = errors.New("core: duplicate member")
	// ErrNameCollision: the merged name already names a scheme.
	ErrNameCollision = errors.New("core: merged name collides with an existing scheme")
	// ErrIncompatibleKeys: two members' primary keys are not compatible
	// (Def. 2.x compatibility: same arity and domains position-wise).
	ErrIncompatibleKeys = errors.New("core: primary keys are not compatible")
	// ErrNullableMember: a member attribute is not covered by a
	// nulls-not-allowed constraint (Def. 4.1's simplifying assumption).
	ErrNullableMember = errors.New("core: member attribute allows nulls")
	// ErrBadKeyRelation: the requested key-relation fails Prop. 3.1.
	ErrBadKeyRelation = errors.New("core: requested key-relation does not satisfy the Prop. 3.1 condition")
	// ErrNotMember: a name that is not part of the merge set.
	ErrNotMember = errors.New("core: not a member of the merge set")
)

// RemovabilityCondition identifies which part of Definition 4.2 rejected a
// removal. Conditions 1–4 follow the paper's numbering; the Precondition
// values cover the implicit requirements checked before them.
type RemovabilityCondition int

const (
	// PreconditionMember: the name is not a merge-set member, is the
	// key-relation, or its key copy is already removed.
	PreconditionMember RemovabilityCondition = iota
	// PreconditionTotalEquality: the defining Km =⊥ Yj constraint is gone.
	PreconditionTotalEquality
	// Condition1: removal would leave no attribute of the member.
	Condition1
	// Condition2: Yj appears in the right-hand side of an inclusion
	// dependency from another scheme.
	Condition2
	// Condition3: the foreign key Rm[Yj] ⊆ Rj[Kj] has no Km counterpart.
	Condition3
	// Condition4: Yj overlaps another foreign key of Rm.
	Condition4
)

// String renders the condition in the paper's numbering.
func (c RemovabilityCondition) String() string {
	switch c {
	case PreconditionMember:
		return "membership precondition"
	case PreconditionTotalEquality:
		return "total-equality precondition"
	case Condition1, Condition2, Condition3, Condition4:
		return fmt.Sprintf("condition (%d)", int(c)-int(Condition1)+1)
	default:
		return "unknown condition"
	}
}

// ErrNotRemovable is the typed error returned by IsRemovable and Remove when
// Definition 4.2 rejects removing a member's key copy. Extract it with
// errors.As to learn which condition failed.
type ErrNotRemovable struct {
	// Member is the merge-set member whose key copy was to be removed.
	Member string
	// Attrs is the key copy Yj (empty when the member is unknown).
	Attrs []string
	// Condition identifies the failing clause of Definition 4.2.
	Condition RemovabilityCondition
	// Reason is the human-readable explanation, in the engine's historical
	// message format.
	Reason string
}

// Error returns the historical message text.
func (e *ErrNotRemovable) Error() string { return e.Reason }

func notRemovable(member string, attrs []string, cond RemovabilityCondition, format string, args ...any) *ErrNotRemovable {
	return &ErrNotRemovable{
		Member:    member,
		Attrs:     append([]string(nil), attrs...),
		Condition: cond,
		Reason:    fmt.Sprintf(format, args...),
	}
}
