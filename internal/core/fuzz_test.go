package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/nullcon"
	"repro/internal/schema"
	"repro/internal/state"
)

// randomCluster builds a random baseline schema in the paper's form: a root
// relation-scheme, a random tree of key-compatible dependents hanging off it
// (each referencing its parent's key), a few external target entities
// referenced by non-key foreign keys, and optionally an external scheme
// referencing a random cluster member (which flips Prop. 5.1(i)). All
// attributes are NNA. It returns the schema and the merge set.
func randomCluster(rng *rand.Rand) (*schema.Schema, []string) {
	s := schema.New()
	keyDom := "kd"

	// External targets.
	nTargets := 1 + rng.Intn(3)
	var targets []string
	for i := 0; i < nTargets; i++ {
		name := fmt.Sprintf("X%d", i)
		attr := fmt.Sprintf("X%d.ID", i)
		s.AddScheme(schema.NewScheme(name,
			[]schema.Attribute{{Name: attr, Domain: fmt.Sprintf("xd%d", i)}}, []string{attr}))
		s.Nulls = append(s.Nulls, schema.NNA(name, attr))
		targets = append(targets, name)
	}

	// Root.
	s.AddScheme(schema.NewScheme("R0",
		[]schema.Attribute{{Name: "R0.K", Domain: keyDom}}, []string{"R0.K"}))
	s.Nulls = append(s.Nulls, schema.NNA("R0", "R0.K"))
	members := []string{"R0"}

	// Dependents.
	n := 1 + rng.Intn(5)
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("D%d", i)
		keyAttr := fmt.Sprintf("D%d.K", i)
		parent := members[rng.Intn(len(members))]
		parentScheme := s.Scheme(parent)
		attrs := []schema.Attribute{{Name: keyAttr, Domain: keyDom}}
		nnaList := []string{keyAttr}
		// 0–2 non-key attributes; some are foreign keys to targets.
		for j := 0; j < rng.Intn(3); j++ {
			an := fmt.Sprintf("D%d.A%d", i, j)
			if rng.Intn(2) == 0 {
				tgt := targets[rng.Intn(len(targets))]
				tgtScheme := s.Scheme(tgt)
				attrs = append(attrs, schema.Attribute{Name: an, Domain: tgtScheme.Attrs[0].Domain})
				s.INDs = append(s.INDs, schema.NewIND(name, []string{an}, tgt, tgtScheme.PrimaryKey))
			} else {
				attrs = append(attrs, schema.Attribute{Name: an, Domain: fmt.Sprintf("ad%d_%d", i, j)})
			}
			nnaList = append(nnaList, an)
		}
		s.AddScheme(schema.NewScheme(name, attrs, []string{keyAttr}))
		s.Nulls = append(s.Nulls, schema.NNA(name, nnaList...))
		s.INDs = append(s.INDs, schema.NewIND(name, []string{keyAttr}, parent, parentScheme.PrimaryKey))
		members = append(members, name)
	}

	// Optionally an external scheme referencing a random member's key.
	if rng.Intn(3) == 0 {
		victim := members[1+rng.Intn(len(members)-1)]
		vs := s.Scheme(victim)
		s.AddScheme(schema.NewScheme("EXT",
			[]schema.Attribute{{Name: "EXT.K", Domain: keyDom}}, []string{"EXT.K"}))
		s.Nulls = append(s.Nulls, schema.NNA("EXT", "EXT.K"))
		s.INDs = append(s.INDs, schema.NewIND("EXT", []string{"EXT.K"}, victim, vs.PrimaryKey))
	}
	return s, members
}

// The fuzz property suite: on randomized cluster schemas, Merge + RemoveAll
// must (a) produce a valid BCNF schema, (b) preserve information capacity on
// generated states, and (c) agree with the Prop. 5.1(i) prediction.
func TestMergeRandomizedSchemas(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	for trial := 0; trial < 120; trial++ {
		s, members := randomCluster(rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid schema: %v", trial, err)
		}
		kb, _ := Prop51(s, members)

		m, err := Merge(s, members, "MERGED")
		if err != nil {
			t.Fatalf("trial %d: merge failed: %v\n%s", trial, err, s)
		}
		if got := AllINDsKeyBased(m.Schema); got != kb {
			t.Fatalf("trial %d: Prop51(i)=%v but output key-based=%v\n%s", trial, kb, got, s)
		}
		if !AllBCNF(m.Schema) {
			t.Fatalf("trial %d: merged schema not BCNF\n%s", trial, m.Schema)
		}
		m.RemoveAll()
		if err := m.Schema.Validate(); err != nil {
			t.Fatalf("trial %d: post-remove schema invalid: %v", trial, err)
		}
		if !AllBCNF(m.Schema) {
			t.Fatalf("trial %d: post-remove schema not BCNF", trial)
		}

		// Round trip on a couple of generated states with ragged sizes.
		for rep := 0; rep < 2; rep++ {
			rows := map[string]int{}
			for _, name := range members {
				rows[name] = 1 + rng.Intn(6)
			}
			db, err := state.Generate(s, rng, state.GenOptions{Rows: 6, RowsPer: rows})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			mapped := m.MapState(db)
			if err := state.Consistent(m.Schema, mapped); err != nil {
				t.Fatalf("trial %d: mapped state inconsistent: %v\nschema:\n%s\nmerged:\n%s\nstate:\n%s",
					trial, err, s, m.Schema, db)
			}
			if !m.RoundTrip(db) {
				t.Fatalf("trial %d: round trip failed\nschema:\n%s\nstate:\n%s", trial, s, db)
			}
		}

		// When Prop. 5.2 certifies the set, the constraints must be only-NNA.
		if _, ok := Prop52(s, members); ok {
			if !nullcon.OnlyNNA(m.Schema.NullsOf("MERGED")) {
				t.Fatalf("trial %d: Prop52 certified but constraints not only-NNA: %v",
					trial, m.Schema.NullsOf("MERGED"))
			}
		}
	}
}

// Sub-cluster merges: random contiguous subsets of the cluster must also
// merge and round-trip (the key-relation may then be synthetic).
func TestMergeRandomizedSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(42424242))
	for trial := 0; trial < 60; trial++ {
		s, members := randomCluster(rng)
		if len(members) < 3 {
			continue
		}
		// A random subset of size ≥ 2 that may exclude the root.
		var subset []string
		for _, name := range members {
			if rng.Intn(2) == 0 {
				subset = append(subset, name)
			}
		}
		if len(subset) < 2 {
			subset = members[len(members)-2:]
		}
		m, err := Merge(s, subset, "MERGED")
		if err != nil {
			t.Fatalf("trial %d: merge of %v failed: %v", trial, subset, err)
		}
		db, err := state.Generate(s, rng, state.GenOptions{Rows: 5})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !m.RoundTrip(db) {
			t.Fatalf("trial %d: subset %v round trip failed (synthetic=%v)\n%s",
				trial, subset, m.Synthetic, s)
		}
		if err := state.Consistent(m.Schema, m.MapState(db)); err != nil {
			t.Fatalf("trial %d: subset %v mapped state inconsistent: %v", trial, subset, err)
		}
	}
}
