package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/eer"
	"repro/internal/figures"
	"repro/internal/state"
	"repro/internal/translate"
)

// starSchema builds the relational star of n relationship-sets without
// importing the workload package (which depends on core).
func starSchema(b *testing.B, n int) ([]string, *MergedScheme, func() *MergedScheme) {
	b.Helper()
	es := eer.New()
	es.Entities = append(es.Entities, &eer.EntitySet{
		Name: "E0", Prefix: "E0",
		OwnAttrs:  []eer.Attr{{Name: "E0.ID", Domain: "e0"}},
		ID:        []string{"E0.ID"},
		CopyBases: []string{"ID"},
	})
	for i := 1; i <= n; i++ {
		tn := fmt.Sprintf("T%d", i)
		es.Entities = append(es.Entities, &eer.EntitySet{
			Name: tn, Prefix: tn,
			OwnAttrs: []eer.Attr{{Name: tn + ".ID", Domain: fmt.Sprintf("t%d", i)}},
			ID:       []string{tn + ".ID"},
		})
		es.Relationships = append(es.Relationships, &eer.RelationshipSet{
			Name: fmt.Sprintf("R%d", i), Prefix: fmt.Sprintf("R%d", i),
			Parts: []eer.Participant{
				{Object: "E0", Card: eer.Many},
				{Object: tn, Card: eer.One},
			},
		})
	}
	s, err := translate.MS(es)
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"E0"}
	for i := 1; i <= n; i++ {
		names = append(names, fmt.Sprintf("R%d", i))
	}
	mk := func() *MergedScheme {
		m, err := Merge(s, names, "MERGED")
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	return names, mk(), mk
}

func BenchmarkMergeStar(b *testing.B) {
	for _, n := range []int{4, 16} {
		_, _, mk := starSchema(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mk()
			}
		})
	}
}

func BenchmarkRemoveAllStar(b *testing.B) {
	for _, n := range []int{4, 16} {
		_, _, mk := starSchema(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := mk()
				b.StartTimer()
				m.RemoveAll()
				b.StopTimer()
			}
		})
	}
}

func BenchmarkMapState(b *testing.B) {
	s := figures.Fig3()
	m, err := Merge(s, []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for _, rows := range []int{50, 500} {
		db := state.MustGenerate(s, rng, state.GenOptions{Rows: rows})
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.MapState(db)
			}
		})
	}
}

func BenchmarkUnmapState(b *testing.B) {
	s := figures.Fig3()
	m, err := Merge(s, []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	if err != nil {
		b.Fatal(err)
	}
	m.RemoveAll()
	rng := rand.New(rand.NewSource(5))
	db := state.MustGenerate(s, rng, state.GenOptions{Rows: 200})
	mapped := m.MapState(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.UnmapState(mapped)
	}
}

func BenchmarkIsRemovable(b *testing.B) {
	m, err := Merge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := m.IsRemovable("TEACH"); err != nil {
			b.Fatal(err)
		}
	}
}
