package workload

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/wal"
)

// The read-under-write driver on both sides: reads all land, the idle run
// proves the lock-free read path (zero lock-plan acquisitions), the
// saturated run shows writer progress beside the readers, and the
// checkpointed run cycles real checkpoints on a durable engine. Named to run
// fresh under the race detector via `make stress`.
func TestConcurrentReadUnderWriteDriver(t *testing.T) {
	dir := t.TempDir()
	b, err := NewBenchSided(StarEER(4), "E0", 24, 3, func(s Side) []engine.Option {
		return []engine.Option{
			engine.WithWALOptions(dir+"/"+s.String(), wal.Options{Policy: wal.SyncNever}),
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, side := range []Side{SideBase, SideMerged} {
		idle, err := b.RunReadUnderWrite(side, ReadUnderWriteConfig{
			Readers: 3, ReadsPerReader: 40, ZipfS: 1.2, Seed: 5,
		})
		if err != nil {
			t.Fatalf("%v idle: %v", side, err)
		}
		if idle.Reads != 3*40 {
			t.Errorf("%v idle reads = %d, want %d", side, idle.Reads, 3*40)
		}
		if idle.LockAcquireDelta != 0 {
			t.Errorf("%v idle run acquired %d lock plans; read path is not lock-free", side, idle.LockAcquireDelta)
		}
		if idle.Writes != 0 || idle.Checkpoints != 0 {
			t.Errorf("%v idle run reported background work: %+v", side, idle)
		}

		sat, err := b.RunReadUnderWrite(side, ReadUnderWriteConfig{
			Readers: 3, ReadsPerReader: 40, Writer: true, Checkpoint: true, Seed: 6,
		})
		if err != nil {
			t.Fatalf("%v saturated: %v", side, err)
		}
		if sat.Reads != 3*40 {
			t.Errorf("%v saturated reads = %d, want %d", side, sat.Reads, 3*40)
		}
		if sat.Writes == 0 {
			t.Errorf("%v saturating writer made no progress", side)
		}
		if sat.Checkpoints == 0 {
			t.Errorf("%v checkpoint cycler made no progress", side)
		}
		if sat.LockAcquireDelta == 0 {
			t.Errorf("%v saturated run reported zero lock acquisitions despite writer+checkpointer", side)
		}
	}
}

// Checkpoint cycling on a non-durable engine must surface the engine's
// ErrNotDurable instead of spinning or succeeding vacuously.
func TestReadUnderWriteCheckpointNeedsWAL(t *testing.T) {
	b, err := NewBench(StarEER(2), "E0", 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.RunReadUnderWrite(SideBase, ReadUnderWriteConfig{
		Readers: 1, ReadsPerReader: 5, Checkpoint: true, Seed: 9,
	})
	if err == nil {
		t.Fatal("checkpoint cycling on a non-durable engine returned nil")
	}
}
