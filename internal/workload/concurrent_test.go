package workload

import (
	"testing"
	"time"

	"repro/internal/engine"
)

func TestRunMixedBothSides(t *testing.T) {
	b, err := NewBench(StarEER(4), "E0", 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, side := range []Side{SideBase, SideMerged} {
		before := 0
		if side == SideBase {
			before = b.Base.Count(b.Root)
		} else {
			before = b.Merged.Count(b.Scheme.Name)
		}
		res, err := b.RunMixed(side, MixedConfig{
			Workers:      4,
			Ops:          200,
			ReadFraction: 0.8,
			ZipfS:        1.2,
			Seed:         11,
		})
		if err != nil {
			t.Fatalf("%v: %v", side, err)
		}
		if res.Ops != 200 || res.Reads+res.Writes != res.Ops {
			t.Errorf("%v: ops=%d reads=%d writes=%d", side, res.Ops, res.Reads, res.Writes)
		}
		if res.Errors != 0 {
			t.Errorf("%v: %d op errors", side, res.Errors)
		}
		if res.Writes == 0 || res.Reads == 0 {
			t.Errorf("%v: degenerate mix reads=%d writes=%d", side, res.Reads, res.Writes)
		}
		// Every successful write landed exactly one row in the written relation.
		after := 0
		if side == SideBase {
			after = b.Base.Count(b.Root)
		} else {
			after = b.Merged.Count(b.Scheme.Name)
		}
		if after-before != res.Writes {
			t.Errorf("%v: wrote %d ops but relation grew by %d", side, res.Writes, after-before)
		}
		if res.OpsPerSec <= 0 || res.P50 <= 0 || res.P99 < res.P50 {
			t.Errorf("%v: bad timing stats %+v", side, res)
		}
	}
}

// The chain shape's merged relation carries null-existence constraints; the
// concurrent write template must satisfy them.
func TestRunMixedChainWrites(t *testing.T) {
	b, err := NewBench(ChainEER(4), "E0", 40, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.RunMixed(SideMerged, MixedConfig{Workers: 2, Ops: 100, ReadFraction: 0.5, Seed: 3})
	if err != nil {
		t.Fatalf("chain merged mix: %v", err)
	}
	if res.Errors != 0 {
		t.Errorf("chain merged mix: %d op errors", res.Errors)
	}
}

// With an access delay inside the engine's critical sections, read-mostly
// throughput must grow with workers: readers overlap under the shared lock.
func TestRunMixedScalesWithWorkers(t *testing.T) {
	b, err := NewBench(StarEER(4), "E0", 50, 7, engine.WithAccessDelay(200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	cfg := MixedConfig{Ops: 160, ReadFraction: 1.0, Seed: 5}
	cfg.Workers = 1
	one, err := b.RunMixed(SideMerged, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	eight, err := b.RunMixed(SideMerged, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eight.OpsPerSec <= one.OpsPerSec {
		t.Errorf("read-only throughput did not scale: 1 worker %.0f ops/s, 8 workers %.0f ops/s",
			one.OpsPerSec, eight.OpsPerSec)
	}
}
