package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relation"
)

// ReadUnderWriteConfig shapes one read-under-write run: N closed-loop reader
// goroutines issuing navigational fetches, optionally racing a saturating
// writer and a checkpoint cycler. It is the driver behind the P8 benchmark
// suite — the MVCC claim ("writers never block readers") measured directly,
// by comparing reader throughput with the writer idle vs. saturating.
type ReadUnderWriteConfig struct {
	// Readers is the number of closed-loop reader goroutines (minimum 1).
	Readers int
	// ReadsPerReader is each reader's fetch count (minimum 1).
	ReadsPerReader int
	// Writer, when true, runs one saturating writer (back-to-back inserts of
	// fresh rows, no think time) for the whole read phase.
	Writer bool
	// Checkpoint, when true, cycles engine checkpoints for the whole read
	// phase. Requires the side's engine to be durable (a WAL is attached).
	Checkpoint bool
	// ZipfS skews read keys with a Zipf(s) distribution when s > 1; any value
	// ≤ 1 reads keys uniformly.
	ZipfS float64
	// Seed makes the per-reader key streams deterministic.
	Seed int64
}

// ReadUnderWriteResult reports one run: reader throughput and latency, the
// background writer/checkpoint progress, and the engine's lock-plan
// acquisition delta across the run. With Writer and Checkpoint off the delta
// must be zero — the observable proof that the fetch hot path is lock-free.
type ReadUnderWriteResult struct {
	Side        Side
	Readers     int
	Reads       int
	Writes      int
	Checkpoints int
	Elapsed     time.Duration
	ReadsPerSec float64
	P50         time.Duration
	P99         time.Duration
	// LockAcquireDelta is the engine's lock-plan acquisition count growth
	// during the run: writer and checkpoint acquisitions only, never the
	// readers'.
	LockAcquireDelta uint64
}

// RunReadUnderWrite drives the read-under-write scenario against one side of
// the bench. Readers issue FetchWithReferences on the side's center relation
// (the merged relation or the base root) over the preloaded keys; the
// optional writer inserts fresh rows under keys disjoint from every reader's;
// the optional checkpointer calls Checkpoint back-to-back. Readers, writer,
// and checkpointer run concurrently with no coordination beyond the engine's
// own — which, on the MVCC read path, means none at all.
func (b *Bench) RunReadUnderWrite(side Side, cfg ReadUnderWriteConfig) (ReadUnderWriteResult, error) {
	eng := b.Base
	relName := b.Root
	if side == SideMerged {
		eng = b.Merged
		relName = b.Scheme.Name
	}
	readers := cfg.Readers
	if readers < 1 {
		readers = 1
	}
	perReader := cfg.ReadsPerReader
	if perReader < 1 {
		perReader = 1
	}
	if len(b.Keys) == 0 {
		return ReadUnderWriteResult{}, fmt.Errorf("workload: bench has no keys to read")
	}

	tmpl, keyPos, insRel, _, err := b.insertTemplate(side)
	if err != nil {
		return ReadUnderWriteResult{}, err
	}

	var (
		wg          sync.WaitGroup
		lats        = make([][]time.Duration, readers)
		errs        = make([]error, readers)
		stop        = make(chan struct{})
		writes      atomic.Int64
		checkpoints atomic.Int64
		bgErr       atomic.Value
	)
	lockBase := eng.LockAcquisitions()
	start := time.Now()

	if cfg.Writer {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Op first, stop check second: even if the readers finish before
			// this goroutine is scheduled, a saturating writer writes at
			// least once.
			for {
				row := make(relation.Tuple, len(tmpl))
				copy(row, tmpl)
				key := relation.NewString(fmt.Sprintf("ruw-%d", b.seq.Add(1)))
				for _, p := range keyPos {
					row[p] = key
				}
				if err := eng.Insert(insRel, row); err != nil {
					bgErr.Store(fmt.Errorf("workload: saturating writer: %w", err))
					return
				}
				writes.Add(1)
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	if cfg.Checkpoint {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := eng.Checkpoint(); err != nil {
					bgErr.Store(fmt.Errorf("workload: checkpoint cycler: %w", err))
					return
				}
				checkpoints.Add(1)
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}

	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(r)*6143))
			var zipf *rand.Zipf
			if cfg.ZipfS > 1 && len(b.Keys) > 1 {
				zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(b.Keys)-1))
			}
			lat := make([]time.Duration, 0, perReader)
			for i := 0; i < perReader; i++ {
				var ki int
				if zipf != nil {
					ki = int(zipf.Uint64())
				} else {
					ki = rng.Intn(len(b.Keys))
				}
				t0 := time.Now()
				if _, _, err := eng.FetchWithReferences(relName, b.Keys[ki]); err != nil && errs[r] == nil {
					errs[r] = err
				}
				lat = append(lat, time.Since(t0))
			}
			lats[r] = lat
		}(r)
	}
	rwg.Wait()
	readElapsed := time.Since(start)
	close(stop)
	wg.Wait()

	res := ReadUnderWriteResult{
		Side:             side,
		Readers:          readers,
		Writes:           int(writes.Load()),
		Checkpoints:      int(checkpoints.Load()),
		Elapsed:          readElapsed,
		LockAcquireDelta: eng.LockAcquisitions() - lockBase,
	}
	var all []time.Duration
	for r := 0; r < readers; r++ {
		res.Reads += len(lats[r])
		all = append(all, lats[r]...)
		if errs[r] != nil {
			err = errs[r]
		}
	}
	if e, ok := bgErr.Load().(error); ok && err == nil {
		err = e
	}
	if readElapsed > 0 {
		res.ReadsPerSec = float64(res.Reads) / readElapsed.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50 = percentile(all, 50)
	res.P99 = percentile(all, 99)
	return res, err
}
