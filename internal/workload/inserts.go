package workload

import (
	"sort"
	"sync"
	"time"

	"repro/internal/relation"
	"repro/pkg/relmerge"
)

// InsertConfig shapes one concurrent insert-only run against a Session: the
// write-scaling driver behind the shard benchmarks. Row receives a globally
// unique index, so the caller controls the key scheme (fresh keys per op) and
// any foreign-key targets without the driver knowing the schema.
type InsertConfig struct {
	// Workers is the number of closed-loop goroutines (minimum 1).
	Workers int
	// Ops is the total insert count, split evenly across workers.
	Ops int
	// Relation is the target relation name.
	Relation string
	// Row builds the tuple for the i-th insert; i is unique across workers
	// and runs sequentially from Base.
	Row func(i int) relation.Tuple
	// Base offsets the index stream, keeping keys disjoint across runs
	// against the same session.
	Base int
}

// InsertResult reports one insert-only run: throughput and per-operation
// latency percentiles.
type InsertResult struct {
	Ops       int
	Errors    int
	Elapsed   time.Duration
	OpsPerSec float64
	P50       time.Duration
	P99       time.Duration
}

// RunInsertsOn drives cfg.Ops inserts through the Session from cfg.Workers
// closed-loop goroutines, each owning a disjoint index range. The first error
// per worker is kept (and counted); remaining inserts still run, so the
// throughput figure always covers the configured op count. The session is
// not closed.
func RunInsertsOn(sess relmerge.Session, cfg InsertConfig) (InsertResult, error) {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	perWorker := cfg.Ops / workers
	if perWorker < 1 {
		perWorker = 1
	}
	var (
		wg   sync.WaitGroup
		lats = make([][]time.Duration, workers)
		errs = make([]error, workers)
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				idx := cfg.Base + w*perWorker + i
				t0 := time.Now()
				if err := sess.Insert(cfg.Relation, cfg.Row(idx)); err != nil && errs[w] == nil {
					errs[w] = err
				}
				lat = append(lat, time.Since(t0))
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := InsertResult{Elapsed: elapsed}
	var all []time.Duration
	var firstErr error
	for w := 0; w < workers; w++ {
		all = append(all, lats[w]...)
		if errs[w] != nil {
			res.Errors++
			firstErr = errs[w]
		}
	}
	res.Ops = len(all)
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50 = percentile(all, 50)
	res.P99 = percentile(all, 99)
	return res, firstErr
}
