package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/pkg/relmerge"
)

// Side selects which engine of a Bench a concurrent run drives.
type Side int

const (
	// SideBase drives the unmerged design: a profile query navigates every
	// merge-set member relation.
	SideBase Side = iota
	// SideMerged drives the merged design: a profile query is one lookup.
	SideMerged
)

func (s Side) String() string {
	if s == SideMerged {
		return "merged"
	}
	return "base"
}

// MixedConfig shapes one concurrent mixed read/write run.
type MixedConfig struct {
	// Workers is the number of closed-loop goroutines (minimum 1).
	Workers int
	// Ops is the total operation count, split evenly across workers.
	Ops int
	// ReadFraction is the probability an operation is a profile query rather
	// than an insert (0.9 = the read-mostly 90/10 mix).
	ReadFraction float64
	// ZipfS skews read keys with a Zipf(s) distribution when s > 1 (popular
	// keys drawn far more often); any value ≤ 1 reads keys uniformly.
	ZipfS float64
	// Seed makes the per-worker operation streams deterministic.
	Seed int64
}

// MixedResult reports one concurrent run: aggregate throughput and the
// latency distribution of individual operations.
type MixedResult struct {
	Side         Side
	Workers      int
	Ops          int
	Reads        int
	Writes       int
	Errors       int
	Elapsed      time.Duration
	OpsPerSec    float64
	P50          time.Duration
	P99          time.Duration
	ReadFraction float64
}

// RunMixed drives a closed-loop concurrent workload against one side of the
// bench: Workers goroutines each issue their share of Ops operations with no
// think time, choosing per operation between a profile query on a (possibly
// Zipf-skewed) existing key and an insert of a fresh row under a key range
// disjoint from every other worker and every other run. It returns aggregate
// throughput and per-operation latency percentiles.
//
// Inserts write only the root (respectively merged) relation, so concurrent
// runs against the same bench never write the lookup targets the profile
// queries chase.
//
// RunMixed drives the bench's embedded engine; RunMixedOn drives the same
// workload through any Session — an embedded one behaves identically, a
// remote one measures the full client/server path.
func (b *Bench) RunMixed(side Side, cfg MixedConfig) (MixedResult, error) {
	eng := b.Base
	if side == SideMerged {
		eng = b.Merged
	}
	return b.RunMixedOn(relmerge.NewSession(eng), side, cfg)
}

// RunMixedOn is RunMixed over an arbitrary Session, which must serve the
// schema of the given side (for a remote session: a server over that side's
// engine). Workers maps to concurrent client requests; each profile query is
// one Fetch per member relation (base side) or one Fetch (merged side), and
// each write is one Insert. The session is not closed.
func (b *Bench) RunMixedOn(sess relmerge.Session, side Side, cfg MixedConfig) (MixedResult, error) {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	perWorker := cfg.Ops / workers
	if perWorker < 1 {
		perWorker = 1
	}
	if len(b.Keys) == 0 {
		return MixedResult{}, fmt.Errorf("workload: bench has no keys to read")
	}

	// Insert templates are prepared once, single-threaded: the per-op write
	// clones the template and stamps a fresh key, so worker goroutines never
	// read the bench's schemas or sample the target relations while running.
	tmpl, keyPos, relName, _, err := b.insertTemplate(side)
	if err != nil {
		return MixedResult{}, err
	}

	var (
		wg    sync.WaitGroup
		lats  = make([][]time.Duration, workers)
		reads = make([]int, workers)
		wrs   = make([]int, workers)
		errs  = make([]error, workers)
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			var zipf *rand.Zipf
			if cfg.ZipfS > 1 && len(b.Keys) > 1 {
				zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(b.Keys)-1))
			}
			lat := make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				t0 := time.Now()
				if rng.Float64() < cfg.ReadFraction {
					var ki int
					if zipf != nil {
						ki = int(zipf.Uint64())
					} else {
						ki = rng.Intn(len(b.Keys))
					}
					if side == SideMerged {
						if _, _, err := sess.Fetch(b.Scheme.Name, b.Keys[ki]); err != nil && errs[w] == nil {
							errs[w] = err
						}
					} else {
						for _, name := range b.MemberNames {
							if _, _, err := sess.Fetch(name, b.Keys[ki]); err != nil && errs[w] == nil {
								errs[w] = err
							}
						}
					}
					reads[w]++
				} else {
					row := make(relation.Tuple, len(tmpl))
					copy(row, tmpl)
					key := relation.NewString(fmt.Sprintf("mix-%d", b.seq.Add(1)))
					for _, p := range keyPos {
						row[p] = key
					}
					if err := sess.Insert(relName, row); err != nil && errs[w] == nil {
						errs[w] = err
					}
					wrs[w]++
				}
				lat = append(lat, time.Since(t0))
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := MixedResult{
		Side:         side,
		Workers:      workers,
		Elapsed:      elapsed,
		ReadFraction: cfg.ReadFraction,
	}
	var all []time.Duration
	for w := 0; w < workers; w++ {
		res.Reads += reads[w]
		res.Writes += wrs[w]
		all = append(all, lats[w]...)
		if errs[w] != nil {
			res.Errors++
			err = errs[w]
		}
	}
	res.Ops = res.Reads + res.Writes
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50 = percentile(all, 50)
	res.P99 = percentile(all, 99)
	return res, err
}

// insertTemplate builds the write-path row template for one side: a full,
// constraint-satisfying tuple whose primary-key positions are stamped with a
// fresh key per insert. Foreign keys reference the first tuple of each target
// relation (never written by RunMixed, so the sample stays valid).
func (b *Bench) insertTemplate(side Side) (relation.Tuple, []int, string, *engine.DB, error) {
	if side == SideBase {
		rs := b.baseSchema.Scheme(b.Root)
		row := make(relation.Tuple, len(rs.Attrs))
		pos := map[string]int{}
		for i, a := range rs.AttrNames() {
			pos[a] = i
			row[i] = relation.NewString("fill")
		}
		keyPos := make([]int, 0, len(rs.PrimaryKey))
		for _, k := range rs.PrimaryKey {
			keyPos = append(keyPos, pos[k])
		}
		return row, keyPos, b.Root, b.Base, nil
	}

	mergedScheme := b.Merged.Schema.Scheme(b.Scheme.Name)
	row := make(relation.Tuple, len(mergedScheme.Attrs))
	pos := map[string]int{}
	for i, a := range mergedScheme.AttrNames() {
		pos[a] = i
		row[i] = relation.Null()
	}
	keyPos := make([]int, 0, len(b.Scheme.Km))
	for _, k := range b.Scheme.Km {
		keyPos = append(keyPos, pos[k])
	}
	// Satisfy the merged relation's inclusion dependencies and null-existence
	// chains by filling every referencing attribute group from the first tuple
	// of its target relation.
	for _, ind := range b.Merged.Schema.INDsFrom(b.Scheme.Name) {
		target := b.Merged.Relation(ind.Right)
		if target == nil || target.Len() == 0 {
			return nil, nil, "", nil, fmt.Errorf("workload: empty dependency target %s", ind.Right)
		}
		sample := target.Tuples()[0].Project(target.Positions(ind.RightAttrs))
		for i, a := range ind.LeftAttrs {
			if p, ok := pos[a]; ok {
				row[p] = sample[i]
			}
		}
	}
	// Any attribute still null that a null constraint requires gets a filler.
	for i := range row {
		if row[i].IsNull() {
			row[i] = relation.NewString("fill")
		}
	}
	return row, keyPos, b.Scheme.Name, b.Merged, nil
}

// percentile returns the p-th percentile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
