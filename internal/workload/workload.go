// Package workload builds the synthetic schemas, data, and query/update
// workloads behind the performance experiments (P1–P3 in DESIGN.md):
//
//   - StarEER(n): an object-set involved with Many cardinality in n
//     attribute-less binary many-to-one relationship-sets — the figure 8(iv)
//     shape, which merges to an only-NNA relation (Prop. 5.2);
//   - ChainEER(n): a chain of relationship-sets each hanging off the previous
//     one — the figure 7 OFFER/TEACH shape generalized, which merges to a
//     relation with a chain of null-existence constraints needing procedural
//     (trigger-style) maintenance;
//   - HierarchyEER(n, k): a generalization hierarchy with n specializations
//     of k own attributes each — figure 8(i) for k > 1, figure 8(iii) for
//     k = 1.
//
// Bench pairs a base (unmerged) engine with a merged engine over the same
// data and exposes the object-profile query both ways, so benchmarks measure
// the access-path saving merging buys and the constraint-maintenance cost it
// incurs.
package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/eer"
	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/state"
	"repro/internal/translate"
)

// StarEER builds the star schema: center entity E0 and relationship-sets
// R1..Rn, each binary many-to-one from E0 to a fresh target entity Ti.
func StarEER(n int) *eer.Schema {
	s := eer.New()
	s.Entities = append(s.Entities, &eer.EntitySet{
		Name: "E0", Prefix: "E0",
		OwnAttrs:  []eer.Attr{{Name: "E0.ID", Domain: "e0_id"}},
		ID:        []string{"E0.ID"},
		CopyBases: []string{"ID"},
	})
	for i := 1; i <= n; i++ {
		tn := fmt.Sprintf("T%d", i)
		s.Entities = append(s.Entities, &eer.EntitySet{
			Name: tn, Prefix: tn,
			OwnAttrs: []eer.Attr{{Name: tn + ".ID", Domain: fmt.Sprintf("t%d_id", i)}},
			ID:       []string{tn + ".ID"},
		})
		rn := fmt.Sprintf("R%d", i)
		s.Relationships = append(s.Relationships, &eer.RelationshipSet{
			Name: rn, Prefix: rn,
			Parts: []eer.Participant{
				{Object: "E0", Card: eer.Many},
				{Object: tn, Card: eer.One},
			},
		})
	}
	return s
}

// ChainEER builds the chain schema: entity E0, relationship-set R1 from E0,
// and each subsequent Ri hanging off R(i-1) — so merging produces the
// null-existence constraint chain Xi ⊑ X(i-1).
func ChainEER(n int) *eer.Schema {
	s := eer.New()
	s.Entities = append(s.Entities, &eer.EntitySet{
		Name: "E0", Prefix: "E0",
		OwnAttrs:  []eer.Attr{{Name: "E0.ID", Domain: "e0_id"}},
		ID:        []string{"E0.ID"},
		CopyBases: []string{"ID"},
	})
	prev := "E0"
	for i := 1; i <= n; i++ {
		tn := fmt.Sprintf("T%d", i)
		s.Entities = append(s.Entities, &eer.EntitySet{
			Name: tn, Prefix: tn,
			OwnAttrs: []eer.Attr{{Name: tn + ".ID", Domain: fmt.Sprintf("t%d_id", i)}},
			ID:       []string{tn + ".ID"},
		})
		rn := fmt.Sprintf("R%d", i)
		s.Relationships = append(s.Relationships, &eer.RelationshipSet{
			Name: rn, Prefix: rn,
			Parts: []eer.Participant{
				{Object: prev, Card: eer.Many},
				{Object: tn, Card: eer.One},
			},
		})
		prev = rn
	}
	return s
}

// HierarchyEER builds a generalization hierarchy: root P with n
// specializations S1..Sn carrying k own attributes each.
func HierarchyEER(n, k int) *eer.Schema {
	s := eer.New()
	s.Entities = append(s.Entities, &eer.EntitySet{
		Name: "P", Prefix: "P",
		OwnAttrs:  []eer.Attr{{Name: "P.ID", Domain: "p_id"}},
		ID:        []string{"P.ID"},
		CopyBases: []string{"ID"},
	})
	for i := 1; i <= n; i++ {
		sn := fmt.Sprintf("S%d", i)
		var attrs []eer.Attr
		for j := 1; j <= k; j++ {
			attrs = append(attrs, eer.Attr{
				Name:   fmt.Sprintf("%s.A%d", sn, j),
				Domain: fmt.Sprintf("s%d_a%d", i, j),
			})
		}
		s.Entities = append(s.Entities, &eer.EntitySet{Name: sn, Prefix: sn, OwnAttrs: attrs})
		s.ISAs = append(s.ISAs, eer.ISA{Child: sn, Parent: "P"})
	}
	return s
}

// MergeSetFor returns the canonical merge set for a workload schema: every
// relation-scheme whose primary key is compatible with root's, rooted at
// root (declaration order preserved).
func MergeSetFor(s *schema.Schema, root string) []string {
	rs := s.Scheme(root)
	if rs == nil {
		return nil
	}
	var out []string
	for _, other := range s.Relations {
		if other.Name == root || rs.KeyCompatible(other) {
			out = append(out, other.Name)
		}
	}
	return out
}

// Bench is a matched pair of engines over the same logical data: the base
// (one relation per object-set) and the merged (single relation for the
// merge set, key copies removed).
type Bench struct {
	Base   *engine.DB
	Merged *engine.DB
	Scheme *core.MergedScheme
	// Root is the center relation the merge set was built around.
	Root string
	// Keys holds the center keys present in the data, for query workloads.
	Keys []relation.Tuple
	// MemberNames are the merge-set schemes, for the base-side profile query.
	MemberNames []string
	baseSchema  *schema.Schema
	rng         *rand.Rand
	nextKey     int
	seq         atomic.Int64 // fresh-key counter for concurrent writers
}

// NewBench translates the EER schema, merges the key-compatible cluster
// around root, applies RemoveAll, generates rows of consistent data, and
// loads both engines. Engine options (an access delay, a shared registry)
// apply to both sides.
func NewBench(es *eer.Schema, root string, rows int, seed int64, opts ...engine.Option) (*Bench, error) {
	return NewBenchSided(es, root, rows, seed, func(Side) []engine.Option { return opts })
}

// NewBenchSided is NewBench with per-side engine options: sideOpts is called
// once per side and its result opens that side's engine. Durable benchmarks
// use it to give the base and merged engines separate write-ahead-log
// directories (and distinct metric names) while sharing everything else.
func NewBenchSided(es *eer.Schema, root string, rows int, seed int64, sideOpts func(Side) []engine.Option) (*Bench, error) {
	base, err := translate.MS(es)
	if err != nil {
		return nil, err
	}
	names := MergeSetFor(base, root)
	if len(names) < 2 {
		return nil, fmt.Errorf("workload: merge set around %s has %d members", root, len(names))
	}
	m, err := core.Merge(base, names, "MERGED")
	if err != nil {
		return nil, err
	}
	m.RemoveAll()

	rng := rand.New(rand.NewSource(seed))
	st, err := state.Generate(base, rng, state.GenOptions{Rows: rows, DomainSize: 4 * rows})
	if err != nil {
		return nil, err
	}

	b := &Bench{Scheme: m, Root: root, MemberNames: names, baseSchema: base, rng: rng, nextKey: 1 << 20}
	b.Base, err = engine.Open(base, sideOpts(SideBase)...)
	if err != nil {
		return nil, err
	}
	if err := b.Base.Load(st); err != nil {
		return nil, err
	}
	b.Merged, err = engine.Open(m.Schema, sideOpts(SideMerged)...)
	if err != nil {
		return nil, err
	}
	if err := b.Merged.Load(m.MapState(st)); err != nil {
		return nil, err
	}

	rootScheme := base.Scheme(root)
	for _, tup := range st.Relation(root).Tuples() {
		b.Keys = append(b.Keys, tup.Project(st.Relation(root).Positions(rootScheme.PrimaryKey)))
	}
	return b, nil
}

// ProfileBase runs the object-profile query on the base engine: one key
// lookup per merge-set member (the unmerged access path requires joining —
// here navigating — every member relation). It returns the number of member
// relations that had a tuple for the key.
func (b *Bench) ProfileBase(key relation.Tuple) int {
	found := 0
	for _, name := range b.MemberNames {
		if _, ok := b.Base.GetByKey(name, key); ok {
			found++
		}
	}
	return found
}

// ProfileMerged runs the same query on the merged engine: a single key
// lookup. It returns 1 if the key exists.
func (b *Bench) ProfileMerged(key relation.Tuple) int {
	if _, ok := b.Merged.GetByKey(b.Scheme.Name, key); ok {
		return 1
	}
	return 0
}

// InsertMergedRow inserts a fresh full row into the merged relation
// (exercising its constraint set) and the corresponding rows into the base
// relations (exercising theirs). It returns an error if either side refuses.
// Rows reference the first tuple of each target relation, so targets must be
// non-empty.
func (b *Bench) InsertMergedRow() error {
	b.nextKey++
	key := relation.NewString(fmt.Sprintf("e0_id-%d", b.nextKey))

	mergedScheme := b.Merged.Schema.Scheme(b.Scheme.Name)
	mt := make(relation.Tuple, len(mergedScheme.Attrs))
	mpos := map[string]int{}
	for i, a := range mergedScheme.AttrNames() {
		mpos[a] = i
		mt[i] = relation.Null()
	}
	for _, k := range b.Scheme.Km {
		mt[mpos[k]] = key
	}

	// Base-side rows, one per member; fill foreign keys from the first tuple
	// of each referenced relation.
	for _, name := range b.MemberNames {
		rs := b.baseSchema.Scheme(name)
		row := make(relation.Tuple, len(rs.Attrs))
		pos := map[string]int{}
		for i, a := range rs.AttrNames() {
			pos[a] = i
		}
		for _, k := range rs.PrimaryKey {
			row[pos[k]] = key
		}
		for _, ind := range b.baseSchema.INDsFrom(name) {
			if containsAll(rs.PrimaryKey, ind.LeftAttrs) {
				continue // key-copy dependency, already set
			}
			target := b.Base.Relation(ind.Right)
			if target.Len() == 0 {
				return fmt.Errorf("workload: empty dependency target %s", ind.Right)
			}
			sample := target.Tuples()[0].Project(target.Positions(ind.RightAttrs))
			for i, a := range ind.LeftAttrs {
				row[pos[a]] = sample[i]
				if j, ok := mpos[a]; ok {
					mt[j] = sample[i]
				}
			}
		}
		for i := range row {
			if row[i].IsNull() {
				row[i] = relation.NewString(fmt.Sprintf("fill-%d", b.nextKey))
			}
		}
		if err := b.Base.Insert(name, row); err != nil {
			return fmt.Errorf("workload: base insert into %s: %w", name, err)
		}
		// Mirror the non-key attributes into the merged row.
		for i, a := range rs.AttrNames() {
			if j, ok := mpos[a]; ok && mt[j].IsNull() {
				mt[j] = row[i]
			}
		}
	}
	if err := b.Merged.Insert(b.Scheme.Name, mt); err != nil {
		return fmt.Errorf("workload: merged insert: %w", err)
	}
	return nil
}

func containsAll(have, want []string) bool {
	set := make(map[string]bool, len(have))
	for _, a := range have {
		set[a] = true
	}
	for _, a := range want {
		if !set[a] {
			return false
		}
	}
	return true
}
