package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/nullcon"
	"repro/internal/schema"
	"repro/internal/translate"
)

func TestStarEERShape(t *testing.T) {
	es := StarEER(3)
	if err := es.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(es.Entities) != 4 || len(es.Relationships) != 3 {
		t.Errorf("star(3): %d entities, %d relationships", len(es.Entities), len(es.Relationships))
	}
	// The star satisfies §5.2 condition (2) for E0.
	if err := es.CheckCondition2("E0", []string{"R1", "R2", "R3"}); err != nil {
		t.Errorf("star should satisfy condition (2): %v", err)
	}
}

func TestChainEERShape(t *testing.T) {
	es := ChainEER(3)
	if err := es.Validate(); err != nil {
		t.Fatal(err)
	}
	// The chain does NOT satisfy condition (2) for E0 beyond R1: R2 hangs
	// off R1, and R1 is involved in R2 (condition 2b).
	if es.CheckCondition2("E0", []string{"R1", "R2"}) == nil {
		t.Error("chain should fail condition (2)")
	}
}

func TestHierarchyEERShape(t *testing.T) {
	one := HierarchyEER(3, 1)
	if err := one.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := one.CheckCondition1("P", []string{"S1", "S2", "S3"}); err != nil {
		t.Errorf("hierarchy(k=1) should satisfy condition (1): %v", err)
	}
	two := HierarchyEER(2, 2)
	if two.CheckCondition1("P", []string{"S1", "S2"}) == nil {
		t.Error("hierarchy(k=2) should fail condition (1c)")
	}
}

// The star merges to an only-NNA relation (Prop. 5.2); the chain retains a
// null-existence constraint chain.
func TestMergedConstraintRegimes(t *testing.T) {
	star, err := translate.MS(StarEER(3))
	if err != nil {
		t.Fatal(err)
	}
	names := MergeSetFor(star, "E0")
	if len(names) != 4 {
		t.Fatalf("star merge set = %v", names)
	}
	m, err := core.Merge(star, names, "MERGED")
	if err != nil {
		t.Fatal(err)
	}
	if removed := m.RemoveAll(); len(removed) != 3 {
		t.Errorf("star removals = %v", removed)
	}
	if !nullcon.OnlyNNA(m.Schema.NullsOf("MERGED")) {
		t.Errorf("star merged constraints should be only NNA: %v", m.Schema.NullsOf("MERGED"))
	}

	chain, err := translate.MS(ChainEER(3))
	if err != nil {
		t.Fatal(err)
	}
	mc, err := core.Merge(chain, MergeSetFor(chain, "E0"), "MERGED")
	if err != nil {
		t.Fatal(err)
	}
	mc.RemoveAll()
	if nullcon.OnlyNNA(mc.Schema.NullsOf("MERGED")) {
		t.Error("chain merged constraints should include null-existence constraints")
	}
	// The chain of n relationships leaves n-1 null-existence constraints
	// (R2 ⊑ R1, R3 ⊑ R2) plus the NNA on the key.
	nes := 0
	for _, nc := range mc.Schema.NullsOf("MERGED") {
		if ne, ok := nc.(schema.NullExistence); ok && !ne.IsNNA() {
			nes++
		}
	}
	if nes != 2 {
		t.Errorf("chain(3) should leave 2 null-existence constraints, got %d", nes)
	}
}

func TestNewBenchStar(t *testing.T) {
	b, err := NewBench(StarEER(4), "E0", 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Keys) == 0 {
		t.Fatal("no center keys")
	}

	// The profile query finds the same object both ways, with fewer lookups
	// on the merged side.
	b.Base.Stats.Reset()
	b.Merged.Stats.Reset()
	for _, k := range b.Keys {
		b.ProfileBase(k)
		if got := b.ProfileMerged(k); got != 1 {
			t.Errorf("merged profile missing key %v", k)
		}
	}
	baseLookups := b.Base.Stats.IndexLookups()
	mergedLookups := b.Merged.Stats.IndexLookups()
	if mergedLookups*4 > baseLookups {
		t.Errorf("merged lookups %d should be ~5x below base %d", mergedLookups, baseLookups)
	}

	// Semantics agree: the base profile count matches the number of non-null
	// member parts in the merged row.
	for _, k := range b.Keys {
		baseFound := b.ProfileBase(k)
		row, ok := b.Merged.GetByKey(b.Scheme.Name, k)
		if !ok {
			t.Fatalf("key %v missing from merged relation", k)
		}
		mergedParts := 1 // E0 is always present (it is the key-relation)
		rel := b.Merged.Relation(b.Scheme.Name)
		for _, mb := range b.Scheme.Members[1:] {
			// A member part is present iff its surviving attribute is non-null.
			present := true
			for _, a := range mb.Attrs {
				if p := rel.Position(a); p >= 0 && row[p].IsNull() {
					present = false
				}
			}
			if present {
				mergedParts++
			}
		}
		if baseFound != mergedParts {
			t.Errorf("key %v: base found %d parts, merged row shows %d", k, baseFound, mergedParts)
		}
	}
}

func TestInsertMergedRowBothRegimes(t *testing.T) {
	star, err := NewBench(StarEER(3), "E0", 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	star.Base.Stats.Reset()
	star.Merged.Stats.Reset()
	for i := 0; i < 5; i++ {
		if err := star.InsertMergedRow(); err != nil {
			t.Fatal(err)
		}
	}
	if star.Merged.Stats.TriggerFirings() != 0 {
		t.Errorf("star merged inserts should be fully declarative, fired %d triggers",
			star.Merged.Stats.TriggerFirings())
	}

	chain, err := NewBench(ChainEER(3), "E0", 10, 13)
	if err != nil {
		t.Fatal(err)
	}
	chain.Merged.Stats.Reset()
	for i := 0; i < 5; i++ {
		if err := chain.InsertMergedRow(); err != nil {
			t.Fatal(err)
		}
	}
	if chain.Merged.Stats.TriggerFirings() == 0 {
		t.Error("chain merged inserts must fire null-constraint triggers")
	}
}

func TestNewBenchErrors(t *testing.T) {
	if _, err := NewBench(StarEER(0), "E0", 5, 1); err == nil {
		t.Error("merge set of one should fail")
	}
	if _, err := NewBench(StarEER(2), "NOPE", 5, 1); err == nil {
		t.Error("unknown root should fail")
	}
}

func TestMergeSetForChain(t *testing.T) {
	chain, err := translate.MS(ChainEER(2))
	if err != nil {
		t.Fatal(err)
	}
	names := MergeSetFor(chain, "E0")
	want := map[string]bool{"E0": true, "R1": true, "R2": true}
	if len(names) != len(want) {
		t.Fatalf("MergeSetFor = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected member %s", n)
		}
	}
}
