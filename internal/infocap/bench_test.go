package infocap

import (
	"testing"

	"repro/internal/core"
	"repro/internal/figures"
)

func BenchmarkEnumerateFig2(b *testing.B) {
	s := figures.Fig2(true)
	opts := EnumOptions{DomainSize: 2, MaxTuples: 2}
	for i := 0; i < b.N; i++ {
		if _, err := EnumerateStates(s, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckEquivalenceFig2(b *testing.B) {
	s := figures.Fig2(true)
	m, err := core.Merge(s, []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		b.Fatal(err)
	}
	opts := EnumOptions{DomainSize: 2, MaxTuples: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := CheckEquivalence(s, m.Schema, m.MapState, m.UnmapState, opts); err != nil {
			b.Fatal(err)
		}
	}
}
