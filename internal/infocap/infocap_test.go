package infocap

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/eer"
	"repro/internal/figures"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/state"
	"repro/internal/translate"
)

func TestEnumerateSingleRelation(t *testing.T) {
	s := schema.New()
	s.AddScheme(schema.NewScheme("R",
		[]schema.Attribute{{Name: "A", Domain: "d"}}, []string{"A"}))
	s.Nulls = append(s.Nulls, schema.NNA("R", "A"))

	// Domain size 2, max 2 tuples: ∅, {a0}, {a1}, {a0,a1} = 4 states.
	states, err := EnumerateStates(s, EnumOptions{DomainSize: 2, MaxTuples: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 4 {
		t.Fatalf("states = %d, want 4", len(states))
	}
}

func TestEnumerateRespectsKeyDependency(t *testing.T) {
	s := schema.New()
	s.AddScheme(schema.NewScheme("R",
		[]schema.Attribute{{Name: "A", Domain: "d"}, {Name: "B", Domain: "e"}},
		[]string{"A"}))
	s.Nulls = append(s.Nulls, schema.NNA("R", "A", "B"))
	// Key A over domain sizes (2, 2): per key value 2 choices of B; relations
	// with unique keys: ∅(1) + singletons(4) + two-tuple with distinct keys
	// (2×2=4) = 9.
	n, err := CountStates(s, EnumOptions{DomainSize: 2, MaxTuples: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("states = %d, want 9", n)
	}
}

func TestEnumerateRespectsINDs(t *testing.T) {
	s := figures.Fig2(true)
	states, err := EnumerateStates(s, EnumOptions{DomainSize: 1, MaxTuples: 1})
	if err != nil {
		t.Fatal(err)
	}
	// OFFER ∈ {∅, {(c,d)}}; TEACH ∈ {∅, {(c,f)}} but TEACH ⊆ OFFER:
	// (∅,∅), ({o},∅), ({o},{t}) = 3 states.
	if len(states) != 3 {
		t.Fatalf("states = %d, want 3", len(states))
	}
	for _, st := range states {
		if err := state.Consistent(s, st); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMaxStatesGuard(t *testing.T) {
	s := schema.New()
	s.AddScheme(schema.NewScheme("R",
		[]schema.Attribute{{Name: "A", Domain: "d"}}, []string{"A"}))
	s.Nulls = append(s.Nulls, schema.NNA("R", "A"))
	if _, err := EnumerateStates(s, EnumOptions{DomainSize: 3, MaxTuples: 3, MaxStates: 2}); err == nil {
		t.Error("MaxStates guard should trip")
	}
}

// Prop. 4.1 verified exhaustively: the figure 2 merge is an information-
// capacity equivalence over the entire bounded state space.
func TestMergeEquivalenceExhaustive(t *testing.T) {
	s := figures.Fig2(true)
	m, err := core.Merge(s, []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		t.Fatal(err)
	}
	err = CheckEquivalence(s, m.Schema, m.MapState, m.UnmapState,
		EnumOptions{DomainSize: 2, MaxTuples: 2})
	if err != nil {
		t.Fatalf("figure 2 merge should be an exact equivalence: %v", err)
	}
}

// Prop. 4.2 verified exhaustively: equivalence still holds with the Remove
// mapping composed in.
func TestRemoveEquivalenceExhaustive(t *testing.T) {
	s := figures.Fig2(true)
	m, err := core.Merge(s, []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("TEACH"); err != nil {
		t.Fatal(err)
	}
	err = CheckEquivalence(s, m.Schema, m.MapState, m.UnmapState,
		EnumOptions{DomainSize: 2, MaxTuples: 2})
	if err != nil {
		t.Fatalf("figure 2 merge+remove should be an exact equivalence: %v", err)
	}
}

// The synthetic-key merge is also an exact equivalence (the part-null
// constraint is what makes the inverse total).
func TestSyntheticMergeEquivalenceExhaustive(t *testing.T) {
	s := figures.Fig2(false)
	m, err := core.Merge(s, []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		t.Fatal(err)
	}
	err = CheckEquivalence(s, m.Schema, m.MapState, m.UnmapState,
		EnumOptions{DomainSize: 1, MaxTuples: 2})
	if err != nil {
		t.Fatalf("synthetic-key merge should be an exact equivalence: %v", err)
	}
}

// Dropping the part-null constraint breaks the equivalence: the merged
// schema gains states (an all-null non-key part) with no preimage.
func TestPartNullIsLoadBearing(t *testing.T) {
	s := figures.Fig2(false)
	m, err := core.Merge(s, []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		t.Fatal(err)
	}
	var weaker []schema.NullConstraint
	for _, nc := range m.Schema.Nulls {
		if _, isPN := nc.(schema.PartNull); !isPN {
			weaker = append(weaker, nc)
		}
	}
	m.Schema.Nulls = weaker
	err = CheckEquivalence(s, m.Schema, m.MapState, m.UnmapState,
		EnumOptions{DomainSize: 1, MaxTuples: 2})
	if err == nil {
		t.Fatal("without the part-null constraint the schemas must NOT be equivalent")
	}
	if !strings.Contains(err.Error(), "state counts differ") {
		t.Errorf("expected a state-count mismatch, got: %v", err)
	}
	witness, err2 := FindUnreachable(s, m.Schema, m.MapState, EnumOptions{DomainSize: 1, MaxTuples: 2})
	if err2 != nil || witness == nil {
		t.Fatalf("expected an unreachable witness state, got %v / %v", witness, err2)
	}
}

// E1, exhaustively: the Teorey translation RS' of figure 1 admits strictly
// more states than the faithful translation RS — the anomaly is a capacity
// gap, not just one bad tuple.
func TestTeoreyCapacityGap(t *testing.T) {
	rs, err := translate.MS(eer.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	teorey, err := translate.Teorey(eer.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	opts := EnumOptions{DomainSize: 1, MaxTuples: 1}
	nRS, err := CountStates(rs, opts)
	if err != nil {
		t.Fatal(err)
	}
	nTeorey, err := CountStates(teorey, opts)
	if err != nil {
		t.Fatal(err)
	}
	if nTeorey <= nRS {
		t.Fatalf("RS' should have strictly more states: RS=%d RS'=%d", nRS, nTeorey)
	}
	// Adding the paper's null constraints closes part of the gap: the DATE
	// anomaly states disappear.
	teorey.Nulls = append(teorey.Nulls,
		schema.NewNullExistence("EMPLOYEE", []string{"W.DATE"}, []string{"W.NR"}),
		schema.NewNullExistence("EMPLOYEE", []string{"M.NR"}, []string{"E.SSN"}))
	nFixed, err := CountStates(teorey, opts)
	if err != nil {
		t.Fatal(err)
	}
	if nFixed >= nTeorey {
		t.Fatalf("null constraints should remove states: before=%d after=%d", nTeorey, nFixed)
	}
}

func TestCheckEquivalenceDetectsBadMappings(t *testing.T) {
	s := figures.Fig2(true)
	m, err := core.Merge(s, []string{"OFFER", "TEACH"}, "ASSIGN")
	if err != nil {
		t.Fatal(err)
	}
	opts := EnumOptions{DomainSize: 1, MaxTuples: 1}

	// A lossy Φ (drops TEACH) breaks injectivity or the round trip.
	lossy := func(db *state.DB) *state.DB {
		out := state.New(m.Schema)
		out.Set("ASSIGN", m.MapState(db).Relation("ASSIGN").Select(func(relation.Tuple) bool { return false }))
		return out
	}
	if err := CheckEquivalence(s, m.Schema, lossy, m.UnmapState, opts); err == nil {
		t.Error("lossy mapping should fail")
	}

	// A value-inventing Φ fails data preservation.
	inventing := func(db *state.DB) *state.DB {
		out := m.MapState(db)
		r := out.Relation("ASSIGN")
		r.Add(relation.Tuple{
			relation.NewString("invented"), relation.NewString("invented"),
			relation.Null(), relation.Null(),
		})
		return out
	}
	if err := CheckEquivalence(s, m.Schema, inventing, m.UnmapState, opts); err == nil {
		t.Error("value-inventing mapping should fail")
	}
}

func TestDomainValueDeterministic(t *testing.T) {
	if !DomainValue("d", 0).Identical(DomainValue("d", 0)) {
		t.Error("DomainValue must be deterministic")
	}
	if DomainValue("d", 0).Identical(DomainValue("d", 1)) {
		t.Error("distinct indexes must differ")
	}
	if DomainValue("d", 0).Identical(DomainValue("e", 0)) {
		t.Error("distinct domains must differ")
	}
}
