// Package infocap verifies information-capacity equivalence (Definition 2.1
// of Markowitz, ICDE 1992) *exhaustively* on small schemas: it enumerates
// every consistent database state over tiny domains and checks that a pair
// of state mappings (Φ, Φ′) forms a data-value-preserving bijection between
// the consistent-state sets of two schemas.
//
// This complements the randomized round-trip tests in internal/core: on
// schemas small enough to enumerate, the equivalence of Props. 4.1/4.2 is
// verified over the *whole* state space, and the non-equivalence of the
// baselines the paper criticizes (the Teorey translation, synthesis without
// null constraints) shows up as a state-count mismatch or a round-trip
// failure on a concrete state.
package infocap

import (
	"fmt"
	"sort"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/state"
)

// EnumOptions bound the enumeration.
type EnumOptions struct {
	// DomainSize is the number of distinct values per domain (default 1).
	DomainSize int
	// MaxTuples caps the tuples per relation (default 2).
	MaxTuples int
	// MaxStates aborts enumeration beyond this many consistent states
	// (default 100000) — a guard against accidental explosion.
	MaxStates int
}

func (o EnumOptions) normalize() EnumOptions {
	if o.DomainSize <= 0 {
		o.DomainSize = 1
	}
	if o.MaxTuples <= 0 {
		o.MaxTuples = 2
	}
	if o.MaxStates <= 0 {
		o.MaxStates = 100000
	}
	return o
}

// DomainValue returns the i-th value of a domain's enumeration pool.
func DomainValue(domain string, i int) relation.Value {
	return relation.NewString(fmt.Sprintf("%s#%d", domain, i))
}

// possibleTuples enumerates every tuple over the scheme's attributes, drawing
// values from the domain pools and including null for nullable attributes.
func possibleTuples(s *schema.Schema, rs *schema.RelationScheme, opts EnumOptions) []relation.Tuple {
	candidates := make([][]relation.Value, len(rs.Attrs))
	for i, a := range rs.Attrs {
		var vs []relation.Value
		for j := 0; j < opts.DomainSize; j++ {
			vs = append(vs, DomainValue(a.Domain, j))
		}
		if s.AllowsNull(rs.Name, a.Name) {
			vs = append(vs, relation.Null())
		}
		candidates[i] = vs
	}
	var out []relation.Tuple
	tup := make(relation.Tuple, len(candidates))
	var build func(int)
	build = func(i int) {
		if i == len(candidates) {
			out = append(out, tup.Clone())
			return
		}
		for _, v := range candidates[i] {
			tup[i] = v
			build(i + 1)
		}
	}
	build(0)
	return out
}

// possibleRelations enumerates every relation over the scheme with at most
// MaxTuples tuples that satisfies the scheme's own FDs and null constraints
// (cross-relation constraints are filtered later).
func possibleRelations(s *schema.Schema, rs *schema.RelationScheme, opts EnumOptions) []*relation.Relation {
	tuples := possibleTuples(s, rs, opts)
	fds := s.FDsOf(rs.Name)
	nulls := s.NullsOf(rs.Name)
	attrs := rs.AttrNames()

	var out []*relation.Relation
	var build func(start int, cur *relation.Relation)
	build = func(start int, cur *relation.Relation) {
		// cur is valid by construction; snapshot it.
		out = append(out, cur.Clone())
		if cur.Len() >= opts.MaxTuples {
			return
		}
		for i := start; i < len(tuples); i++ {
			cur.Add(tuples[i])
			ok := true
			for _, fd := range fds {
				if !fd.Satisfied(cur) {
					ok = false
					break
				}
			}
			if ok {
				for _, nc := range nulls {
					if !nc.Satisfied(cur) {
						ok = false
						break
					}
				}
			}
			if ok {
				build(i+1, cur)
			}
			cur.Remove(tuples[i])
		}
	}
	build(0, relation.New(attrs...))
	return out
}

// EnumerateStates returns every consistent database state of the schema
// within the bounds, in a deterministic order. It returns an error if the
// MaxStates guard trips.
func EnumerateStates(s *schema.Schema, opts EnumOptions) ([]*state.DB, error) {
	opts = opts.normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	perScheme := make([][]*relation.Relation, len(s.Relations))
	for i, rs := range s.Relations {
		perScheme[i] = possibleRelations(s, rs, opts)
	}
	var out []*state.DB
	db := state.New(s)
	var build func(i int) error
	build = func(i int) error {
		if i == len(s.Relations) {
			if state.IsConsistent(s, db) {
				if len(out) >= opts.MaxStates {
					return fmt.Errorf("infocap: more than %d consistent states", opts.MaxStates)
				}
				out = append(out, db.Clone())
			}
			return nil
		}
		name := s.Relations[i].Name
		for _, r := range perScheme[i] {
			db.Set(name, r)
			if err := build(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(0); err != nil {
		return nil, err
	}
	return out, nil
}

// CountStates counts the consistent states within the bounds.
func CountStates(s *schema.Schema, opts EnumOptions) (int, error) {
	states, err := EnumerateStates(s, opts)
	if err != nil {
		return 0, err
	}
	return len(states), nil
}

// Mapping is a total state mapping between schemas.
type Mapping func(*state.DB) *state.DB

// CheckEquivalence verifies Definition 2.1 exhaustively: over every
// consistent state r of a, phi(r) must be consistent with b, phiInv(phi(r))
// must equal r, and phi must preserve r's data values; symmetrically for
// every consistent state of b through phiInv. It also checks that phi is
// injective (which, with the round trips, makes it a bijection between the
// two consistent-state sets). A nil error means equivalent within the
// bounds.
func CheckEquivalence(a, b *schema.Schema, phi, phiInv Mapping, opts EnumOptions) error {
	statesA, err := EnumerateStates(a, opts)
	if err != nil {
		return err
	}
	statesB, err := EnumerateStates(b, opts)
	if err != nil {
		return err
	}
	if len(statesA) != len(statesB) {
		return fmt.Errorf("infocap: state counts differ: %d vs %d (schemas cannot be equivalent within these bounds)",
			len(statesA), len(statesB))
	}
	seen := make(map[string]bool, len(statesA))
	for _, r := range statesA {
		img := phi(r)
		if err := state.Consistent(b, img); err != nil {
			return fmt.Errorf("infocap: Φ maps a consistent state to an inconsistent one: %w\nstate:\n%s", err, r)
		}
		if !phiInv(img).Equal(r) {
			return fmt.Errorf("infocap: Φ′∘Φ ≠ id on state:\n%s", r)
		}
		if err := checkValuePreservation(r, img); err != nil {
			return err
		}
		key := canonicalKey(img)
		if seen[key] {
			return fmt.Errorf("infocap: Φ is not injective (two states share image):\n%s", img)
		}
		seen[key] = true
	}
	for _, rb := range statesB {
		pre := phiInv(rb)
		if err := state.Consistent(a, pre); err != nil {
			return fmt.Errorf("infocap: Φ′ maps a consistent state to an inconsistent one: %w\nstate:\n%s", err, rb)
		}
		if !phi(pre).Equal(rb) {
			return fmt.Errorf("infocap: Φ∘Φ′ ≠ id on state:\n%s", rb)
		}
	}
	return nil
}

// FindUnreachable returns a consistent state of b with no Φ-preimage among
// the consistent states of a — the witness that b has strictly more
// information capacity (as in the figure 1(iii) anomaly). It returns nil if
// every state of b is reached.
func FindUnreachable(a, b *schema.Schema, phi Mapping, opts EnumOptions) (*state.DB, error) {
	statesA, err := EnumerateStates(a, opts)
	if err != nil {
		return nil, err
	}
	statesB, err := EnumerateStates(b, opts)
	if err != nil {
		return nil, err
	}
	images := make(map[string]bool, len(statesA))
	for _, r := range statesA {
		images[canonicalKey(phi(r))] = true
	}
	for _, rb := range statesB {
		if !images[canonicalKey(rb)] {
			return rb, nil
		}
	}
	return nil, nil
}

// checkValuePreservation verifies the footnote of Definition 2.1: the
// non-null values of Φ(r) are included in the values of r. Synthetic key
// attributes introduced by a merge copy existing key values, so they pass.
func checkValuePreservation(r, img *state.DB) error {
	have := make(map[string]bool)
	for _, rel := range r.Relations {
		for _, t := range rel.Tuples() {
			for _, v := range t {
				if !v.IsNull() {
					have[v.String()] = true
				}
			}
		}
	}
	for name, rel := range img.Relations {
		for _, t := range rel.Tuples() {
			for _, v := range t {
				if !v.IsNull() && !have[v.String()] {
					return fmt.Errorf("infocap: Φ invents value %s in %s", v, name)
				}
			}
		}
	}
	return nil
}

// canonicalKey renders a state deterministically for set membership.
func canonicalKey(db *state.DB) string {
	names := make([]string, 0, len(db.Relations))
	for n := range db.Relations {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		out += n + "{"
		for _, t := range db.Relations[n].Sorted() {
			out += t.EncodeKey() + ";"
		}
		out += "}"
	}
	return out
}
