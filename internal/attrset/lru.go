package attrset

import "container/list"

// lru is a fixed-capacity least-recently-used cache. It is not
// goroutine-safe; Engine serializes access under its own mutex. Hits move
// the entry to the front without allocating, so the memoized closure path
// stays allocation-free.
type lru[K comparable, V any] struct {
	max int
	ll  *list.List
	m   map[K]*list.Element
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

func newLRU[K comparable, V any](max int) *lru[K, V] {
	return &lru[K, V]{max: max, ll: list.New(), m: make(map[K]*list.Element, max)}
}

func (c *lru[K, V]) get(k K) (V, bool) {
	if e, ok := c.m[k]; ok {
		c.ll.MoveToFront(e)
		return e.Value.(lruEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// put inserts or refreshes an entry and reports whether a victim was evicted
// to make room.
func (c *lru[K, V]) put(k K, v V) (evicted bool) {
	if e, ok := c.m[k]; ok {
		e.Value = lruEntry[K, V]{k, v}
		c.ll.MoveToFront(e)
		return false
	}
	c.m[k] = c.ll.PushFront(lruEntry[K, V]{k, v})
	if c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(lruEntry[K, V]).key)
		return true
	}
	return false
}

func (c *lru[K, V]) len() int { return c.ll.Len() }

// each visits every cached value, most recently used first.
func (c *lru[K, V]) each(fn func(V)) {
	for e := c.ll.Front(); e != nil; e = e.Next() {
		fn(e.Value.(lruEntry[K, V]).val)
	}
}
