package attrset

import (
	"fmt"
	"testing"
)

func chainTestDeps(n int) []testDep {
	deps := make([]testDep, n)
	for i := range deps {
		deps[i] = testDep{lhs: []string{fmt.Sprintf("A%d", i)}, rhs: []string{fmt.Sprintf("A%d", i+1)}}
	}
	return deps
}

// BenchmarkClosureSteadyState measures the memoized closure path with a
// prebuilt index: pooled scratch, in-place canonicalization, LRU hit. This
// is the loop CandidateKeys/BCNF checks sit in; it must not allocate.
func BenchmarkClosureSteadyState(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		e := NewEngine()
		ix := e.Index(depFunc(chainTestDeps(n)))
		seed := []string{"A0"}
		e.Closure(ix, seed)
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.Closure(ix, seed)
			}
		})
	}
}

// BenchmarkClosureCold measures the full counter-algorithm run (memo
// bypassed by alternating seeds across a large keyspace is impractical;
// instead compute directly via a fresh engine per unique seed batch).
func BenchmarkClosureCold(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		deps := chainTestDeps(n)
		e := NewEngine()
		ix := e.Index(depFunc(deps))
		sc := &scratch{}
		seed := []int32{ix.in.Intern("A0")}
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			dst := NewSet(ix.in.Len())
			for i := 0; i < b.N; i++ {
				dst.Reset()
				ix.closeInto(seed, &dst, sc)
			}
		})
	}
}

func BenchmarkIndexCompile(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		deps := chainTestDeps(n)
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := NewEngine()
				e.Index(depFunc(deps))
			}
		})
	}
}

// BenchmarkIndexLookup measures the cache-hit cost of Engine.Index — the
// structural hashing walk that every adapter-level call pays.
func BenchmarkIndexLookup(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		deps := chainTestDeps(n)
		e := NewEngine()
		e.Index(depFunc(deps))
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.Index(depFunc(deps))
			}
		})
	}
}
