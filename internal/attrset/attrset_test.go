package attrset

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.Intern("A")
	b := in.Intern("B")
	if a == b {
		t.Fatalf("distinct names share id %d", a)
	}
	if got := in.Intern("A"); got != a {
		t.Fatalf("re-intern A: got %d want %d", got, a)
	}
	if id, ok := in.Lookup("B"); !ok || id != b {
		t.Fatalf("Lookup B = %d,%v", id, ok)
	}
	if _, ok := in.Lookup("C"); ok {
		t.Fatal("Lookup of uninterned name succeeded")
	}
	if in.Name(a) != "A" || in.Name(b) != "B" {
		t.Fatal("Name round-trip failed")
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d", in.Len())
	}
}

func TestSetOps(t *testing.T) {
	var s Set
	for _, id := range []int{0, 3, 63, 64, 200} {
		s.Add(id)
	}
	for _, id := range []int{0, 3, 63, 64, 200} {
		if !s.Has(id) {
			t.Fatalf("missing %d", id)
		}
	}
	if s.Has(1) || s.Has(199) || s.Has(100000) {
		t.Fatal("spurious membership")
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d", s.Count())
	}

	var tt Set
	tt.Add(3)
	tt.Add(64)
	if !tt.SubsetOf(s) {
		t.Fatal("subset check failed")
	}
	if s.SubsetOf(tt) {
		t.Fatal("superset reported as subset")
	}

	u := tt.Clone()
	u.UnionWith(s)
	if !s.SubsetOf(u) || u.Count() != 5 {
		t.Fatal("union wrong")
	}
	d := s.Clone()
	d.DiffWith(tt)
	if d.Has(3) || d.Has(64) || !d.Has(200) || d.Count() != 3 {
		t.Fatal("diff wrong")
	}
	i := s.Clone()
	i.IntersectWith(tt)
	if !i.Equal(tt) {
		t.Fatal("intersect wrong")
	}

	// Equal ignores trailing zero words.
	short := Set{1}
	long := Set{1, 0, 0}
	if !short.Equal(long) || !long.Equal(short) {
		t.Fatal("Equal should ignore trailing zeros")
	}

	var got []int
	s.ForEach(func(id int) { got = append(got, id) })
	if !sort.IntsAreSorted(got) || len(got) != 5 {
		t.Fatalf("ForEach order: %v", got)
	}

	s.Reset()
	if s.Count() != 0 {
		t.Fatal("Reset left elements")
	}
}

type testDep struct{ lhs, rhs []string }

func depFunc(deps []testDep) (int, func(int) ([]string, []string)) {
	return len(deps), func(i int) ([]string, []string) { return deps[i].lhs, deps[i].rhs }
}

// naiveClosure is the quadratic map-based fixpoint the engine replaces, used
// as a differential oracle.
func naiveClosure(seed []string, deps []testDep) []string {
	closed := map[string]bool{}
	for _, a := range seed {
		closed[a] = true
	}
	for changed := true; changed; {
		changed = false
		for _, d := range deps {
			all := true
			for _, a := range d.lhs {
				if !closed[a] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			for _, a := range d.rhs {
				if !closed[a] {
					closed[a] = true
					changed = true
				}
			}
		}
	}
	out := make([]string, 0, len(closed))
	for a := range closed {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func TestClosureBasic(t *testing.T) {
	e := NewEngine()
	deps := []testDep{
		{[]string{"A"}, []string{"B"}},
		{[]string{"B"}, []string{"C"}},
		{[]string{"C", "D"}, []string{"E"}},
	}
	ix := e.Index(depFunc(deps))

	got := e.ClosureNames(ix, []string{"A"})
	want := []string{"A", "B", "C"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("closure(A) = %v, want %v", got, want)
	}
	got = e.ClosureNames(ix, []string{"A", "D"})
	want = []string{"A", "B", "C", "D", "E"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("closure(A,D) = %v, want %v", got, want)
	}
	if !e.Contains(ix, []string{"A", "D"}, []string{"E", "B"}) {
		t.Fatal("Contains missed derived attributes")
	}
	if e.Contains(ix, []string{"A"}, []string{"E"}) {
		t.Fatal("Contains invented a derivation")
	}
	// Unknown seed attributes are in their own closure.
	if !e.Contains(ix, []string{"Z"}, []string{"Z"}) {
		t.Fatal("seed attribute outside the dep set lost")
	}
	if e.Contains(ix, []string{"Z"}, []string{"A"}) {
		t.Fatal("unknown seed derived a known attribute")
	}
}

func TestClosureEmptyLHSFires(t *testing.T) {
	e := NewEngine()
	// ∅ → A models a nulls-not-allowed constraint: fires with any seed,
	// including the empty one.
	deps := []testDep{
		{nil, []string{"A"}},
		{[]string{"A"}, []string{"B"}},
	}
	ix := e.Index(depFunc(deps))
	got := e.ClosureNames(ix, nil)
	if fmt.Sprint(got) != fmt.Sprint([]string{"A", "B"}) {
		t.Fatalf("closure(∅) = %v", got)
	}
}

func TestClosureDuplicateAttrs(t *testing.T) {
	e := NewEngine()
	deps := []testDep{
		{[]string{"A", "A", "B"}, []string{"C", "C"}},
	}
	ix := e.Index(depFunc(deps))
	got := e.ClosureNames(ix, []string{"B", "A", "A"})
	if fmt.Sprint(got) != fmt.Sprint([]string{"A", "B", "C"}) {
		t.Fatalf("closure with duplicates = %v", got)
	}
}

func TestClosureDifferentialRandom(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(7))
	universe := make([]string, 24)
	for i := range universe {
		universe[i] = fmt.Sprintf("A%d", i)
	}
	pick := func(max int) []string {
		n := 1 + rng.Intn(max)
		out := make([]string, n)
		for i := range out {
			out[i] = universe[rng.Intn(len(universe))]
		}
		return out
	}
	for trial := 0; trial < 200; trial++ {
		deps := make([]testDep, 1+rng.Intn(20))
		for i := range deps {
			deps[i] = testDep{lhs: pick(3), rhs: pick(3)}
		}
		ix := e.Index(depFunc(deps))
		for q := 0; q < 5; q++ {
			seed := pick(4)
			got := e.ClosureNames(ix, seed)
			want := naiveClosure(seed, deps)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("trial %d: closure(%v) = %v, want %v (deps %v)", trial, seed, got, want, deps)
			}
		}
	}
}

func TestIndexCacheIdentity(t *testing.T) {
	e := NewEngine()
	deps := []testDep{{[]string{"A"}, []string{"B"}}}
	ix1 := e.Index(depFunc(deps))
	// An equal list served from a different slice compiles to the same Index.
	deps2 := []testDep{{[]string{"A"}, []string{"B"}}}
	ix2 := e.Index(depFunc(deps2))
	if ix1 != ix2 {
		t.Fatal("equal dependency lists produced distinct indexes")
	}
	// A different list (order matters structurally) does not.
	deps3 := []testDep{{[]string{"B"}, []string{"A"}}}
	if e.Index(depFunc(deps3)) == ix1 {
		t.Fatal("distinct dependency lists shared an index")
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU[int, int](2)
	c.put(1, 10)
	c.put(2, 20)
	if _, ok := c.get(1); !ok {
		t.Fatal("1 evicted prematurely")
	}
	c.put(3, 30) // evicts 2 (least recently used after the get of 1)
	if _, ok := c.get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	if v, ok := c.get(1); !ok || v != 10 {
		t.Fatal("1 lost")
	}
	if v, ok := c.get(3); !ok || v != 30 {
		t.Fatal("3 lost")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestClosureSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	deps := make([]testDep, 512)
	for i := range deps {
		deps[i] = testDep{lhs: []string{fmt.Sprintf("A%d", i)}, rhs: []string{fmt.Sprintf("A%d", i+1)}}
	}
	ix := e.Index(depFunc(deps))
	seed := []string{"A0"}
	e.Closure(ix, seed) // warm the memo
	allocs := testing.AllocsPerRun(100, func() {
		if e.Closure(ix, seed).Count() != 513 {
			t.Fatal("wrong closure size")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state closure allocated %.1f objects/op, want 0", allocs)
	}
}

func TestConcurrentClosure(t *testing.T) {
	e := NewEngine()
	deps := make([]testDep, 64)
	for i := range deps {
		deps[i] = testDep{lhs: []string{fmt.Sprintf("A%d", i)}, rhs: []string{fmt.Sprintf("A%d", i+1)}}
	}
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- true }()
			ix := e.Index(depFunc(deps))
			for k := 0; k < 50; k++ {
				seed := []string{fmt.Sprintf("A%d", (g+k)%64)}
				got := e.ClosureNames(ix, seed)
				if len(got) != 64-(g+k)%64+1 {
					t.Errorf("closure(%v) has %d attrs", seed, len(got))
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	// The striped memo's atomic counters account for every request exactly:
	// 8 goroutines x 50 closure calls, each a hit or a miss, nothing dropped.
	if st := e.CacheStats(); st.ClosureHits+st.ClosureMisses != 8*50 {
		t.Errorf("closure traffic lost under concurrency: %+v", st)
	}
}
