package attrset

import (
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// Default cache capacities. Indexes are per-dependency-set and hold the
// compiled occurrence lists; closure entries hold one bitset (and lazily one
// sorted name slice) each.
const (
	defaultMaxIndexes  = 128
	defaultMaxClosures = 4096
)

// closureStripes is the number of independent closure-cache shards. A power
// of two, so stripe selection is a mask. Sixteen stripes keep the per-stripe
// mutexes uncontended even when every engine worker goroutine resolves
// closures at once, at the cost of LRU eviction being approximate across the
// whole cache (each stripe evicts locally).
const closureStripes = 16

// closureStripe is one shard of the closure memo: a private LRU under a
// private mutex, plus atomic traffic counters so CacheStats can total exact
// hit/miss/eviction counts without stopping the world.
type closureStripe struct {
	mu                      sync.Mutex
	cache                   *lru[closureKey, *closureEntry]
	hits, misses, evictions atomic.Int64
}

// Engine compiles dependency sets into Indexes and memoizes closure results,
// both under LRU eviction. It is safe for concurrent use. The compile step
// is keyed by a structural fingerprint of the dependency list, so repeated
// calls with an equal list (the universal pattern in fd/nullcon, where every
// public entry point receives the same deps slice over and over) hit the
// cache and pay only the hashing walk; closure results are keyed by
// (dependency fingerprint, canonical seed fingerprint) and hit without
// allocating.
//
// The closure memo — the hot path — is sharded into closureStripes
// independent LRUs keyed by a hash of the closure key, so concurrent readers
// of different closures rarely share a lock. The index cache stays a single
// LRU under Engine.mu: compiles are rare and the map is small.
type Engine struct {
	mu       sync.Mutex
	indexes  *lru[fingerprint, *Index]
	closures [closureStripes]closureStripe

	indexHits, indexMisses, indexEvictions atomic.Int64

	pool sync.Pool
}

type closureKey struct {
	index uint64 // Index.serial — see the indexSerial comment in index.go
	seed  fingerprint
}

type closureEntry struct {
	set   Set
	once  sync.Once
	names []string // lazy sorted materialization, for the []string adapters
}

// NewEngine returns an engine with the default cache capacities.
func NewEngine() *Engine {
	return NewEngineSize(defaultMaxIndexes, defaultMaxClosures)
}

// NewEngineSize returns an engine with explicit cache capacities. The closure
// capacity is split evenly across the stripes (rounded up, minimum one entry
// per stripe), so the effective total is within one entry per stripe of the
// request.
func NewEngineSize(maxIndexes, maxClosures int) *Engine {
	e := &Engine{indexes: newLRU[fingerprint, *Index](maxIndexes)}
	perStripe := (maxClosures + closureStripes - 1) / closureStripes
	if perStripe < 1 {
		perStripe = 1
	}
	for i := range e.closures {
		e.closures[i].cache = newLRU[closureKey, *closureEntry](perStripe)
	}
	e.pool.New = func() any { return &scratch{} }
	return e
}

// stripe picks the shard for a closure key by mixing its three words with a
// splitmix64-style finalizer; the low bits select the stripe.
func (e *Engine) stripe(k closureKey) *closureStripe {
	h := k.index
	h ^= k.seed.hi * 0x9e3779b97f4a7c15
	h ^= k.seed.lo * 0xbf58476d1ce4e5b9
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return &e.closures[h&(closureStripes-1)]
}

// Index compiles (or fetches from cache) the dependency list served by dep:
// dep(i) must return the LHS and RHS attribute names of the i-th dependency.
// Two calls serving equal lists return the same *Index.
func (e *Engine) Index(n int, dep func(i int) (lhs, rhs []string)) *Index {
	fp := fingerprintDeps(n, dep)
	e.mu.Lock()
	if ix, ok := e.indexes.get(fp); ok {
		e.mu.Unlock()
		e.indexHits.Add(1)
		return ix
	}
	e.mu.Unlock()
	e.indexMisses.Add(1)
	ix := buildIndex(n, dep, fp)
	e.mu.Lock()
	evicted := e.indexes.put(fp, ix)
	e.mu.Unlock()
	if evicted {
		e.indexEvictions.Add(1)
	}
	return ix
}

// Closure returns the closure of seed under the index's dependency set as a
// bitset over the index's interner. The returned Set is shared with the
// cache and MUST be treated as read-only.
func (e *Engine) Closure(ix *Index, seed []string) Set {
	return e.closureEntry(ix, seed).set
}

// ClosureNames returns the closure of seed as a sorted attribute-name slice.
// The returned slice is shared with the cache and MUST not be modified;
// adapters that hand it to callers copy it first.
func (e *Engine) ClosureNames(ix *Index, seed []string) []string {
	ce := e.closureEntry(ix, seed)
	ce.once.Do(func() {
		names := make([]string, 0, ce.set.Count())
		ce.set.ForEach(func(id int) {
			names = append(names, ix.in.Name(int32(id)))
		})
		sort.Strings(names)
		ce.names = names
	})
	return ce.names
}

// Contains reports whether every target attribute is in the closure of seed
// under the index's dependency set — the subset test behind Implies,
// IsSuperkey, and the BCNF check, with no materialization.
func (e *Engine) Contains(ix *Index, seed, targets []string) bool {
	ce := e.closureEntry(ix, seed)
	for _, t := range targets {
		id, ok := ix.in.Lookup(t)
		if ok && ce.set.Has(int(id)) {
			continue
		}
		// A name the dependency set and seed never mention can only be in
		// the closure if it is (literally) in the seed. Seed attributes are
		// interned before closure, so this is a cold fallback.
		found := false
		for _, s := range seed {
			if s == t {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// closureEntry interns and canonicalizes the seed, then returns the memoized
// closure entry from the key's stripe, computing it on miss. The hit path
// performs no allocation and touches only the one stripe's mutex: the
// scratch buffers are pooled, the seed ids are sorted in place, and the
// cache returns a shared entry.
func (e *Engine) closureEntry(ix *Index, seed []string) *closureEntry {
	sc := e.pool.Get().(*scratch)
	ids := sc.ids[:0]
	for _, a := range seed {
		ids = append(ids, ix.in.Intern(a))
	}
	slices.Sort(ids)
	ids = slices.Compact(ids)
	key := closureKey{index: ix.serial, seed: fingerprintIDs(ids)}
	st := e.stripe(key)

	st.mu.Lock()
	ce, ok := st.cache.get(key)
	st.mu.Unlock()
	if ok {
		st.hits.Add(1)
		sc.ids = ids
		e.pool.Put(sc)
		return ce
	}
	st.misses.Add(1)

	dst := NewSet(ix.in.Len())
	ix.closeInto(ids, &dst, sc)
	ce = &closureEntry{set: dst}
	st.mu.Lock()
	var evicted bool
	if prev, ok := st.cache.get(key); ok {
		ce = prev // lost a race; keep the first entry canonical
	} else {
		evicted = st.cache.put(key, ce)
	}
	st.mu.Unlock()
	if evicted {
		st.evictions.Add(1)
	}
	sc.ids = ids
	e.pool.Put(sc)
	return ce
}
