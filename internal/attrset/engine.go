package attrset

import (
	"slices"
	"sort"
	"sync"
)

// Default cache capacities. Indexes are per-dependency-set and hold the
// compiled occurrence lists; closure entries hold one bitset (and lazily one
// sorted name slice) each.
const (
	defaultMaxIndexes  = 128
	defaultMaxClosures = 4096
)

// Engine compiles dependency sets into Indexes and memoizes closure results,
// both under LRU eviction. It is safe for concurrent use. The compile step
// is keyed by a structural fingerprint of the dependency list, so repeated
// calls with an equal list (the universal pattern in fd/nullcon, where every
// public entry point receives the same deps slice over and over) hit the
// cache and pay only the hashing walk; closure results are keyed by
// (dependency fingerprint, canonical seed fingerprint) and hit without
// allocating.
type Engine struct {
	mu       sync.Mutex
	indexes  *lru[fingerprint, *Index]
	closures *lru[closureKey, *closureEntry]
	stats    cacheCounters // guarded by mu
	pool     sync.Pool
}

// cacheCounters accumulates cache traffic under Engine.mu; CacheStats copies
// it out for reporting.
type cacheCounters struct {
	indexHits, indexMisses, indexEvictions       int64
	closureHits, closureMisses, closureEvictions int64
}

type closureKey struct {
	index uint64 // Index.serial — see the indexSerial comment in index.go
	seed  fingerprint
}

type closureEntry struct {
	set   Set
	once  sync.Once
	names []string // lazy sorted materialization, for the []string adapters
}

// NewEngine returns an engine with the default cache capacities.
func NewEngine() *Engine {
	return NewEngineSize(defaultMaxIndexes, defaultMaxClosures)
}

// NewEngineSize returns an engine with explicit cache capacities.
func NewEngineSize(maxIndexes, maxClosures int) *Engine {
	e := &Engine{
		indexes:  newLRU[fingerprint, *Index](maxIndexes),
		closures: newLRU[closureKey, *closureEntry](maxClosures),
	}
	e.pool.New = func() any { return &scratch{} }
	return e
}

// Index compiles (or fetches from cache) the dependency list served by dep:
// dep(i) must return the LHS and RHS attribute names of the i-th dependency.
// Two calls serving equal lists return the same *Index.
func (e *Engine) Index(n int, dep func(i int) (lhs, rhs []string)) *Index {
	fp := fingerprintDeps(n, dep)
	e.mu.Lock()
	if ix, ok := e.indexes.get(fp); ok {
		e.stats.indexHits++
		e.mu.Unlock()
		return ix
	}
	e.stats.indexMisses++
	e.mu.Unlock()
	ix := buildIndex(n, dep, fp)
	e.mu.Lock()
	if e.indexes.put(fp, ix) {
		e.stats.indexEvictions++
	}
	e.mu.Unlock()
	return ix
}

// Closure returns the closure of seed under the index's dependency set as a
// bitset over the index's interner. The returned Set is shared with the
// cache and MUST be treated as read-only.
func (e *Engine) Closure(ix *Index, seed []string) Set {
	return e.closureEntry(ix, seed).set
}

// ClosureNames returns the closure of seed as a sorted attribute-name slice.
// The returned slice is shared with the cache and MUST not be modified;
// adapters that hand it to callers copy it first.
func (e *Engine) ClosureNames(ix *Index, seed []string) []string {
	ce := e.closureEntry(ix, seed)
	ce.once.Do(func() {
		names := make([]string, 0, ce.set.Count())
		ce.set.ForEach(func(id int) {
			names = append(names, ix.in.Name(int32(id)))
		})
		sort.Strings(names)
		ce.names = names
	})
	return ce.names
}

// Contains reports whether every target attribute is in the closure of seed
// under the index's dependency set — the subset test behind Implies,
// IsSuperkey, and the BCNF check, with no materialization.
func (e *Engine) Contains(ix *Index, seed, targets []string) bool {
	ce := e.closureEntry(ix, seed)
	for _, t := range targets {
		id, ok := ix.in.Lookup(t)
		if ok && ce.set.Has(int(id)) {
			continue
		}
		// A name the dependency set and seed never mention can only be in
		// the closure if it is (literally) in the seed. Seed attributes are
		// interned before closure, so this is a cold fallback.
		found := false
		for _, s := range seed {
			if s == t {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// closureEntry interns and canonicalizes the seed, then returns the memoized
// closure entry, computing it on miss. The hit path performs no allocation:
// the scratch buffers are pooled, the seed ids are sorted in place, and the
// cache returns a shared entry.
func (e *Engine) closureEntry(ix *Index, seed []string) *closureEntry {
	sc := e.pool.Get().(*scratch)
	ids := sc.ids[:0]
	for _, a := range seed {
		ids = append(ids, ix.in.Intern(a))
	}
	slices.Sort(ids)
	ids = slices.Compact(ids)
	key := closureKey{index: ix.serial, seed: fingerprintIDs(ids)}

	e.mu.Lock()
	ce, ok := e.closures.get(key)
	if ok {
		e.stats.closureHits++
		e.mu.Unlock()
		sc.ids = ids
		e.pool.Put(sc)
		return ce
	}
	e.stats.closureMisses++
	e.mu.Unlock()

	dst := NewSet(ix.in.Len())
	ix.closeInto(ids, &dst, sc)
	ce = &closureEntry{set: dst}
	e.mu.Lock()
	if prev, ok := e.closures.get(key); ok {
		ce = prev // lost a race; keep the first entry canonical
	} else if e.closures.put(key, ce) {
		e.stats.closureEvictions++
	}
	e.mu.Unlock()
	sc.ids = ids
	e.pool.Put(sc)
	return ce
}
