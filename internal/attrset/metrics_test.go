package attrset

import (
	"fmt"
	"testing"

	"repro/internal/obs"
)

func testDeps(n int) func(i int) ([]string, []string) {
	return func(i int) ([]string, []string) {
		return []string{fmt.Sprintf("a%d", i)}, []string{fmt.Sprintf("a%d", i+1)}
	}
}

func TestCacheStatsCounts(t *testing.T) {
	e := NewEngine()
	ix := e.Index(3, testDeps(3))
	if st := e.CacheStats(); st.IndexMisses != 1 || st.IndexHits != 0 {
		t.Fatalf("after first compile: %+v", st)
	}
	if e.Index(3, testDeps(3)) != ix {
		t.Fatal("equal dep lists must share the index")
	}
	e.Closure(ix, []string{"a0"})
	e.Closure(ix, []string{"a0"})
	e.Closure(ix, []string{"a1"})
	st := e.CacheStats()
	if st.IndexHits != 1 || st.IndexMisses != 1 {
		t.Errorf("index traffic: %+v", st)
	}
	if st.ClosureHits != 1 || st.ClosureMisses != 2 {
		t.Errorf("closure traffic: %+v", st)
	}
	if st.IndexCacheSize != 1 || st.ClosureCacheSize != 2 {
		t.Errorf("cache sizes: %+v", st)
	}
	if st.InternedNames != 4 { // a0..a3
		t.Errorf("InternedNames = %d", st.InternedNames)
	}
	if got := st.ClosureHitRate(); got != 1.0/3 {
		t.Errorf("ClosureHitRate = %v", got)
	}
	if (CacheStats{}).ClosureHitRate() != 0 {
		t.Error("idle hit rate should be 0")
	}
}

func TestCacheEvictionCounts(t *testing.T) {
	e := NewEngineSize(2, closureStripes)
	for i := 1; i <= 3; i++ {
		e.Index(i, testDeps(i))
	}
	if st := e.CacheStats(); st.IndexEvictions != 1 || st.IndexCacheSize != 2 {
		t.Errorf("index evictions: %+v", st)
	}

	// The closure memo is striped: capacity closureStripes means one entry
	// per stripe, and which stripe a key lands in depends on its hash. Drive
	// 4x the capacity through and check the bookkeeping invariant instead of
	// an exact victim count: every miss fills a slot, every eviction frees
	// one, so misses - evictions must equal the live entries — and with 64
	// keys over 16 single-entry stripes, some stripe must have evicted.
	ix := e.Index(3, testDeps(3))
	n := 4 * closureStripes
	for i := 0; i < n; i++ {
		e.Closure(ix, []string{fmt.Sprintf("x%d", i)})
	}
	st := e.CacheStats()
	if st.ClosureEvictions == 0 {
		t.Errorf("no closure evictions after %d distinct seeds: %+v", n, st)
	}
	if st.ClosureMisses-st.ClosureEvictions != int64(st.ClosureCacheSize) {
		t.Errorf("misses - evictions != size: %+v", st)
	}
	if st.ClosureCacheSize > closureStripes {
		t.Errorf("closure cache overflowed its capacity: %+v", st)
	}
}

func TestEngineRegister(t *testing.T) {
	e := NewEngine()
	r := obs.NewRegistry()
	e.Register(r, "test")
	ix := e.Index(2, testDeps(2))
	e.Closure(ix, []string{"a0"})
	e.Closure(ix, []string{"a0"})
	got := map[string]float64{}
	for _, p := range r.Snapshot() {
		if p.Labels["engine"] != "test" {
			t.Errorf("series %s missing engine label: %v", p.Name, p.Labels)
		}
		got[p.Name] = p.Value
	}
	if got["attrset.closure_hits"] != 1 || got["attrset.closure_misses"] != 1 {
		t.Errorf("closure series: %v", got)
	}
	if got["attrset.index_misses"] != 1 || got["attrset.index_cache_size"] != 1 {
		t.Errorf("index series: %v", got)
	}
	if got["attrset.interner_names"] != 3 {
		t.Errorf("interner_names = %v", got["attrset.interner_names"])
	}
}
