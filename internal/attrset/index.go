package attrset

import (
	"hash/maphash"
	"math/bits"
	"sync/atomic"
)

// fingerprint is a 128-bit structural hash. Indexes and closure memo entries
// are keyed by fingerprint alone (no stored-key verification); a collision
// would need two distinct dependency sets or seed sets agreeing on both
// lanes, which at the cache sizes involved is vanishingly unlikely.
type fingerprint struct{ hi, lo uint64 }

const (
	fpOffsetHi = 0xcbf29ce484222325 // FNV-64 offset basis
	fpOffsetLo = 0x9e3779b97f4a7c15 // golden-ratio constant
	fpPrimeHi  = 0x00000100000001b3 // FNV-64 prime
	fpPrimeLo  = 0xc6a4a7935bd1e995 // MurmurHash64A constant
)

// stringSeed keys the per-string hashes; cache keys never leave the process,
// so a per-process random seed is fine.
var stringSeed = maphash.MakeSeed()

func (f *fingerprint) mix(h uint64) {
	f.hi = (f.hi ^ h) * fpPrimeHi
	f.lo = bits.RotateLeft64(f.lo^h, 29) * fpPrimeLo
}

// fingerprintDeps hashes a dependency list: per-dep and per-side separators
// keep ({A,B}→C) and ({A}→{B,C}) structurally distinct.
func fingerprintDeps(n int, dep func(int) (lhs, rhs []string)) fingerprint {
	f := fingerprint{hi: fpOffsetHi, lo: fpOffsetLo}
	for i := 0; i < n; i++ {
		lhs, rhs := dep(i)
		f.mix(0x2545f4914f6cdd1d)
		for _, s := range lhs {
			f.mix(maphash.String(stringSeed, s))
		}
		f.mix(0xbf58476d1ce4e5b9)
		for _, s := range rhs {
			f.mix(maphash.String(stringSeed, s))
		}
	}
	return f
}

// fingerprintIDs hashes a sorted, deduplicated id slice (a canonical seed).
func fingerprintIDs(ids []int32) fingerprint {
	f := fingerprint{hi: fpOffsetHi, lo: fpOffsetLo}
	for _, id := range ids {
		f.mix(uint64(id) + 0x9e3779b9)
	}
	return f
}

// Index is an immutable compilation of one dependency set: interned LHS/RHS
// id lists plus, per attribute, the list of dependencies whose LHS mentions
// it. It owns its interner, which keeps ids dense for the bitsets; seed
// attributes outside the dependency set are interned on first use and simply
// have no occurrence lists.
type Index struct {
	in     *Interner
	fp     fingerprint
	serial uint64 // unique per built instance; keys the closure memo
	lhs    [][]int32
	rhs    [][]int32
	occurs [][]int32 // attr id -> indices of deps with the attr in their LHS
}

// indexSerial distinguishes Index instances. Closure memo entries are keyed
// by serial rather than by dependency fingerprint: interner ids depend on
// the order seeds were interned over the index's lifetime, so an entry
// recorded against an evicted-and-rebuilt index (same fingerprint, fresh
// interner) must never be visible to the new instance.
var indexSerial atomic.Uint64

// buildIndex compiles the dependency list. A duplicated attribute inside one
// LHS contributes one occurrence entry per duplicate, matching the
// unsatisfied-attribute counter len(lhs), so duplicates stay consistent.
func buildIndex(n int, dep func(int) (lhs, rhs []string), fp fingerprint) *Index {
	in := NewInterner()
	ix := &Index{in: in, fp: fp, serial: indexSerial.Add(1), lhs: make([][]int32, n), rhs: make([][]int32, n)}
	for i := 0; i < n; i++ {
		l, r := dep(i)
		li := make([]int32, len(l))
		for j, s := range l {
			li[j] = in.Intern(s)
		}
		ri := make([]int32, len(r))
		for j, s := range r {
			ri[j] = in.Intern(s)
		}
		ix.lhs[i], ix.rhs[i] = li, ri
	}
	ix.occurs = make([][]int32, in.Len())
	for di, l := range ix.lhs {
		for _, id := range l {
			ix.occurs[id] = append(ix.occurs[id], int32(di))
		}
	}
	return ix
}

// Interner returns the index's attribute interner.
func (ix *Index) Interner() *Interner { return ix.in }

// Deps returns the number of compiled dependencies.
func (ix *Index) Deps() int { return len(ix.lhs) }

// scratch holds the reusable per-closure working state; pooled by Engine so
// the steady-state closure loop allocates nothing.
type scratch struct {
	counts []int32
	queue  []int32
	ids    []int32
}

// closeInto computes the closure of seed into dst (which must be empty) with
// the counter algorithm: every dependency keeps a count of LHS attributes
// not yet in the closure; attributes enter a work queue once, and each
// pop decrements the counts of the dependencies mentioning the attribute,
// firing a dependency's RHS exactly when its count reaches zero. Total work
// is linear in the size of the dependency set.
func (ix *Index) closeInto(seed []int32, dst *Set, sc *scratch) {
	counts := sc.counts
	if cap(counts) < len(ix.lhs) {
		counts = make([]int32, len(ix.lhs))
	}
	counts = counts[:len(ix.lhs)]
	queue := sc.queue[:0]

	for i := range ix.lhs {
		counts[i] = int32(len(ix.lhs[i]))
	}
	for _, id := range seed {
		if !dst.Has(int(id)) {
			dst.Add(int(id))
			queue = append(queue, id)
		}
	}
	// Dependencies with empty LHS (e.g. nulls-not-allowed constraints, whose
	// null-existence form is ∅ ⊑ Z) fire unconditionally.
	for i := range counts {
		if counts[i] == 0 {
			for _, r := range ix.rhs[i] {
				if !dst.Has(int(r)) {
					dst.Add(int(r))
					queue = append(queue, r)
				}
			}
		}
	}
	for head := 0; head < len(queue); head++ {
		id := int(queue[head])
		if id >= len(ix.occurs) {
			continue // seed attribute outside the dependency set
		}
		for _, di := range ix.occurs[id] {
			counts[di]--
			if counts[di] == 0 {
				for _, r := range ix.rhs[di] {
					if !dst.Has(int(r)) {
						dst.Add(int(r))
						queue = append(queue, r)
					}
				}
			}
		}
	}
	sc.counts = counts
	sc.queue = queue
}
