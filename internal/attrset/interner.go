// Package attrset is the performance core of the dependency-reasoning
// packages (fd, nullcon, keyrel): a per-dependency-set attribute interner
// mapping qualified names to dense ids, a bitset Set over those ids, an
// indexed linear-time attribute-closure algorithm (Beeri–Bernstein style
// unsatisfied-LHS counters driven by a work queue), and an Engine that
// compiles dependency sets into reusable indexes and memoizes closure
// results in LRU caches.
//
// Every closure-shaped question in the reproduction — FD implication
// (Prop. 4.1), candidate keys, BCNF checks, null-existence closure (the §3
// axioms are FD-shaped, so closure is the inference engine) — bottoms out
// here. The []string APIs of the reasoning packages are thin adapters over
// this package.
package attrset

import "sync"

// Interner assigns dense int32 ids to attribute names, first-come
// first-served. It is safe for concurrent use; reads take a shared lock so
// the steady state (every name already interned) stays contention-light and
// allocation-free.
type Interner struct {
	mu    sync.RWMutex
	ids   map[string]int32
	names []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int32)}
}

// Intern returns the id of name, assigning the next dense id on first sight.
func (in *Interner) Intern(name string) int32 {
	in.mu.RLock()
	id, ok := in.ids[name]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[name]; ok {
		return id
	}
	id = int32(len(in.names))
	in.ids[name] = id
	in.names = append(in.names, name)
	return id
}

// Lookup returns the id of name without assigning one.
func (in *Interner) Lookup(name string) (int32, bool) {
	in.mu.RLock()
	id, ok := in.ids[name]
	in.mu.RUnlock()
	return id, ok
}

// Name returns the name of an interned id.
func (in *Interner) Name(id int32) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.names[id]
}

// Len returns the number of interned names.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.names)
}
