package attrset

import "repro/internal/obs"

// CacheStats is a point-in-time copy of an Engine's cache traffic: hit, miss,
// and eviction totals for the two LRU caches, their current sizes, and the
// total number of attribute names interned across the cached indexes. The
// steady-state regime of the reasoning packages (the same dependency set
// queried over and over) shows up here as a closure hit rate near 1.
type CacheStats struct {
	IndexHits        int64
	IndexMisses      int64
	IndexEvictions   int64
	ClosureHits      int64
	ClosureMisses    int64
	ClosureEvictions int64
	IndexCacheSize   int
	ClosureCacheSize int
	InternedNames    int
}

// IndexHitRate returns hits/(hits+misses) for the index cache, 0 when idle.
func (s CacheStats) IndexHitRate() float64 {
	return rate(s.IndexHits, s.IndexMisses)
}

// ClosureHitRate returns hits/(hits+misses) for the closure memo, 0 when idle.
func (s CacheStats) ClosureHitRate() float64 {
	return rate(s.ClosureHits, s.ClosureMisses)
}

func rate(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// CacheStats returns a snapshot of the engine's cache counters. The closure
// totals are exact sums of the per-stripe atomic counters; hit/miss/eviction
// arithmetic (misses − evictions = cache size, in the steady state with no
// racing fills) holds across the sum even though each stripe is read at a
// slightly different instant.
func (e *Engine) CacheStats() CacheStats {
	st := CacheStats{
		IndexHits:      e.indexHits.Load(),
		IndexMisses:    e.indexMisses.Load(),
		IndexEvictions: e.indexEvictions.Load(),
	}
	for i := range e.closures {
		s := &e.closures[i]
		st.ClosureHits += s.hits.Load()
		st.ClosureMisses += s.misses.Load()
		st.ClosureEvictions += s.evictions.Load()
		s.mu.Lock()
		st.ClosureCacheSize += s.cache.len()
		s.mu.Unlock()
	}
	e.mu.Lock()
	st.IndexCacheSize = e.indexes.len()
	e.indexes.each(func(ix *Index) { st.InternedNames += ix.in.Len() })
	e.mu.Unlock()
	return st
}

// Metric names registered per engine under its engine=<name> label.
const (
	metricIndexHits        = "attrset.index_hits"
	metricIndexMisses      = "attrset.index_misses"
	metricIndexEvictions   = "attrset.index_evictions"
	metricClosureHits      = "attrset.closure_hits"
	metricClosureMisses    = "attrset.closure_misses"
	metricClosureEvictions = "attrset.closure_evictions"
	metricIndexCacheSize   = "attrset.index_cache_size"
	metricClosureCacheSize = "attrset.closure_cache_size"
	metricInternedNames    = "attrset.interner_names"
)

// Register publishes the engine's cache counters into a metrics registry as
// lazily-evaluated series labeled engine=<name>: counters for hits, misses,
// and evictions of both caches, and gauges for the live cache sizes and the
// interned-name total. Values are read at snapshot time, so one registration
// tracks the engine for its lifetime.
func (e *Engine) Register(r *obs.Registry, name string) {
	l := obs.L("engine", name)
	counter := func(metric string, read func(CacheStats) int64) {
		r.CounterFunc(metric, func() float64 { return float64(read(e.CacheStats())) }, l)
	}
	gauge := func(metric string, read func(CacheStats) int) {
		r.GaugeFunc(metric, func() float64 { return float64(read(e.CacheStats())) }, l)
	}
	counter(metricIndexHits, func(s CacheStats) int64 { return s.IndexHits })
	counter(metricIndexMisses, func(s CacheStats) int64 { return s.IndexMisses })
	counter(metricIndexEvictions, func(s CacheStats) int64 { return s.IndexEvictions })
	counter(metricClosureHits, func(s CacheStats) int64 { return s.ClosureHits })
	counter(metricClosureMisses, func(s CacheStats) int64 { return s.ClosureMisses })
	counter(metricClosureEvictions, func(s CacheStats) int64 { return s.ClosureEvictions })
	gauge(metricIndexCacheSize, func(s CacheStats) int { return s.IndexCacheSize })
	gauge(metricClosureCacheSize, func(s CacheStats) int { return s.ClosureCacheSize })
	gauge(metricInternedNames, func(s CacheStats) int { return s.InternedNames })
}
