package attrset

import "math/bits"

// Set is a dense bitset over interned attribute ids. The zero value is an
// empty set; mutating methods take a pointer receiver so the word slice can
// grow. Sets of different lengths compare as if padded with zero words.
type Set []uint64

// NewSet returns a set with capacity for ids below n.
func NewSet(n int) Set {
	return make(Set, (n+63)/64)
}

// Add inserts an id, growing the set as needed.
func (s *Set) Add(id int) {
	w := id >> 6
	for w >= len(*s) {
		*s = append(*s, 0)
	}
	(*s)[w] |= 1 << (uint(id) & 63)
}

// Has reports whether the id is present.
func (s Set) Has(id int) bool {
	w := id >> 6
	return w < len(s) && s[w]&(1<<(uint(id)&63)) != 0
}

// UnionWith adds every element of t.
func (s *Set) UnionWith(t Set) {
	for len(*s) < len(t) {
		*s = append(*s, 0)
	}
	for i, w := range t {
		(*s)[i] |= w
	}
}

// IntersectWith removes every element not in t.
func (s *Set) IntersectWith(t Set) {
	for i := range *s {
		if i < len(t) {
			(*s)[i] &= t[i]
		} else {
			(*s)[i] = 0
		}
	}
}

// DiffWith removes every element of t.
func (s *Set) DiffWith(t Set) {
	n := len(*s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		(*s)[i] &^= t[i]
	}
}

// SubsetOf reports whether every element of s is in t.
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s {
		var tw uint64
		if i < len(t) {
			tw = t[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Equal reports set equality, ignoring trailing zero words.
func (s Set) Equal(t Set) bool {
	long, short := s, t
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of elements.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for every element in ascending id order.
func (s Set) ForEach(fn func(id int)) {
	for i, w := range s {
		base := i << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	return append(Set(nil), s...)
}

// Reset clears the set in place, keeping capacity.
func (s *Set) Reset() {
	for i := range *s {
		(*s)[i] = 0
	}
}
