package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/wal"
)

// testSchema is the minimal schema the integration tests serve: one
// relation, string key, one payload attribute.
func testSchema() *schema.Schema {
	return schema.New().AddScheme(schema.NewScheme("R",
		[]schema.Attribute{{Name: "R.K", Domain: "k"}, {Name: "R.V", Domain: "v"}},
		[]string{"R.K"}))
}

func row(k, v string) relation.Tuple {
	return relation.Tuple{relation.NewString(k), relation.NewString(v)}
}

func key(k string) relation.Tuple { return relation.Tuple{relation.NewString(k)} }

// startServer opens an engine over testSchema, wraps it in a server with an
// isolated registry, and serves on a loopback listener. The cleanup closes
// the server (and through it the engine).
func startServer(t *testing.T, cfg Config, engOpts ...engine.Option) (*Server, string) {
	t.Helper()
	eng, err := engine.Open(testSchema(), engOpts...)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	srv := New(eng, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// rawConn is a hand-driven protocol connection for abuse tests.
type rawConn struct {
	t  *testing.T
	nc net.Conn
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	return &rawConn{t: t, nc: nc}
}

func (c *rawConn) send(req *Request) {
	c.t.Helper()
	if _, err := WriteFrame(c.nc, req); err != nil {
		c.t.Fatalf("writing %s frame: %v", req.Op, err)
	}
}

func (c *rawConn) sendRaw(frame []byte) {
	c.t.Helper()
	if _, err := c.nc.Write(frame); err != nil {
		c.t.Fatalf("writing raw frame: %v", err)
	}
}

func (c *rawConn) recv() (*Response, error) {
	body, err := ReadFrame(c.nc, DefaultMaxFrame)
	if err != nil {
		return nil, err
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *rawConn) hello() {
	c.t.Helper()
	c.send(&Request{ID: 1, Op: OpHello, Version: ProtoVersion})
	resp, err := c.recv()
	if err != nil {
		c.t.Fatalf("handshake: %v", err)
	}
	if !resp.OK || resp.Version != ProtoVersion {
		c.t.Fatalf("handshake refused: %+v", resp)
	}
}

// drainResponses reads frames until the server closes the connection,
// returning everything received.
func (c *rawConn) drainResponses() []*Response {
	var out []*Response
	for {
		resp, err := c.recv()
		if err != nil {
			return out
		}
		out = append(out, resp)
	}
}

func frameWithLength(n uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], n)
	return b[:]
}

// TestProtocolViolationsFailClosed drives each class of malformed traffic at
// a live server: the offending connection must be answered (best effort)
// with a protocol error and closed, without panicking the server or
// poisoning other connections.
func TestProtocolViolationsFailClosed(t *testing.T) {
	_, addr := startServer(t, Config{}, engine.WithAccessDelay(20*time.Millisecond))

	cases := []struct {
		name  string
		abuse func(c *rawConn)
	}{
		{"oversized frame", func(c *rawConn) {
			c.hello()
			c.sendRaw(frameWithLength(uint32(DefaultMaxFrame) + 1))
		}},
		{"zero-length frame", func(c *rawConn) {
			c.hello()
			c.sendRaw(frameWithLength(0))
		}},
		{"truncated frame", func(c *rawConn) {
			c.hello()
			// Announce 100 bytes, deliver 3, then half-close: the server's
			// read fails mid-body and the connection dies.
			c.sendRaw(append(frameWithLength(100), 'x', 'y', 'z'))
			c.nc.(*net.TCPConn).CloseWrite()
		}},
		{"bad JSON", func(c *rawConn) {
			c.hello()
			body := []byte(`{"id":2,"op":`)
			c.sendRaw(append(frameWithLength(uint32(len(body))), body...))
		}},
		{"unknown op", func(c *rawConn) {
			c.hello()
			c.send(&Request{ID: 2, Op: "drop_table"})
		}},
		{"repeated hello", func(c *rawConn) {
			c.hello()
			c.send(&Request{ID: 2, Op: OpHello, Version: ProtoVersion})
		}},
		{"hello version garbage", func(c *rawConn) {
			c.send(&Request{ID: 1, Op: OpHello, Version: 0})
		}},
		{"first frame not hello", func(c *rawConn) {
			c.send(&Request{ID: 1, Op: OpPing})
		}},
		{"duplicate in-flight id", func(c *rawConn) {
			c.hello()
			// The first insert simulates 20ms of storage access, so it is
			// still in flight when the duplicate arrives.
			c.send(&Request{ID: 7, Op: OpInsert, Relation: "R", Tuple: EncodeTuple(row("dup", "v"))})
			c.send(&Request{ID: 7, Op: OpFetch, Relation: "R", Key: EncodeTuple(key("dup"))})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := dialRaw(t, addr)
			tc.abuse(c)
			responses := c.drainResponses() // returns only once the server closed the conn
			sawProtocol := false
			for _, resp := range responses {
				if resp.Code == CodeProtocol {
					sawProtocol = true
				}
			}
			// The truncated-frame case dies on an io error, not a decodable
			// violation, so no protocol response is owed — only the close.
			if !sawProtocol && tc.name != "truncated frame" {
				t.Errorf("no protocol-error response among %d responses", len(responses))
			}
		})
	}

	// The server survived every abuse case: a fresh, well-behaved client
	// works end to end.
	c, err := Dial(addr, ClientOptions{})
	if err != nil {
		t.Fatalf("healthy client after abuse: %v", err)
	}
	defer c.Close()
	if err := c.InsertCtx(context.Background(), "R", row("alive", "yes")); err != nil {
		t.Fatalf("healthy insert after abuse: %v", err)
	}
	tup, found, err := c.FetchCtx(context.Background(), "R", key("alive"))
	if err != nil || !found || tup[1].AsString() != "yes" {
		t.Fatalf("healthy fetch after abuse: tup=%v found=%v err=%v", tup, found, err)
	}
}

// TestAdmissionControl saturates a one-worker, depth-one queue and checks
// that surplus requests are refused instantly with CodeOverloaded rather
// than queued past the depth limit.
func TestAdmissionControl(t *testing.T) {
	_, addr := startServer(t,
		Config{Workers: 1, QueueDepth: 1, CoalesceMax: 1},
		engine.WithAccessDelay(30*time.Millisecond))

	c := dialRaw(t, addr)
	c.hello()
	const n = 8
	for i := 0; i < n; i++ {
		c.send(&Request{ID: uint64(10 + i), Op: OpInsert, Relation: "R",
			Tuple: EncodeTuple(row(fmt.Sprintf("k%d", i), "v"))})
	}
	var ok, overloaded int
	for i := 0; i < n; i++ {
		resp, err := c.recv()
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		switch {
		case resp.OK:
			ok++
		case resp.Code == CodeOverloaded:
			overloaded++
		default:
			t.Fatalf("unexpected response %+v", resp)
		}
	}
	if ok == 0 || overloaded == 0 {
		t.Fatalf("want both accepted and refused requests, got ok=%d overloaded=%d", ok, overloaded)
	}
}

// TestDeadlineExpiresInQueue arms a deadline shorter than the engine's
// simulated access: whether it expires queued or mid-operation, the request
// must be answered with the deadline code and must not commit after the
// fact.
func TestDeadlineExpiresInQueue(t *testing.T) {
	_, addr := startServer(t, Config{Workers: 1, CoalesceMax: 1},
		engine.WithAccessDelay(60*time.Millisecond))

	client, err := Dial(addr, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Occupy the single worker, then race a short-deadline insert behind it.
	blocker := make(chan error, 1)
	go func() {
		blocker <- client.InsertCtx(context.Background(), "R", row("blocker", "v"))
	}()
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = client.InsertCtx(ctx, "R", row("late", "v"))
	if err == nil {
		t.Fatal("short-deadline insert succeeded behind a busy worker")
	}
	if code := CodeOf(err); code != CodeDeadline && code != CodeCanceled {
		t.Fatalf("want deadline/canceled code, got %q (%v)", code, err)
	}
	if err := <-blocker; err != nil {
		t.Fatalf("blocker insert: %v", err)
	}
	if _, found, err := client.FetchCtx(context.Background(), "R", key("late")); err != nil || found {
		t.Fatalf("expired insert must not commit: found=%v err=%v", found, err)
	}
}

// TestGracefulDrain verifies the Shutdown sequence: in-flight requests
// finish and are answered, the durable engine is checkpointed and its WAL
// closed, and new connections are refused.
func TestGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startServer(t, Config{},
		engine.WithAccessDelay(50*time.Millisecond),
		engine.WithDurability(dir, wal.SyncNever))

	client, err := Dial(addr, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	inflight := make(chan error, 1)
	go func() {
		inflight <- client.InsertCtx(context.Background(), "R", row("inflight", "v"))
	}()
	time.Sleep(15 * time.Millisecond) // let the insert reach the engine

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight insert during drain: %v", err)
	}

	// Dialing the drained server must fail (handshake or connect).
	if c2, err := Dial(addr, ClientOptions{DialTimeout: 500 * time.Millisecond}); err == nil {
		c2.Close()
		t.Fatal("dial succeeded against a drained server")
	}

	// The drain checkpointed: a reopened engine restores from the snapshot
	// (not a log replay) and holds the acknowledged write.
	re, err := engine.Open(testSchema(), engine.WithDurability(dir, wal.SyncNever))
	if err != nil {
		t.Fatalf("reopening drained WAL dir: %v", err)
	}
	defer re.Close()
	if !re.Recovered().SnapshotLoaded {
		t.Error("drain did not leave a checkpoint snapshot")
	}
	if re.Count("R") != 1 {
		t.Errorf("recovered %d rows, want 1", re.Count("R"))
	}
}

// TestKillMidBatchRecoversAckedPrefix reuses the WAL failpoints for the
// crash test the Makefile's serve-test target runs: a client streams
// acknowledged inserts, the WAL is armed to fail a write mid-stream, the
// server is killed abruptly, and recovery must reconstruct exactly the
// acknowledged prefix — every acked write present, nothing else.
func TestKillMidBatchRecoversAckedPrefix(t *testing.T) {
	dir := t.TempDir()
	const failAt = 11
	fp := &wal.Failpoint{FailWrite: failAt}
	eng, err := engine.Open(testSchema(),
		engine.WithWALOptions(dir, wal.Options{Policy: wal.SyncAlways, Failpoint: fp}))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{Workers: 2, CoalesceMax: 1, Registry: obs.NewRegistry()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	client, err := Dial(ln.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var acked []string
	for i := 0; i < 2*failAt; i++ {
		k := fmt.Sprintf("k%03d", i)
		if err := client.InsertCtx(context.Background(), "R", row(k, "v")); err != nil {
			break // the armed write failed: not acknowledged
		}
		acked = append(acked, k)
	}
	client.Close()
	srv.Close() // crash: no drain, no checkpoint, no WAL close

	if len(acked) == 0 || len(acked) >= 2*failAt {
		t.Fatalf("failpoint did not bite where expected: %d acked", len(acked))
	}

	re, err := engine.Open(testSchema(), engine.WithDurability(dir, wal.SyncAlways))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()
	if got := re.Count("R"); got != len(acked) {
		t.Fatalf("recovered %d rows, want exactly the %d acked", got, len(acked))
	}
	for _, k := range acked {
		if _, ok := re.GetByKey("R", key(k)); !ok {
			t.Errorf("acknowledged write %s lost in recovery", k)
		}
	}
}

// TestWriteCoalescing floods concurrent writers through a coalescing server
// at fsync=always and checks the batching actually amortized fsyncs: fewer
// WAL appends than acknowledged writes, with every write still recovered.
func TestWriteCoalescing(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	eng, err := engine.Open(testSchema(),
		engine.WithRegistry(reg),
		engine.WithDurability(dir, wal.SyncAlways),
		engine.WithAccessDelay(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{Workers: 2, CoalesceMax: 16, Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	const writers, each = 8, 8
	client, err := Dial(ln.Addr().String(), ClientOptions{PoolSize: writers})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < each; i++ {
				k := fmt.Sprintf("w%d-%d", w, i)
				if err := client.InsertCtx(context.Background(), "R", row(k, "v")); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errc; err != nil {
			t.Fatalf("writer: %v", err)
		}
	}
	client.Close()

	var appends float64
	for _, p := range reg.Snapshot() {
		if p.Name == "wal.appends" {
			appends = p.Value
		}
	}
	if appends == 0 || int(appends) >= writers*each {
		t.Errorf("coalescing did not amortize: %v WAL appends for %d writes", appends, writers*each)
	}
	var coalesced float64
	for _, p := range reg.Snapshot() {
		if p.Name == metricCoalescedWrites {
			coalesced += p.Value
		}
	}
	if coalesced == 0 {
		t.Error("no writes recorded as coalesced")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	re, err := engine.Open(testSchema(), engine.WithDurability(dir, wal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Count("R"); got != writers*each {
		t.Errorf("recovered %d rows, want %d", got, writers*each)
	}
}

// TestClientRetriesIdempotentOnly kills the server's listener between
// operations: a fetch against the dead server exhausts its retries with a
// transport error, and the retry accounting never resurrects a mutation.
func TestClientRetriesIdempotentOnly(t *testing.T) {
	srv, addr := startServer(t, Config{})
	client, err := Dial(addr, ClientOptions{Retries: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.InsertCtx(context.Background(), "R", row("k", "v")); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// Fetch (idempotent) retries, then surfaces a transport error — not a
	// remote error, since no server ever answered.
	_, _, err = client.FetchCtx(context.Background(), "R", key("k"))
	if err == nil {
		t.Fatal("fetch against a dead server succeeded")
	}
	var re *RemoteError
	if errors.As(err, &re) {
		t.Fatalf("transport failure misreported as remote error %v", re)
	}
	// A mutation fails immediately on the dead connection without retrying;
	// its error is equally a transport error.
	if err := client.InsertCtx(context.Background(), "R", row("k2", "v")); err == nil {
		t.Fatal("insert against a dead server succeeded")
	}
}

// TestStatsAndPing exercises the read-only ops end to end.
func TestStatsAndPing(t *testing.T) {
	_, addr := startServer(t, Config{})
	client, err := Dial(addr, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.PingCtx(context.Background()); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := client.InsertCtx(context.Background(), "R", row("s", "v")); err != nil {
		t.Fatal(err)
	}
	st, err := client.StatsCtx(context.Background())
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Inserts != 1 {
		t.Fatalf("stats inserts = %d, want 1", st.Inserts)
	}
}

// TestFrameEncodingStable pins the frame layout: 4-byte big-endian length
// prefix followed by the JSON body, so independent client implementations
// can rely on it.
func TestFrameEncodingStable(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteFrame(&buf, &Request{ID: 1, Op: OpPing})
	if err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if n != len(raw) {
		t.Fatalf("WriteFrame reported %d bytes, wrote %d", n, len(raw))
	}
	if got := binary.BigEndian.Uint32(raw[:4]); int(got) != len(raw)-4 {
		t.Fatalf("length prefix %d, body %d", got, len(raw)-4)
	}
	if !json.Valid(raw[4:]) {
		t.Fatal("frame body is not valid JSON")
	}
}
