package server

import (
	"bytes"
	"reflect"
	"testing"
)

// Round-trip the replication request/response shapes through both codecs:
// the repl fields are additions on top of the frozen v2 layout, so they must
// survive encode/decode exactly in v1 JSON and v2 binary alike.
func TestReplFramesRoundTrip(t *testing.T) {
	reqs := []*Request{
		{ID: 7, Op: OpReplSubscribe, AfterLSN: 42, MaxRecords: 512},
		{ID: 8, Op: OpReplFetch, AfterLSN: 0, MaxRecords: 0, DeadlineMS: 250},
		{ID: 9, Op: OpReplHeartbeat},
	}
	resps := []*Response{
		{ID: 7, OK: true, Repl: &WireRepl{CommitLSN: 99, Records: []WireRecord{
			{LSN: 43, Payload: []byte{0x01, 0x00, 0xff}},
			{LSN: 44, Payload: []byte("record")},
		}}},
		{ID: 8, OK: true, Repl: &WireRepl{CommitLSN: 99, Snapshot: []byte("STATE"), SnapshotLSN: 90}},
		{ID: 9, OK: true, Repl: &WireRepl{CommitLSN: 99}},
	}
	for _, version := range []int{ProtoVersion, ProtoVersionBinary} {
		for _, req := range reqs {
			var buf bytes.Buffer
			if _, err := WriteFrameVersion(&buf, version, req); err != nil {
				t.Fatalf("v%d encode %s: %v", version, req.Op, err)
			}
			body, err := ReadFrame(&buf, DefaultMaxFrame)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeRequestVersion(body, version)
			if err != nil {
				t.Fatalf("v%d decode %s: %v", version, req.Op, err)
			}
			if !reflect.DeepEqual(got, req) {
				t.Fatalf("v%d request round-trip:\ngot  %+v\nwant %+v", version, got, req)
			}
		}
		for _, resp := range resps {
			var buf bytes.Buffer
			if _, err := WriteFrameVersion(&buf, version, resp); err != nil {
				t.Fatalf("v%d encode response %d: %v", version, resp.ID, err)
			}
			body, err := ReadFrame(&buf, DefaultMaxFrame)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeResponseVersion(body, version)
			if err != nil {
				t.Fatalf("v%d decode response %d: %v", version, resp.ID, err)
			}
			if !reflect.DeepEqual(got, resp) {
				t.Fatalf("v%d response round-trip:\ngot  %+v\nwant %+v", version, got, resp)
			}
		}
	}
}
