package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"

	"repro/internal/relation"
)

func TestWireValueRoundTrip(t *testing.T) {
	values := []relation.Value{
		relation.Null(),
		relation.NewString(""),
		relation.NewString("hello"),
		relation.NewString("näïve\x00bytes"),
		relation.NewInt(0),
		relation.NewInt(-42),
		relation.NewInt(math.MaxInt64),
		relation.NewFloat(0),
		relation.NewFloat(math.Copysign(0, -1)),
		relation.NewFloat(3.5),
		relation.NewFloat(math.NaN()),
		relation.NewFloat(math.Inf(1)),
		relation.NewBool(true),
		relation.NewBool(false),
	}
	for _, v := range values {
		got, err := DecodeValue(EncodeValue(v))
		if err != nil {
			t.Fatalf("DecodeValue(EncodeValue(%v)): %v", v, err)
		}
		if got.Kind() != v.Kind() {
			t.Fatalf("round trip of %v changed kind: %v", v, got.Kind())
		}
		// NaN != NaN, so compare float bits, not values; nulls compare
		// unequal to everything (SQL semantics), so the kind check above is
		// the whole comparison for them.
		if v.Kind() == relation.KindFloat {
			if math.Float64bits(got.AsFloat()) != math.Float64bits(v.AsFloat()) {
				t.Fatalf("float bits changed: %x != %x", math.Float64bits(got.AsFloat()), math.Float64bits(v.AsFloat()))
			}
		} else if !v.IsNull() && !got.Equal(v) {
			t.Fatalf("round trip changed %v to %v", v, got)
		}
	}
}

func TestDecodeValueRejectsMalformed(t *testing.T) {
	bad := []WireValue{
		{T: "i", V: "not-a-number"},
		{T: "f", V: "zz"},
		{T: "b", V: "2"},
		{T: "x", V: "?"},
	}
	for _, w := range bad {
		if _, err := DecodeValue(w); err == nil {
			t.Errorf("DecodeValue(%+v) accepted malformed input", w)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{ID: 7, Op: OpInsert, Relation: "R", Tuple: EncodeTuple(relation.Tuple{relation.NewString("k")})}
	if _, err := WriteFrame(&buf, req); err != nil {
		t.Fatal(err)
	}
	body, err := ReadFrame(&buf, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || got.Op != OpInsert || got.Relation != "R" || len(got.Tuple) != 1 {
		t.Fatalf("round trip mangled the request: %+v", got)
	}
}

func TestReadFrameFailsClosed(t *testing.T) {
	prefix := func(n uint32) []byte {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], n)
		return b[:]
	}
	t.Run("zero length", func(t *testing.T) {
		_, err := ReadFrame(bytes.NewReader(prefix(0)), 64)
		if !errors.Is(err, ErrProtocol) {
			t.Fatalf("want ErrProtocol, got %v", err)
		}
	})
	t.Run("oversized", func(t *testing.T) {
		// The limit check must fire before the body is read or allocated:
		// no body bytes follow the prefix, yet the error is ErrProtocol,
		// not an io error from a short read.
		_, err := ReadFrame(bytes.NewReader(prefix(1<<31)), 64)
		if !errors.Is(err, ErrProtocol) {
			t.Fatalf("want ErrProtocol, got %v", err)
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		_, err := ReadFrame(bytes.NewReader(append(prefix(10), 'x')), 64)
		if err == nil || errors.Is(err, io.EOF) {
			t.Fatalf("truncated body must be an error distinct from clean EOF, got %v", err)
		}
	})
	t.Run("clean close", func(t *testing.T) {
		if _, err := ReadFrame(bytes.NewReader(nil), 64); err != io.EOF {
			t.Fatalf("clean close must be unwrapped io.EOF, got %v", err)
		}
	})
	t.Run("truncated prefix", func(t *testing.T) {
		_, err := ReadFrame(bytes.NewReader(prefix(4)[:2]), 64)
		if err == nil || err == io.EOF {
			t.Fatalf("mid-prefix close must be an error distinct from clean EOF, got %v", err)
		}
	})
}

func TestDecodeRequestFailsClosed(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"bad JSON", `{"id":1,`},
		{"not an object", `[1,2,3]`},
		{"unknown op", `{"id":1,"op":"drop_table"}`},
		{"empty op", `{"id":1}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeRequest([]byte(tc.body))
			if !errors.Is(err, ErrProtocol) {
				t.Fatalf("want ErrProtocol, got %v", err)
			}
		})
	}
}

// FuzzReadFrame feeds arbitrary bytes through the frame reader and both
// request decoders: they must fail closed (error or valid request), never
// panic — in particular the binary decoder's counts and lengths must be
// bounds-checked before any allocation sized from them.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, &Request{ID: 1, Op: OpPing})
	f.Add(seed.Bytes())
	seed.Reset()
	WriteFrameVersion(&seed, ProtoVersionBinary, &Request{ID: 2, Op: OpInsert, Relation: "R",
		Tuple: []WireValue{{T: "s", V: "v"}, {T: "i", V: "7"}}})
	f.Add(seed.Bytes())
	seed.Reset()
	WriteFrameVersion(&seed, ProtoVersionBinary, &Request{ID: 3, Op: OpApplyBatch,
		Ops: []WireOp{{Kind: OpDelete, Relation: "R", Key: []WireValue{{T: "n"}}}}})
	f.Add(seed.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	f.Add([]byte(`{"id":1,"op":"insert"}`))
	// A binary body announcing a huge tuple count with no bytes behind it.
	f.Add([]byte{0, 0, 0, 12, binOpInsert, 1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x0f, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		body, err := ReadFrame(bytes.NewReader(data), 1<<16)
		if err != nil {
			return
		}
		for _, version := range []int{ProtoVersion, ProtoVersionBinary} {
			req, err := DecodeRequestVersion(body, version)
			if err != nil {
				continue
			}
			// A structurally valid request must still decode its payload
			// without panicking, whatever the values hold.
			DecodeTuple(req.Key)
			DecodeTuple(req.Tuple)
			DecodeOps(req.Ops)
			for _, ws := range req.Tuples {
				DecodeTuple(ws)
			}
			DecodeResponseVersion(body, version)
		}
	})
}
