package server

import "repro/internal/obs"

// Metric names registered by the server, labeled server=<name>. The wire
// latency histogram family is additionally labeled op=<op> and measures
// decode-to-response-written time, so it includes queueing — the quantity a
// client actually experiences minus network transit.
const (
	metricConnections     = "server.connections"
	metricInflight        = "server.inflight"
	metricRequests        = "server.requests"
	metricOverloaded      = "server.overloaded"
	metricProtocolErrors  = "server.protocol_errors"
	metricBytesRead       = "server.bytes_read"
	metricBytesWritten    = "server.bytes_written"
	metricWireSeconds     = "server.wire_seconds"
	metricCoalescedBatch  = "server.coalesced_batches"
	metricCoalescedWrites = "server.coalesced_writes"
	metricDrains          = "server.drains"
)

type serverMetrics struct {
	connections     *obs.Gauge
	inflight        *obs.Gauge
	requests        *obs.Counter
	overloaded      *obs.Counter
	protocolErrors  *obs.Counter
	bytesRead       *obs.Counter
	bytesWritten    *obs.Counter
	wireLat         map[string]*obs.Histogram
	coalescedBatch  *obs.Counter
	coalescedWrites *obs.Counter
	drains          *obs.Counter
}

// Client-side mirrors of the byte counters, labeled client=<addr>, so a
// process embedding the remote backend can see its own wire footprint
// without asking the server.
const (
	metricClientBytesRead    = "client.bytes_read"
	metricClientBytesWritten = "client.bytes_written"
	metricClientRequests     = "client.requests"
	metricClientRetries      = "client.retries"
)

type clientMetrics struct {
	bytesRead    *obs.Counter
	bytesWritten *obs.Counter
	requests     *obs.Counter
	retries      *obs.Counter
}

func newClientMetrics(r *obs.Registry, addr string) *clientMetrics {
	lbl := obs.L("client", addr)
	return &clientMetrics{
		bytesRead:    r.Counter(metricClientBytesRead, lbl),
		bytesWritten: r.Counter(metricClientBytesWritten, lbl),
		requests:     r.Counter(metricClientRequests, lbl),
		retries:      r.Counter(metricClientRetries, lbl),
	}
}

func newServerMetrics(r *obs.Registry, name string) *serverMetrics {
	lbl := obs.L("server", name)
	m := &serverMetrics{
		connections:     r.Gauge(metricConnections, lbl),
		inflight:        r.Gauge(metricInflight, lbl),
		requests:        r.Counter(metricRequests, lbl),
		overloaded:      r.Counter(metricOverloaded, lbl),
		protocolErrors:  r.Counter(metricProtocolErrors, lbl),
		bytesRead:       r.Counter(metricBytesRead, lbl),
		bytesWritten:    r.Counter(metricBytesWritten, lbl),
		wireLat:         make(map[string]*obs.Histogram),
		coalescedBatch:  r.Counter(metricCoalescedBatch, lbl),
		coalescedWrites: r.Counter(metricCoalescedWrites, lbl),
		drains:          r.Counter(metricDrains, lbl),
	}
	for _, op := range []string{OpPing, OpInsert, OpDelete, OpUpdate, OpFetch,
		OpInsertBatch, OpApplyBatch, OpBegin, OpCommit, OpRollback, OpStats, OpCheckpoint} {
		m.wireLat[op] = r.Histogram(metricWireSeconds, obs.LatencyBuckets, lbl, obs.L("op", op))
	}
	return m
}
