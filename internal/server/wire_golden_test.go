package server

import (
	"encoding/hex"
	"reflect"
	"testing"
)

// The binary v2 encoding is a frozen compatibility contract (like the shard
// hash vectors): these byte-exact vectors pin every frame shape. A failure
// here means the wire format changed — that needs a new protocol version,
// not an updated vector.

var goldenRequests = []struct {
	name string
	req  *Request
	hex  string
}{
	{"hello", &Request{ID: 1, Op: OpHello, Version: 2},
		"010100020000000000"},
	{"ping", &Request{ID: 7, Op: OpPing},
		"020700000000000000"},
	{"insert all value kinds", &Request{ID: 2, Op: OpInsert, Relation: "R", Tuple: []WireValue{
		{T: "n"},
		{T: "s", V: "héllo"},
		{T: "i", V: "-5"},
		{T: "f", V: "7ff8000000000001"}, // NaN with a payload bit
		{T: "f", V: "8000000000000000"}, // -0.0
		{T: "b", V: "1"},
		{T: "b", V: "0"},
	}},
		"030200000152000700010668c3a96c6c6f020903010000000000f87f03000000000000008005040000"},
	{"fetch with deadline", &Request{ID: 3, Op: OpFetch, Relation: "R",
		Key: []WireValue{{T: "s", V: "k1"}}, DeadlineMS: 1500},
		"0603dc0b0001520101026b31000000"},
	{"insert_batch", &Request{ID: 4, Op: OpInsertBatch, Relation: "R", Tuples: [][]WireValue{
		{{T: "s", V: "a"}, {T: "i", V: "1"}},
		{{T: "s", V: "b"}, {T: "i", V: "2"}},
	}},
		"07040000015200000202010161020202010162020400"},
	{"apply_batch", &Request{ID: 5, Op: OpApplyBatch, Ops: []WireOp{
		{Kind: OpInsert, Relation: "R", Tuple: []WireValue{{T: "s", V: "x"}}},
		{Kind: OpDelete, Relation: "R", Key: []WireValue{{T: "s", V: "y"}}},
		{Kind: OpUpdate, Relation: "R", Key: []WireValue{{T: "s", V: "z"}}, Tuple: []WireValue{{T: "i", V: "9"}}},
	}},
		"080500000000000003030152000101017804015201010179000501520101017a010212"},
}

var goldenResponses = []struct {
	name string
	resp *Response
	hex  string
}{
	{"hello ok", &Response{ID: 1, OK: true, Version: 2},
		"0121000002"},
	{"bare ok", &Response{ID: 2, OK: true},
		"02010000"},
	{"fetch hit", &Response{ID: 3, OK: true, Found: true,
		Tuple: []WireValue{{T: "s", V: "k1"}, {T: "i", V: "42"}}},
		"030700000201026b310254"},
	{"protocol error", &Response{ID: 4, Code: CodeProtocol, Error: "bad frame"},
		"04000870726f746f636f6c09626164206672616d65"},
	{"constraint violation", &Response{ID: 5, Code: CodeConstraint, Error: "null key",
		Violation: &WireViolation{Kind: 2, Relation: "R", Attr: "R.K", Constraint: "NNK", Op: "insert"}},
		"050814636f6e73747261696e745f76696f6c6174696f6e086e756c6c206b657902015203522e4b034e4e4b06696e73657274"},
	{"stats", &Response{ID: 6, OK: true, Stats: &WireStats{
		Inserts: 3, Deletes: 1, Updates: 2, Lookups: 100, DeclarativeChecks: 7,
		TriggerFirings: 0, IndexLookups: 100, TuplesScanned: 250, VersionLSN: 12}},
		"0611000003010264070064fa010c"},
}

func TestGoldenRequestVectors(t *testing.T) {
	for _, g := range goldenRequests {
		t.Run(g.name, func(t *testing.T) {
			want, err := hex.DecodeString(g.hex)
			if err != nil {
				t.Fatal(err)
			}
			got, err := appendRequestBinary(nil, g.req)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("encoding drifted:\n got  %x\n want %x", got, want)
			}
			dec, err := decodeRequestBinary(want)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dec, g.req) {
				t.Fatalf("decode mismatch:\n got  %+v\n want %+v", dec, g.req)
			}
		})
	}
}

func TestGoldenResponseVectors(t *testing.T) {
	for _, g := range goldenResponses {
		t.Run(g.name, func(t *testing.T) {
			want, err := hex.DecodeString(g.hex)
			if err != nil {
				t.Fatal(err)
			}
			got, err := appendResponseBinary(nil, g.resp)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("encoding drifted:\n got  %x\n want %x", got, want)
			}
			dec, err := decodeResponseBinary(want)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dec, g.resp) {
				t.Fatalf("decode mismatch:\n got  %+v\n want %+v", dec, g.resp)
			}
		})
	}
}
