package server

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/relation"
)

// FuzzBinaryRoundTrip builds a request from arbitrary primitive values —
// via EncodeValue, so the payload strings are canonical — and requires
// encode→decode to be the identity, bit-exactly for floats (NaN payloads,
// signed zero) and byte-exactly for strings of any size.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add(uint64(1), "rel", "str", int64(-5), math.NaN(), true, int64(0))
	f.Add(uint64(0), "", "", int64(math.MinInt64), math.Copysign(0, -1), false, int64(1))
	f.Add(uint64(math.MaxUint64), "R", strings.Repeat("x", 1<<16), int64(math.MaxInt64), math.Inf(-1), true, int64(250))
	f.Fuzz(func(t *testing.T, id uint64, rel, s string, i int64, fv float64, b bool, deadline int64) {
		if deadline < 0 {
			deadline = -deadline
		}
		if deadline < 0 { // MinInt64 negates to itself
			deadline = 0
		}
		tuple := []WireValue{
			EncodeValue(relation.Null()),
			EncodeValue(relation.NewString(s)),
			EncodeValue(relation.NewInt(i)),
			EncodeValue(relation.NewFloat(fv)),
			EncodeValue(relation.NewBool(b)),
		}
		req := &Request{
			ID: id, Op: OpUpdate, Relation: rel, DeadlineMS: deadline,
			Key:   []WireValue{EncodeValue(relation.NewString(s))},
			Tuple: tuple,
		}
		body, err := appendRequestBinary(nil, req)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := decodeRequestBinary(body)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got, req)
		}
		// Float bits must survive exactly, not just as equal values.
		v, err := DecodeValue(got.Tuple[3])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(v.AsFloat()) != math.Float64bits(fv) {
			t.Fatalf("float bits %016x, want %016x", math.Float64bits(v.AsFloat()), math.Float64bits(fv))
		}

		resp := &Response{
			ID: id, OK: b, Found: true, Tuple: tuple,
			Code: Code(rel), Error: s,
		}
		rbody, err := appendResponseBinary(nil, resp)
		if err != nil {
			t.Fatalf("encode response: %v", err)
		}
		rgot, err := decodeResponseBinary(rbody)
		if err != nil {
			t.Fatalf("decode response: %v", err)
		}
		if !reflect.DeepEqual(rgot, resp) {
			t.Fatalf("response round trip mismatch:\n got  %+v\n want %+v", rgot, resp)
		}
	})
}

// TestBinaryRejectsNonCanonicalValues: the encoder only accepts the
// canonical payload strings EncodeValue produces; anything else must be an
// encode error, not silent corruption.
func TestBinaryRejectsNonCanonicalValues(t *testing.T) {
	bad := []WireValue{
		{T: "i", V: "not-a-number"},
		{T: "f", V: "zz"},
		{T: "b", V: "yes"},
		{T: "q", V: ""},
	}
	for _, w := range bad {
		if _, err := appendValue(nil, w); err == nil {
			t.Errorf("appendValue(%+v) accepted a non-canonical payload", w)
		}
	}
}

// singleWriteRecorder counts Write calls: the pooled frame path must issue
// exactly one per frame (prefix and body together), for both codecs.
type singleWriteRecorder struct {
	writes int
	buf    bytes.Buffer
}

func (r *singleWriteRecorder) Write(p []byte) (int, error) {
	r.writes++
	return r.buf.Write(p)
}

func TestWriteFrameSingleWrite(t *testing.T) {
	req := &Request{ID: 9, Op: OpInsert, Relation: "R",
		Tuple: []WireValue{{T: "s", V: "v"}}}
	for _, version := range []int{ProtoVersion, ProtoVersionBinary} {
		var rec singleWriteRecorder
		if _, err := WriteFrameVersion(&rec, version, req); err != nil {
			t.Fatal(err)
		}
		if rec.writes != 1 {
			t.Errorf("v%d frame took %d writes, want 1", version, rec.writes)
		}
		body, err := ReadFrame(&rec.buf, DefaultMaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRequestVersion(body, version)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Errorf("v%d frame round trip mismatch: %+v", version, got)
		}
	}
}

// TestEncodeAllocsSteadyState pins the ISSUE's allocs/frame budget: once the
// pool is warm, encoding a typical frame must cost at most 2 allocations for
// the binary codec. (The JSON path allocates inside encoding/json, so only
// the binary path carries the budget.)
func TestEncodeAllocsSteadyState(t *testing.T) {
	resp := &Response{ID: 3, OK: true, Found: true,
		Tuple: []WireValue{{T: "s", V: "k1"}, {T: "i", V: "42"}, {T: "f", V: "4045000000000000"}}}
	var sink bytes.Buffer
	// Warm the pool.
	for i := 0; i < 16; i++ {
		sink.Reset()
		if _, err := WriteFrameVersion(&sink, ProtoVersionBinary, resp); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		sink.Reset()
		if _, err := WriteFrameVersion(&sink, ProtoVersionBinary, resp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("binary encode path allocates %.1f/frame, budget is 2", allocs)
	}
}

// TestBinaryTruncationFailsClosed walks every prefix of a valid body: each
// must produce a decode error, never a panic or a silently short request.
func TestBinaryTruncationFailsClosed(t *testing.T) {
	req := &Request{ID: 5, Op: OpApplyBatch, Ops: []WireOp{
		{Kind: OpUpdate, Relation: "R",
			Key:   []WireValue{{T: "s", V: "k"}},
			Tuple: []WireValue{{T: "i", V: "7"}, {T: "f", V: "3ff0000000000000"}}},
	}}
	body, err := appendRequestBinary(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(body); n++ {
		if _, err := decodeRequestBinary(body[:n]); err == nil {
			t.Fatalf("decode accepted a %d/%d-byte truncation", n, len(body))
		}
	}
	// And one past the end: trailing bytes are a protocol violation too.
	if _, err := decodeRequestBinary(append(append([]byte{}, body...), 0)); err == nil {
		t.Fatal("decode accepted a trailing byte")
	}
}
