package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"testing"

	"repro/internal/engine"
	"repro/internal/relation"
)

// errProtocolVersion reproduces the pre-negotiation server's exact-match
// hello rejection, including the "version" wording the fallback keys on.
func errProtocolVersion(offered int) error {
	return fmt.Errorf("%w: protocol version %d not supported (server speaks %d)", ErrProtocol, offered, ProtoVersion)
}

// negotiate dials a pooled client offering maxWire against addr and checks
// the negotiated version and a full round trip over the agreed codec.
func negotiate(t *testing.T, addr string, maxWire, want int) {
	t.Helper()
	c, err := Dial(addr, ClientOptions{MaxWire: maxWire, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.WireVersion(); got != want {
		t.Fatalf("negotiated version %d, want %d", got, want)
	}
	// Exercise the agreed codec past the handshake: a mutation, a hit, and a
	// miss must all round-trip.
	if err := c.InsertCtx(nil, "R", row("neg", "v")); err != nil {
		t.Fatal(err)
	}
	tup, found, err := c.FetchCtx(nil, "R", key("neg"))
	if err != nil || !found {
		t.Fatalf("fetch: found=%v err=%v", found, err)
	}
	if tup[1].AsString() != "v" {
		t.Fatalf("fetched %v", tup)
	}
	if _, found, err := c.FetchCtx(nil, "R", key("absent")); err != nil || found {
		t.Fatalf("miss: found=%v err=%v", found, err)
	}
}

// TestVersionNegotiationMatrix covers every client/server pairing: both
// sides v2 speak binary; either side pinned to v1 lands the connection on
// JSON transparently.
func TestVersionNegotiationMatrix(t *testing.T) {
	t.Run("v2 client, v2 server", func(t *testing.T) {
		_, addr := startServer(t, Config{})
		negotiate(t, addr, MaxProtoVersion, ProtoVersionBinary)
	})
	t.Run("v2 client, v1-only server", func(t *testing.T) {
		_, addr := startServer(t, Config{MaxWire: ProtoVersion})
		negotiate(t, addr, MaxProtoVersion, ProtoVersion)
	})
	t.Run("v1 client, v2 server", func(t *testing.T) {
		_, addr := startServer(t, Config{})
		negotiate(t, addr, ProtoVersion, ProtoVersion)
	})
	t.Run("v1 client, v1-only server", func(t *testing.T) {
		_, addr := startServer(t, Config{MaxWire: ProtoVersion})
		negotiate(t, addr, ProtoVersion, ProtoVersion)
	})
}

// TestGarbageVersionFailsOnlyThatConnection sends a hello offering version 0:
// the server must answer with a protocol error and close that connection,
// while a well-behaved connection negotiated before it keeps working.
func TestGarbageVersionFailsOnlyThatConnection(t *testing.T) {
	_, addr := startServer(t, Config{})

	good, err := Dial(addr, ClientOptions{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()

	bad := dialRaw(t, addr)
	bad.send(&Request{ID: 1, Op: OpHello, Version: 0})
	resp, err := bad.recv()
	if err != nil {
		t.Fatalf("expected an error response before close, got %v", err)
	}
	if resp.OK || resp.Code != CodeProtocol {
		t.Fatalf("garbage version answered %+v, want code %q", resp, CodeProtocol)
	}
	if !errors.Is(responseError(resp), ErrProtocol) {
		t.Fatalf("response %+v does not map to ErrProtocol", resp)
	}
	if _, err := bad.recv(); err == nil {
		t.Fatal("connection survived a garbage hello version")
	}

	// The abuse must not have poisoned the healthy connection.
	if err := good.PingCtx(nil); err != nil {
		t.Fatalf("healthy connection broken after another conn's bad hello: %v", err)
	}
}

// TestClientFallsBackToV1AgainstLegacyServer runs a fake pre-negotiation
// server that rejects any hello above version 1 outright (the old exact-match
// handshake) and then serves v1 pings. A v2 client must transparently redial
// offering v1.
func TestClientFallsBackToV1AgainstLegacyServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				for {
					body, err := ReadFrame(nc, DefaultMaxFrame)
					if err != nil {
						return
					}
					req, err := DecodeRequest(body)
					if err != nil {
						return
					}
					switch {
					case req.Op == OpHello && req.Version != ProtoVersion:
						// The legacy exact-match rejection, message included.
						WriteFrame(nc, errorResponse(req.ID, errProtocolVersion(req.Version)))
						return
					case req.Op == OpHello:
						WriteFrame(nc, &Response{ID: req.ID, OK: true, Version: ProtoVersion})
					case req.Op == OpPing:
						WriteFrame(nc, &Response{ID: req.ID, OK: true})
					default:
						WriteFrame(nc, errorResponse(req.ID, io.ErrUnexpectedEOF))
						return
					}
				}
			}(nc)
		}
	}()

	c, err := Dial(ln.Addr().String(), ClientOptions{MaxWire: MaxProtoVersion, PoolSize: 1})
	if err != nil {
		t.Fatalf("v2 client failed against legacy v1 server: %v", err)
	}
	defer c.Close()
	if got := c.WireVersion(); got != ProtoVersion {
		t.Fatalf("fell back to version %d, want %d", got, ProtoVersion)
	}
	if err := c.PingCtx(nil); err != nil {
		t.Fatalf("ping after fallback: %v", err)
	}
}

// TestErrorTaxonomyIdenticalAcrossCodecs issues the same failing operations
// over a binary and a JSON connection: the Code, the mapped sentinel, and
// the typed constraint violation must match exactly.
func TestErrorTaxonomyIdenticalAcrossCodecs(t *testing.T) {
	_, addr := startServer(t, Config{})

	type outcome struct {
		code      Code
		violation *engine.ConstraintViolation
	}
	run := func(t *testing.T, maxWire int) map[string]outcome {
		t.Helper()
		c, err := Dial(addr, ClientOptions{MaxWire: maxWire, PoolSize: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		out := make(map[string]outcome)
		record := func(name string, err error) {
			o := outcome{code: CodeOf(err)}
			var cv *engine.ConstraintViolation
			if errors.As(err, &cv) {
				o.violation = cv
			}
			out[name] = o
		}
		record("unknown relation", c.InsertCtx(nil, "NOPE", row("a", "b")))
		record("arity mismatch", c.InsertCtx(nil, "R", relation.Tuple{relation.NewString("only")}))
		record("duplicate key", func() error {
			if err := c.InsertCtx(nil, "R", row("dup-"+t.Name(), "x")); err != nil {
				return err
			}
			return c.InsertCtx(nil, "R", row("dup-"+t.Name(), "x"))
		}())
		record("commit without begin", c.CommitCtx(nil))
		record("checkpoint non-durable", c.CheckpointCtx(nil))
		return out
	}

	binOut := run(t, MaxProtoVersion)
	jsonOut := run(t, ProtoVersion)
	for name, b := range binOut {
		j, ok := jsonOut[name]
		if !ok {
			t.Fatalf("case %q missing from JSON run", name)
		}
		if b.code != j.code {
			t.Errorf("%s: binary code %q, json code %q", name, b.code, j.code)
		}
		if (b.violation == nil) != (j.violation == nil) {
			t.Errorf("%s: violation presence differs (binary %v, json %v)", name, b.violation, j.violation)
		} else if b.violation != nil && *b.violation != *j.violation {
			t.Errorf("%s: violation differs:\n  binary %+v\n  json   %+v", name, *b.violation, *j.violation)
		}
	}
}
