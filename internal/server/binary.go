package server

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// The protocol v2 binary codec. A v2 frame keeps the v1 framing (4-byte
// big-endian length prefix, bounded by MaxFrame) but replaces the JSON body
// with a compact binary encoding: one opcode byte, unsigned varints for IDs,
// lengths, and counts, signed varints for integer values, and raw
// little-endian IEEE 754 bits for floats — so NaN payloads and signed zero
// survive bit-exactly without the v1 hex-string detour. Strings travel as
// length-prefixed raw bytes.
//
// The encoding is a frozen compatibility contract: wire_golden_test.go pins
// byte-exact vectors for every frame shape, and any change that breaks them
// needs a new protocol version, not an edit. Both request and response
// bodies are strict — trailing bytes after the last field fail the decode
// (and therefore the connection) closed.
//
// Field order is fixed and every field is always present (absent fields
// encode as a zero count or empty string, one byte each), which keeps the
// decoder branch-free and the golden vectors total:
//
//	Request  = opcode u8 | id uvarint | deadline_ms uvarint | version uvarint
//	         | relation string | key tuple | tuple tuple
//	         | ntuples uvarint tuple... | nops uvarint op...
//	op       = kind u8 (insert/delete/update opcode) | relation string
//	         | key tuple | tuple tuple
//	Response = id uvarint | flags u8 | code string | error string
//	         | [version uvarint] | [violation] | [tuple] | [stats]
//	violation= kind u8 | relation string | attr string | constraint string | op string
//	stats    = 9 uvarints (inserts deletes updates lookups declarative_checks
//	           trigger_firings index_lookups tuples_scanned version_lsn)
//	tuple    = count uvarint | value...          (count 0 = absent/nil)
//	string   = len uvarint | raw bytes
//	value    = tag u8 | payload (tag-dependent, see binVal*)

// Binary opcodes, one per protocol operation. Frozen.
const (
	binOpHello       = 0x01
	binOpPing        = 0x02
	binOpInsert      = 0x03
	binOpDelete      = 0x04
	binOpUpdate      = 0x05
	binOpFetch       = 0x06
	binOpInsertBatch = 0x07
	binOpApplyBatch  = 0x08
	binOpBegin       = 0x09
	binOpCommit      = 0x0a
	binOpRollback    = 0x0b
	binOpStats       = 0x0c
	binOpCheckpoint  = 0x0d
	// Replication opcodes, appended in v2 without touching the frozen ones.
	// Their requests carry two extra trailing fields (after_lsn uvarint,
	// max_records uvarint) and their responses may carry the repl section
	// (binFlagRepl); both are invisible to the pre-replication frame shapes,
	// so the golden vectors stand.
	binOpReplSubscribe = 0x0e
	binOpReplFetch     = 0x0f
	binOpReplHeartbeat = 0x10
)

// Binary value tags. Booleans fold their value into the tag. Frozen.
const (
	binValNull   = 0x00
	binValString = 0x01 // uvarint length + raw bytes
	binValInt    = 0x02 // signed (zigzag) varint
	binValFloat  = 0x03 // 8 bytes, little-endian IEEE 754 bits
	binValFalse  = 0x04
	binValTrue   = 0x05
)

// Response flag bits. Frozen.
const (
	binFlagOK        = 1 << 0
	binFlagFound     = 1 << 1
	binFlagTuple     = 1 << 2
	binFlagViolation = 1 << 3
	binFlagStats     = 1 << 4
	binFlagVersion   = 1 << 5
	binFlagRepl      = 1 << 6
)

func opToOpcode(op string) (byte, bool) {
	switch op {
	case OpHello:
		return binOpHello, true
	case OpPing:
		return binOpPing, true
	case OpInsert:
		return binOpInsert, true
	case OpDelete:
		return binOpDelete, true
	case OpUpdate:
		return binOpUpdate, true
	case OpFetch:
		return binOpFetch, true
	case OpInsertBatch:
		return binOpInsertBatch, true
	case OpApplyBatch:
		return binOpApplyBatch, true
	case OpBegin:
		return binOpBegin, true
	case OpCommit:
		return binOpCommit, true
	case OpRollback:
		return binOpRollback, true
	case OpStats:
		return binOpStats, true
	case OpCheckpoint:
		return binOpCheckpoint, true
	case OpReplSubscribe:
		return binOpReplSubscribe, true
	case OpReplFetch:
		return binOpReplFetch, true
	case OpReplHeartbeat:
		return binOpReplHeartbeat, true
	}
	return 0, false
}

func opcodeToOp(b byte) (string, bool) {
	switch b {
	case binOpHello:
		return OpHello, true
	case binOpPing:
		return OpPing, true
	case binOpInsert:
		return OpInsert, true
	case binOpDelete:
		return OpDelete, true
	case binOpUpdate:
		return OpUpdate, true
	case binOpFetch:
		return OpFetch, true
	case binOpInsertBatch:
		return OpInsertBatch, true
	case binOpApplyBatch:
		return OpApplyBatch, true
	case binOpBegin:
		return OpBegin, true
	case binOpCommit:
		return OpCommit, true
	case binOpRollback:
		return OpRollback, true
	case binOpStats:
		return OpStats, true
	case binOpCheckpoint:
		return OpCheckpoint, true
	case binOpReplSubscribe:
		return OpReplSubscribe, true
	case binOpReplFetch:
		return OpReplFetch, true
	case binOpReplHeartbeat:
		return OpReplHeartbeat, true
	}
	return "", false
}

// --- encoding (append into the caller's pooled buffer, no allocation) ---

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendValue encodes one wire value. The payload string must be in the
// canonical form EncodeValue produces; anything else (bad int digits, bad
// float hex, bad bool) is an encode error, mirroring what DecodeValue would
// reject on the JSON path.
func appendValue(dst []byte, w WireValue) ([]byte, error) {
	switch w.T {
	case "n":
		return append(dst, binValNull), nil
	case "s":
		dst = append(dst, binValString)
		return appendString(dst, w.V), nil
	case "i":
		n, err := strconv.ParseInt(w.V, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad int value %q", w.V)
		}
		dst = append(dst, binValInt)
		return binary.AppendVarint(dst, n), nil
	case "f":
		bits, err := strconv.ParseUint(w.V, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float value %q", w.V)
		}
		dst = append(dst, binValFloat)
		return binary.LittleEndian.AppendUint64(dst, bits), nil
	case "b":
		switch w.V {
		case "1":
			return append(dst, binValTrue), nil
		case "0":
			return append(dst, binValFalse), nil
		}
		return nil, fmt.Errorf("bad bool value %q", w.V)
	}
	return nil, fmt.Errorf("unknown value kind %q", w.T)
}

func appendWireTuple(dst []byte, t []WireValue) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	var err error
	for _, w := range t {
		if dst, err = appendValue(dst, w); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// appendRequestBinary encodes one request as a v2 body.
func appendRequestBinary(dst []byte, req *Request) ([]byte, error) {
	oc, ok := opToOpcode(req.Op)
	if !ok {
		return nil, fmt.Errorf("unknown op %q", req.Op)
	}
	dst = append(dst, oc)
	dst = binary.AppendUvarint(dst, req.ID)
	dst = binary.AppendUvarint(dst, uint64(req.DeadlineMS))
	dst = binary.AppendUvarint(dst, uint64(req.Version))
	dst = appendString(dst, req.Relation)
	var err error
	if dst, err = appendWireTuple(dst, req.Key); err != nil {
		return nil, err
	}
	if dst, err = appendWireTuple(dst, req.Tuple); err != nil {
		return nil, err
	}
	dst = binary.AppendUvarint(dst, uint64(len(req.Tuples)))
	for _, t := range req.Tuples {
		if dst, err = appendWireTuple(dst, t); err != nil {
			return nil, err
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(req.Ops)))
	for _, op := range req.Ops {
		kc, ok := opToOpcode(op.Kind)
		if !ok || (kc != binOpInsert && kc != binOpDelete && kc != binOpUpdate) {
			return nil, fmt.Errorf("unknown batch kind %q", op.Kind)
		}
		dst = append(dst, kc)
		dst = appendString(dst, op.Relation)
		if dst, err = appendWireTuple(dst, op.Key); err != nil {
			return nil, err
		}
		if dst, err = appendWireTuple(dst, op.Tuple); err != nil {
			return nil, err
		}
	}
	if replOp(req.Op) {
		dst = binary.AppendUvarint(dst, req.AfterLSN)
		dst = binary.AppendUvarint(dst, uint64(req.MaxRecords))
	}
	return dst, nil
}

// appendResponseBinary encodes one response as a v2 body.
func appendResponseBinary(dst []byte, resp *Response) ([]byte, error) {
	dst = binary.AppendUvarint(dst, resp.ID)
	var flags byte
	if resp.OK {
		flags |= binFlagOK
	}
	if resp.Found {
		flags |= binFlagFound
	}
	if len(resp.Tuple) > 0 {
		flags |= binFlagTuple
	}
	if resp.Violation != nil {
		flags |= binFlagViolation
	}
	if resp.Stats != nil {
		flags |= binFlagStats
	}
	if resp.Version != 0 {
		flags |= binFlagVersion
	}
	if resp.Repl != nil {
		flags |= binFlagRepl
	}
	dst = append(dst, flags)
	dst = appendString(dst, string(resp.Code))
	dst = appendString(dst, resp.Error)
	if flags&binFlagVersion != 0 {
		dst = binary.AppendUvarint(dst, uint64(resp.Version))
	}
	if v := resp.Violation; v != nil {
		dst = append(dst, v.Kind)
		dst = appendString(dst, v.Relation)
		dst = appendString(dst, v.Attr)
		dst = appendString(dst, v.Constraint)
		dst = appendString(dst, v.Op)
	}
	if flags&binFlagTuple != 0 {
		var err error
		if dst, err = appendWireTuple(dst, resp.Tuple); err != nil {
			return nil, err
		}
	}
	if s := resp.Stats; s != nil {
		for _, n := range []int{s.Inserts, s.Deletes, s.Updates, s.Lookups,
			s.DeclarativeChecks, s.TriggerFirings, s.IndexLookups, s.TuplesScanned} {
			dst = binary.AppendUvarint(dst, uint64(n))
		}
		dst = binary.AppendUvarint(dst, s.VersionLSN)
	}
	if rp := resp.Repl; rp != nil {
		dst = binary.AppendUvarint(dst, rp.CommitLSN)
		dst = binary.AppendUvarint(dst, rp.SnapshotLSN)
		dst = binary.AppendUvarint(dst, uint64(len(rp.Snapshot)))
		dst = append(dst, rp.Snapshot...)
		dst = binary.AppendUvarint(dst, uint64(len(rp.Records)))
		for _, rec := range rp.Records {
			dst = binary.AppendUvarint(dst, rec.LSN)
			dst = binary.AppendUvarint(dst, uint64(len(rec.Payload)))
			dst = append(dst, rec.Payload...)
		}
	}
	return dst, nil
}

// --- decoding (strict: bounds-checked, no trailing bytes) ---

// binReader walks one v2 body. Every length and count is validated against
// the remaining bytes before any allocation sized from it, so a hostile
// frame can announce, at most, what its own (MaxFrame-bounded) body holds.
type binReader struct {
	b   []byte
	off int
}

func (r *binReader) remaining() int { return len(r.b) - r.off }

func (r *binReader) u8() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("truncated body at byte %d", r.off)
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad uvarint at byte %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *binReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad varint at byte %d", r.off)
	}
	r.off += n
	return v, nil
}

// count reads a collection count, rejecting any that could not fit in the
// remaining bytes even at one byte per element.
func (r *binReader) count() (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(r.remaining()) {
		return 0, fmt.Errorf("count %d exceeds remaining %d bytes", n, r.remaining())
	}
	return int(n), nil
}

func (r *binReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", fmt.Errorf("string length %d exceeds remaining %d bytes", n, r.remaining())
	}
	s := string(r.b[r.off : r.off+int(n)]) // copy: the body buffer is pooled
	r.off += int(n)
	return s, nil
}

// bytes reads a length-prefixed byte blob (copied: the body buffer is
// pooled). A zero length returns nil, matching v1 omitempty semantics.
func (r *binReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining()) {
		return nil, fmt.Errorf("blob length %d exceeds remaining %d bytes", n, r.remaining())
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:])
	r.off += int(n)
	return out, nil
}

func (r *binReader) value() (WireValue, error) {
	tag, err := r.u8()
	if err != nil {
		return WireValue{}, err
	}
	switch tag {
	case binValNull:
		return WireValue{T: "n"}, nil
	case binValString:
		s, err := r.str()
		if err != nil {
			return WireValue{}, err
		}
		return WireValue{T: "s", V: s}, nil
	case binValInt:
		n, err := r.varint()
		if err != nil {
			return WireValue{}, err
		}
		return WireValue{T: "i", V: strconv.FormatInt(n, 10)}, nil
	case binValFloat:
		if r.remaining() < 8 {
			return WireValue{}, fmt.Errorf("truncated float at byte %d", r.off)
		}
		bits := binary.LittleEndian.Uint64(r.b[r.off:])
		r.off += 8
		return WireValue{T: "f", V: strconv.FormatUint(bits, 16)}, nil
	case binValFalse:
		return WireValue{T: "b", V: "0"}, nil
	case binValTrue:
		return WireValue{T: "b", V: "1"}, nil
	}
	return WireValue{}, fmt.Errorf("unknown value tag 0x%02x", tag)
}

func (r *binReader) tuple() ([]WireValue, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil // absent tuple, matching v1 omitempty semantics
	}
	out := make([]WireValue, n)
	for i := range out {
		if out[i], err = r.value(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// decodeRequestBinary parses one v2 request body.
func decodeRequestBinary(body []byte) (*Request, error) {
	r := &binReader{b: body}
	oc, err := r.u8()
	if err != nil {
		return nil, err
	}
	op, ok := opcodeToOp(oc)
	if !ok {
		return nil, fmt.Errorf("unknown opcode 0x%02x", oc)
	}
	req := &Request{Op: op}
	if req.ID, err = r.uvarint(); err != nil {
		return nil, err
	}
	deadline, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if deadline > math.MaxInt64 {
		return nil, fmt.Errorf("deadline %d overflows", deadline)
	}
	req.DeadlineMS = int64(deadline)
	version, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if version > math.MaxInt32 {
		return nil, fmt.Errorf("version %d overflows", version)
	}
	req.Version = int(version)
	if req.Relation, err = r.str(); err != nil {
		return nil, err
	}
	if req.Key, err = r.tuple(); err != nil {
		return nil, err
	}
	if req.Tuple, err = r.tuple(); err != nil {
		return nil, err
	}
	ntuples, err := r.count()
	if err != nil {
		return nil, err
	}
	if ntuples > 0 {
		req.Tuples = make([][]WireValue, ntuples)
		for i := range req.Tuples {
			if req.Tuples[i], err = r.tuple(); err != nil {
				return nil, err
			}
		}
	}
	nops, err := r.count()
	if err != nil {
		return nil, err
	}
	if nops > 0 {
		req.Ops = make([]WireOp, nops)
		for i := range req.Ops {
			kc, err := r.u8()
			if err != nil {
				return nil, err
			}
			kind, ok := opcodeToOp(kc)
			if !ok || (kc != binOpInsert && kc != binOpDelete && kc != binOpUpdate) {
				return nil, fmt.Errorf("unknown batch kind opcode 0x%02x", kc)
			}
			req.Ops[i].Kind = kind
			if req.Ops[i].Relation, err = r.str(); err != nil {
				return nil, err
			}
			if req.Ops[i].Key, err = r.tuple(); err != nil {
				return nil, err
			}
			if req.Ops[i].Tuple, err = r.tuple(); err != nil {
				return nil, err
			}
		}
	}
	if replOp(req.Op) {
		if req.AfterLSN, err = r.uvarint(); err != nil {
			return nil, err
		}
		maxRecords, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if maxRecords > math.MaxInt32 {
			return nil, fmt.Errorf("max_records %d overflows", maxRecords)
		}
		req.MaxRecords = int(maxRecords)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%d trailing bytes after request", r.remaining())
	}
	return req, nil
}

// decodeResponseBinary parses one v2 response body.
func decodeResponseBinary(body []byte) (*Response, error) {
	r := &binReader{b: body}
	resp := &Response{}
	var err error
	if resp.ID, err = r.uvarint(); err != nil {
		return nil, err
	}
	flags, err := r.u8()
	if err != nil {
		return nil, err
	}
	resp.OK = flags&binFlagOK != 0
	resp.Found = flags&binFlagFound != 0
	code, err := r.str()
	if err != nil {
		return nil, err
	}
	resp.Code = Code(code)
	if resp.Error, err = r.str(); err != nil {
		return nil, err
	}
	if flags&binFlagVersion != 0 {
		version, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if version > math.MaxInt32 {
			return nil, fmt.Errorf("version %d overflows", version)
		}
		resp.Version = int(version)
	}
	if flags&binFlagViolation != 0 {
		v := &WireViolation{}
		if v.Kind, err = r.u8(); err != nil {
			return nil, err
		}
		if v.Relation, err = r.str(); err != nil {
			return nil, err
		}
		if v.Attr, err = r.str(); err != nil {
			return nil, err
		}
		if v.Constraint, err = r.str(); err != nil {
			return nil, err
		}
		if v.Op, err = r.str(); err != nil {
			return nil, err
		}
		resp.Violation = v
	}
	if flags&binFlagTuple != 0 {
		if resp.Tuple, err = r.tuple(); err != nil {
			return nil, err
		}
	}
	if flags&binFlagStats != 0 {
		var ns [8]uint64
		for i := range ns {
			if ns[i], err = r.uvarint(); err != nil {
				return nil, err
			}
			if ns[i] > math.MaxInt64 {
				return nil, fmt.Errorf("stat counter %d overflows", ns[i])
			}
		}
		lsn, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		resp.Stats = &WireStats{
			Inserts:           int(ns[0]),
			Deletes:           int(ns[1]),
			Updates:           int(ns[2]),
			Lookups:           int(ns[3]),
			DeclarativeChecks: int(ns[4]),
			TriggerFirings:    int(ns[5]),
			IndexLookups:      int(ns[6]),
			TuplesScanned:     int(ns[7]),
			VersionLSN:        lsn,
		}
	}
	if flags&binFlagRepl != 0 {
		rp := &WireRepl{}
		if rp.CommitLSN, err = r.uvarint(); err != nil {
			return nil, err
		}
		if rp.SnapshotLSN, err = r.uvarint(); err != nil {
			return nil, err
		}
		if rp.Snapshot, err = r.bytes(); err != nil {
			return nil, err
		}
		nrecs, err := r.count()
		if err != nil {
			return nil, err
		}
		if nrecs > 0 {
			rp.Records = make([]WireRecord, nrecs)
			for i := range rp.Records {
				if rp.Records[i].LSN, err = r.uvarint(); err != nil {
					return nil, err
				}
				if rp.Records[i].Payload, err = r.bytes(); err != nil {
					return nil, err
				}
			}
		}
		resp.Repl = rp
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%d trailing bytes after response", r.remaining())
	}
	return resp, nil
}
