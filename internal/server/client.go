package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/relation"
)

// ClientOptions tunes a Client. The zero value picks sensible defaults.
type ClientOptions struct {
	// PoolSize bounds the open connections (default 4). Checkouts beyond
	// the pool block until a connection frees up.
	PoolSize int
	// DialTimeout bounds one dial + handshake (default 5s).
	DialTimeout time.Duration
	// RequestTimeout is the per-request deadline applied when the caller's
	// context has none (default 30s; negative disables).
	RequestTimeout time.Duration
	// Retries is how many times an idempotent request is retried after a
	// retryable failure — connection errors and CodeOverloaded (default 2).
	// Mutating requests are NEVER retried: a connection that dies after the
	// request was sent leaves the outcome unknown, and retrying could
	// double-apply.
	Retries int
	// RetryBackoff is the base of the jittered exponential backoff between
	// retries (default 5ms; attempt n sleeps base·2ⁿ scaled by a random
	// factor in [0.5, 1.5)).
	RetryBackoff time.Duration
	// Seed seeds the backoff jitter; 0 derives one from the clock.
	Seed int64
	// MaxWire is the highest protocol version this client offers in the
	// hello (0 or out of range means MaxProtoVersion). The server answers
	// min(offer, its own max); set 1 to force the JSON codec.
	MaxWire int
	// Registry receives the client-side byte/request counters, labeled
	// client=<addr>. Nil means no metrics are recorded.
	Registry *obs.Registry
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.PoolSize <= 0 {
		o.PoolSize = 4
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 5 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
	if o.MaxWire <= 0 || o.MaxWire > MaxProtoVersion {
		o.MaxWire = MaxProtoVersion
	}
	return o
}

// Client is a pooled connection to a relmerged server. It is safe for
// concurrent use; up to PoolSize requests proceed in parallel.
type Client struct {
	addr string
	opt  ClientOptions
	m    *clientMetrics

	slots chan struct{} // counting semaphore: open-connection budget

	wireVer atomic.Int32 // last negotiated protocol version

	mu     sync.Mutex
	idle   []*clientConn
	rng    *rand.Rand
	closed bool
}

type clientConn struct {
	nc     net.Conn
	br     *bufio.Reader
	ver    int    // negotiated protocol version for this connection
	rbuf   []byte // reusable frame read buffer
	nextID uint64
}

// Dial connects to a relmerged server (verifying the protocol handshake on
// the first connection eagerly, so a wrong address or version fails fast).
func Dial(addr string, opt ClientOptions) (*Client, error) {
	opt = opt.withDefaults()
	c := &Client{
		addr:  addr,
		opt:   opt,
		m:     newClientMetrics(opt.Registry, addr),
		slots: make(chan struct{}, opt.PoolSize),
		rng:   rand.New(rand.NewSource(opt.Seed)),
	}
	for i := 0; i < opt.PoolSize; i++ {
		c.slots <- struct{}{}
	}
	// Eager probe: dial and handshake one connection, then park it idle.
	<-c.slots
	cc, err := c.dial()
	if err != nil {
		c.slots <- struct{}{}
		return nil, err
	}
	c.release(cc, nil)
	return c, nil
}

// Close closes every pooled connection. In-flight requests fail as their
// connections die; subsequent requests fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, cc := range idle {
		cc.nc.Close()
	}
	return nil
}

// dial opens one connection, negotiating the wire version: the hello offers
// opt.MaxWire and the server answers min(offer, its max). A pre-negotiation
// server rejects any offer above its own version outright; when that happens
// while we offered >1, redial once offering plain v1 so old servers keep
// working transparently.
func (c *Client) dial() (*clientConn, error) {
	cc, err := c.dialVersion(c.opt.MaxWire)
	if err != nil && c.opt.MaxWire > ProtoVersion && isVersionReject(err) {
		cc, err = c.dialVersion(ProtoVersion)
	}
	if err != nil {
		return nil, err
	}
	c.wireVer.Store(int32(cc.ver))
	return cc, nil
}

// isVersionReject reports whether err is a server-side hello rejection of
// the offered version (as opposed to a transport failure or a wrong-service
// response), the signal for the JSON fallback redial.
func isVersionReject(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == CodeProtocol && strings.Contains(re.Msg, "version")
}

func (c *Client) dialVersion(offer int) (*clientConn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.opt.DialTimeout)
	if err != nil {
		return nil, err
	}
	cc := &clientConn{nc: nc, br: bufio.NewReaderSize(nc, 16<<10), ver: ProtoVersion}
	nc.SetDeadline(time.Now().Add(c.opt.DialTimeout))
	cc.nextID++
	// The hello exchange is always v1 JSON in both directions, whatever is
	// being offered, so any client can negotiate with any server.
	n, err := WriteFrameVersion(nc, ProtoVersion, &Request{ID: cc.nextID, Op: OpHello, Version: offer})
	c.m.bytesWritten.Add(int64(n))
	if err != nil {
		nc.Close()
		return nil, err
	}
	resp, err := c.readResponse(cc)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if !resp.OK {
		nc.Close()
		return nil, responseError(resp)
	}
	if resp.Version < ProtoVersion || resp.Version > offer {
		nc.Close()
		return nil, fmt.Errorf("%w: server negotiated protocol %d, client offered %d", ErrProtocol, resp.Version, offer)
	}
	cc.ver = resp.Version
	nc.SetDeadline(time.Time{})
	return cc, nil
}

// checkout takes a connection from the pool, dialing if none is idle.
func (c *Client) checkout(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	select {
	case <-c.slots:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.slots <- struct{}{}
		return nil, ErrClosed
	}
	var cc *clientConn
	if n := len(c.idle); n > 0 {
		cc = c.idle[n-1]
		c.idle = c.idle[:n-1]
	}
	c.mu.Unlock()
	if cc != nil {
		return cc, nil
	}
	cc, err := c.dial()
	if err != nil {
		c.slots <- struct{}{}
		return nil, err
	}
	return cc, nil
}

// release returns a healthy connection to the pool; a connection whose
// request failed with an I/O error is closed instead (its server-side state
// is unknown).
func (c *Client) release(cc *clientConn, err error) {
	if err != nil {
		cc.nc.Close()
		c.slots <- struct{}{}
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cc.nc.Close()
		c.slots <- struct{}{}
		return
	}
	c.idle = append(c.idle, cc)
	c.mu.Unlock()
	c.slots <- struct{}{}
}

// WireVersion reports the protocol version negotiated on the most recent
// dial (1 = JSON, 2 = binary); 0 before any connection succeeded.
func (c *Client) WireVersion() int {
	return int(c.wireVer.Load())
}

// readResponse reads one frame into the connection's reusable buffer and
// decodes it with the connection's negotiated codec. Decoded responses copy
// every string out of the buffer, so reuse across calls is safe.
func (c *Client) readResponse(cc *clientConn) (*Response, error) {
	body, err := ReadFrameInto(cc.br, DefaultMaxFrame, cc.rbuf)
	if err != nil {
		return nil, err
	}
	cc.rbuf = body
	c.m.bytesRead.Add(int64(4 + len(body)))
	return DecodeResponseVersion(body, cc.ver)
}

// do sends one request, retrying idempotent requests after retryable
// failures with jittered exponential backoff.
func (c *Client) do(ctx context.Context, req *Request, idempotent bool) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, has := ctx.Deadline(); !has && c.opt.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opt.RequestTimeout)
		defer cancel()
	}
	attempts := 1
	if idempotent {
		attempts += c.opt.Retries
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.m.retries.Add(1)
			if err := c.backoff(ctx, i); err != nil {
				return nil, lastErr
			}
		}
		resp, err := c.doOnce(ctx, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !retryable(err) || ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, lastErr
}

// retryable: transport failures and fast-rejections, where the server
// provably did not (overload, protocol handshake) or may not have (dial)
// executed anything. Typed engine failures are final.
func retryable(err error) bool {
	if errors.Is(err, ErrOverloaded) {
		return true
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE)
}

func (c *Client) backoff(ctx context.Context, attempt int) error {
	d := c.opt.RetryBackoff << (attempt - 1)
	c.mu.Lock()
	factor := 0.5 + c.rng.Float64()
	c.mu.Unlock()
	d = time.Duration(float64(d) * factor)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Client) doOnce(ctx context.Context, req *Request) (*Response, error) {
	cc, err := c.checkout(ctx)
	if err != nil {
		return nil, err
	}
	c.m.requests.Add(1)
	cc.nextID++
	req.ID = cc.nextID
	req.DeadlineMS = 0
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms <= 0 {
			c.release(cc, nil)
			return nil, context.DeadlineExceeded
		}
		req.DeadlineMS = ms
		cc.nc.SetDeadline(dl.Add(500 * time.Millisecond))
	} else {
		cc.nc.SetDeadline(time.Time{})
	}
	n, err := WriteFrameVersion(cc.nc, cc.ver, req)
	c.m.bytesWritten.Add(int64(n))
	if err != nil {
		c.release(cc, err)
		return nil, err
	}
	resp, err := c.readResponse(cc)
	if err != nil {
		c.release(cc, err)
		return nil, err
	}
	if resp.ID != req.ID {
		err := fmt.Errorf("%w: response id %d for request %d", ErrProtocol, resp.ID, req.ID)
		c.release(cc, err)
		return nil, err
	}
	c.release(cc, nil)
	if !resp.OK {
		return resp, responseError(resp)
	}
	return resp, nil
}

// --- typed operations ---

// InsertCtx inserts one tuple. Not retried (not idempotent).
func (c *Client) InsertCtx(ctx context.Context, relName string, tup relation.Tuple) error {
	_, err := c.do(ctx, &Request{Op: OpInsert, Relation: relName, Tuple: EncodeTuple(tup)}, false)
	return err
}

// DeleteCtx deletes by primary key. Not retried.
func (c *Client) DeleteCtx(ctx context.Context, relName string, key relation.Tuple) error {
	_, err := c.do(ctx, &Request{Op: OpDelete, Relation: relName, Key: EncodeTuple(key)}, false)
	return err
}

// UpdateCtx replaces the tuple with the given key. Not retried.
func (c *Client) UpdateCtx(ctx context.Context, relName string, key, tup relation.Tuple) error {
	_, err := c.do(ctx, &Request{Op: OpUpdate, Relation: relName, Key: EncodeTuple(key), Tuple: EncodeTuple(tup)}, false)
	return err
}

// FetchCtx looks up by primary key. Idempotent: retried on transport errors
// and overload.
func (c *Client) FetchCtx(ctx context.Context, relName string, key relation.Tuple) (relation.Tuple, bool, error) {
	resp, err := c.do(ctx, &Request{Op: OpFetch, Relation: relName, Key: EncodeTuple(key)}, true)
	if err != nil {
		return nil, false, err
	}
	if !resp.Found {
		return nil, false, nil
	}
	tup, err := DecodeTuple(resp.Tuple)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	return tup, true, nil
}

// InsertBatchCtx inserts an atomic batch. Not retried.
func (c *Client) InsertBatchCtx(ctx context.Context, relName string, tuples []relation.Tuple) error {
	ws := make([][]WireValue, len(tuples))
	for i, t := range tuples {
		ws[i] = EncodeTuple(t)
	}
	_, err := c.do(ctx, &Request{Op: OpInsertBatch, Relation: relName, Tuples: ws}, false)
	return err
}

// ApplyBatchCtx applies an atomic mixed batch. Not retried.
func (c *Client) ApplyBatchCtx(ctx context.Context, ops []engine.BatchOp) error {
	ws, err := EncodeOps(ops)
	if err != nil {
		return err
	}
	_, err = c.do(ctx, &Request{Op: OpApplyBatch, Ops: ws}, false)
	return err
}

// BeginCtx opens the (single, global) transaction.
func (c *Client) BeginCtx(ctx context.Context) error {
	_, err := c.do(ctx, &Request{Op: OpBegin}, false)
	return err
}

// CommitCtx commits the open transaction.
func (c *Client) CommitCtx(ctx context.Context) error {
	_, err := c.do(ctx, &Request{Op: OpCommit}, false)
	return err
}

// RollbackCtx rolls back the open transaction.
func (c *Client) RollbackCtx(ctx context.Context) error {
	_, err := c.do(ctx, &Request{Op: OpRollback}, false)
	return err
}

// StatsCtx fetches the server's monotonic engine counters. Idempotent.
func (c *Client) StatsCtx(ctx context.Context) (engine.StatsSnapshot, error) {
	resp, err := c.do(ctx, &Request{Op: OpStats}, true)
	if err != nil {
		return engine.StatsSnapshot{}, err
	}
	return fromWireStats(resp.Stats), nil
}

// CheckpointCtx forces a snapshot checkpoint on a durable server. Not
// retried (it is cheap to re-issue, but a retry after a WAL crash would
// just re-fail).
func (c *Client) CheckpointCtx(ctx context.Context) error {
	_, err := c.do(ctx, &Request{Op: OpCheckpoint}, false)
	return err
}

// PingCtx round-trips a no-op frame. Idempotent.
func (c *Client) PingCtx(ctx context.Context) error {
	_, err := c.do(ctx, &Request{Op: OpPing}, true)
	return err
}

// ReplSubscribeCtx validates a follower's start position with the primary
// and returns the first chunk (records, or a bootstrap snapshot when the
// position was compacted away). Idempotent.
func (c *Client) ReplSubscribeCtx(ctx context.Context, afterLSN uint64, maxRecords int) (*WireRepl, error) {
	return c.repl(ctx, OpReplSubscribe, afterLSN, maxRecords)
}

// ReplFetchCtx returns the committed records after afterLSN plus the
// primary's commit horizon. Idempotent: a duplicate delivery is skipped by
// the follower's log, so retries are safe.
func (c *Client) ReplFetchCtx(ctx context.Context, afterLSN uint64, maxRecords int) (*WireRepl, error) {
	return c.repl(ctx, OpReplFetch, afterLSN, maxRecords)
}

// ReplHeartbeatCtx returns the primary's commit horizon. Idempotent.
func (c *Client) ReplHeartbeatCtx(ctx context.Context) (*WireRepl, error) {
	return c.repl(ctx, OpReplHeartbeat, 0, 0)
}

func (c *Client) repl(ctx context.Context, op string, afterLSN uint64, maxRecords int) (*WireRepl, error) {
	resp, err := c.do(ctx, &Request{Op: op, AfterLSN: afterLSN, MaxRecords: maxRecords}, true)
	if err != nil {
		return nil, err
	}
	if resp.Repl == nil {
		return nil, fmt.Errorf("%w: %s response without repl payload", ErrProtocol, op)
	}
	return resp.Repl, nil
}
