package server

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/wal"
)

// Sentinels introduced by the service layer.
var (
	// ErrOverloaded is returned (fast, without queueing) when the server's
	// admission queue is full. Idempotent operations may be retried after
	// backoff; the client does so automatically.
	ErrOverloaded = errors.New("server: overloaded")
	// ErrDeadline is returned when a request's deadline expired before or
	// while it executed. It matches context.DeadlineExceeded via errors.Is
	// on responses decoded by the client.
	ErrDeadline = errors.New("server: deadline exceeded")
	// ErrProtocol marks a protocol violation (oversized frame, bad JSON,
	// unknown op, duplicate in-flight request ID, version mismatch). The
	// offending connection fails closed; other connections are unaffected.
	ErrProtocol = errors.New("server: protocol violation")
	// ErrClosed is returned by client operations after Close, and by
	// requests refused because the server is draining.
	ErrClosed = errors.New("server: closed")
	// ErrTxn is returned for transaction sequencing errors (begin while
	// open, commit/rollback without begin).
	ErrTxn = errors.New("server: transaction sequencing error")
	// ErrReadOnly is returned for write operations against a read-only
	// backend: a replication follower serving reads pinned at its applied-LSN
	// horizon. Writes belong on the primary (or on this node after promotion).
	ErrReadOnly = errors.New("server: read-only replica")
	// ErrNotReplicating is returned for replication operations against a
	// backend that cannot ship its log (not durable, or not an engine).
	ErrNotReplicating = errors.New("server: backend does not support replication")
	// ErrUnsupported is returned for a capability the session's backend does
	// not offer at all — e.g. adaptive-merge advice on a remote session (the
	// design is the server's to change) or an advisor in Auto mode on a
	// read-only follower. Unlike ErrReadOnly it is not a role that promotion
	// can change; the operation belongs on a different backend.
	ErrUnsupported = errors.New("server: operation not supported by this backend")
)

// Code is a stable wire error code. Every sentinel the engine, WAL, merge
// core, and service layer can surface maps to exactly one code, so clients
// can branch on failures without parsing message text.
type Code string

// The full wire taxonomy. CodeOK never appears in an error response.
const (
	CodeOK      Code = "ok"
	CodeUnknown Code = "unknown"

	// Service layer.
	CodeProtocol    Code = "protocol"
	CodeOverloaded  Code = "overloaded"
	CodeDeadline    Code = "deadline"
	CodeCanceled    Code = "canceled"
	CodeClosed      Code = "closed"
	CodeTxn         Code = "txn"
	CodeReadOnly    Code = "read_only"
	CodeNotRepl     Code = "not_replicating"
	CodeUnsupported Code = "unsupported"

	// Engine.
	CodeUnknownRelation Code = "unknown_relation"
	CodeNoSuchTuple     Code = "no_such_tuple"
	CodeArityMismatch   Code = "arity_mismatch"
	CodeConstraint      Code = "constraint_violation"
	CodeMalformedIND    Code = "malformed_ind"
	CodeNotDurable      Code = "not_durable"
	CodeOpenTransaction Code = "open_transaction"
	CodeRecovery        Code = "recovery"

	// WAL.
	CodeWALCrashed   Code = "wal_crashed"
	CodeWALClosed    Code = "wal_closed"
	CodeWALGap       Code = "wal_gap"
	CodeWALCompacted Code = "wal_compacted"

	// Merge pipeline (Def. 4.1/4.3 + removability).
	CodeMergeSetTooSmall Code = "merge_set_too_small"
	CodeUnknownScheme    Code = "unknown_scheme"
	CodeDuplicateMember  Code = "duplicate_member"
	CodeNameCollision    Code = "name_collision"
	CodeIncompatibleKeys Code = "incompatible_keys"
	CodeNullableMember   Code = "nullable_member"
	CodeBadKeyRelation   Code = "bad_key_relation"
	CodeNotMember        Code = "not_member"
	CodeNotRemovable     Code = "not_removable"
)

// codeSentinels orders the sentinel→code mapping. Order matters only where
// errors wrap each other; more specific sentinels come first.
var codeSentinels = []struct {
	err  error
	code Code
}{
	{ErrProtocol, CodeProtocol},
	{ErrOverloaded, CodeOverloaded},
	{ErrDeadline, CodeDeadline},
	{ErrClosed, CodeClosed},
	{ErrTxn, CodeTxn},
	{ErrReadOnly, CodeReadOnly},
	{ErrNotReplicating, CodeNotRepl},
	{ErrUnsupported, CodeUnsupported},
	{context.DeadlineExceeded, CodeDeadline},
	{context.Canceled, CodeCanceled},

	{engine.ErrUnknownRelation, CodeUnknownRelation},
	{engine.ErrNoSuchTuple, CodeNoSuchTuple},
	{engine.ErrArityMismatch, CodeArityMismatch},
	{engine.ErrConstraintViolation, CodeConstraint},
	{engine.ErrMalformedIND, CodeMalformedIND},
	{engine.ErrNotDurable, CodeNotDurable},
	{engine.ErrOpenTransaction, CodeOpenTransaction},
	{engine.ErrRecovery, CodeRecovery},

	{wal.ErrCrashed, CodeWALCrashed},
	{wal.ErrClosed, CodeWALClosed},
	{wal.ErrGap, CodeWALGap},
	{wal.ErrCompacted, CodeWALCompacted},

	{core.ErrMergeSetTooSmall, CodeMergeSetTooSmall},
	{core.ErrUnknownScheme, CodeUnknownScheme},
	{core.ErrDuplicateMember, CodeDuplicateMember},
	{core.ErrNameCollision, CodeNameCollision},
	{core.ErrIncompatibleKeys, CodeIncompatibleKeys},
	{core.ErrNullableMember, CodeNullableMember},
	{core.ErrBadKeyRelation, CodeBadKeyRelation},
	{core.ErrNotMember, CodeNotMember},
}

// CodeOf maps any error from the merge pipeline, engine, WAL, or service
// layer to its stable wire code. nil maps to CodeOK; errors outside the
// taxonomy map to CodeUnknown. A *RemoteError keeps the code it arrived
// with, so CodeOf is stable across embedded and remote sessions.
func CodeOf(err error) Code {
	if err == nil {
		return CodeOK
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Code
	}
	var nr *core.ErrNotRemovable
	if errors.As(err, &nr) {
		return CodeNotRemovable
	}
	// ConstraintViolation wraps ErrConstraintViolation via Is, so the loop
	// below catches it; checking first keeps the intent explicit.
	var cv *engine.ConstraintViolation
	if errors.As(err, &cv) {
		return CodeConstraint
	}
	for _, s := range codeSentinels {
		if errors.Is(err, s.err) {
			return s.code
		}
	}
	return CodeUnknown
}

// sentinelOf is the inverse of the sentinel mapping: the representative
// error a client-side decoded response of this code should match with
// errors.Is. Codes carrying structured payloads (constraint violations) are
// reconstructed separately and never reach this table.
func sentinelOf(code Code) error {
	switch code {
	case CodeProtocol:
		return ErrProtocol
	case CodeOverloaded:
		return ErrOverloaded
	case CodeDeadline:
		return ErrDeadline
	case CodeCanceled:
		return context.Canceled
	case CodeClosed:
		return ErrClosed
	case CodeTxn:
		return ErrTxn
	case CodeReadOnly:
		return ErrReadOnly
	case CodeNotRepl:
		return ErrNotReplicating
	case CodeUnsupported:
		return ErrUnsupported
	case CodeWALGap:
		return wal.ErrGap
	case CodeWALCompacted:
		return wal.ErrCompacted
	case CodeUnknownRelation:
		return engine.ErrUnknownRelation
	case CodeNoSuchTuple:
		return engine.ErrNoSuchTuple
	case CodeArityMismatch:
		return engine.ErrArityMismatch
	case CodeConstraint:
		return engine.ErrConstraintViolation
	case CodeMalformedIND:
		return engine.ErrMalformedIND
	case CodeNotDurable:
		return engine.ErrNotDurable
	case CodeOpenTransaction:
		return engine.ErrOpenTransaction
	case CodeRecovery:
		return engine.ErrRecovery
	case CodeWALCrashed:
		return wal.ErrCrashed
	case CodeWALClosed:
		return wal.ErrClosed
	case CodeMergeSetTooSmall:
		return core.ErrMergeSetTooSmall
	case CodeUnknownScheme:
		return core.ErrUnknownScheme
	case CodeDuplicateMember:
		return core.ErrDuplicateMember
	case CodeNameCollision:
		return core.ErrNameCollision
	case CodeIncompatibleKeys:
		return core.ErrIncompatibleKeys
	case CodeNullableMember:
		return core.ErrNullableMember
	case CodeBadKeyRelation:
		return core.ErrBadKeyRelation
	case CodeNotMember:
		return core.ErrNotMember
	}
	return nil
}

// RemoteError is a failure reported by the server. It unwraps (via Is) to
// the sentinel its code maps to, so `errors.Is(err, engine.ErrNoSuchTuple)`
// behaves identically whether the session is embedded or remote. Deadline
// codes additionally match both ErrDeadline and context.DeadlineExceeded.
type RemoteError struct {
	Code Code
	Msg  string
}

// Error returns the server-reported message, prefixed by the code.
func (e *RemoteError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("remote: %s", e.Code)
	}
	return fmt.Sprintf("remote: %s: %s", e.Code, e.Msg)
}

// Is matches the sentinel(s) associated with the error's code.
func (e *RemoteError) Is(target error) bool {
	if s := sentinelOf(e.Code); s != nil && s == target {
		return true
	}
	// Deadline expiry surfaces as context.DeadlineExceeded from an embedded
	// session; keep the remote session indistinguishable.
	if e.Code == CodeDeadline && target == context.DeadlineExceeded {
		return true
	}
	return false
}

// errorResponse builds the failure response for a request, embedding the
// typed constraint violation when there is one.
func errorResponse(id uint64, err error) *Response {
	resp := &Response{ID: id, Code: CodeOf(err), Error: err.Error()}
	var cv *engine.ConstraintViolation
	if errors.As(err, &cv) {
		resp.Violation = &WireViolation{
			Kind:       uint8(cv.Kind),
			Relation:   cv.Relation,
			Attr:       cv.Attr,
			Constraint: cv.Constraint,
			Op:         cv.Op,
		}
	}
	return resp
}

// responseError reconstructs the error of a failure response on the client
// side. Constraint violations come back as *engine.ConstraintViolation so
// errors.As works across the wire.
func responseError(resp *Response) error {
	if resp.OK {
		return nil
	}
	if resp.Violation != nil {
		return &engine.ConstraintViolation{
			Kind:       engine.ViolationKind(resp.Violation.Kind),
			Relation:   resp.Violation.Relation,
			Attr:       resp.Violation.Attr,
			Constraint: resp.Violation.Constraint,
			Op:         resp.Violation.Op,
		}
	}
	code := resp.Code
	if code == "" {
		code = CodeUnknown
	}
	return &RemoteError{Code: code, Msg: resp.Error}
}
