package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/wal"
)

// Config tunes a Server. The zero value picks sensible defaults.
type Config struct {
	// Workers is the size of the request worker pool (default: GOMAXPROCS,
	// at least 4). The pool — not the connection count — bounds engine
	// concurrency.
	Workers int
	// QueueDepth bounds the admission queue (default 64). A request
	// arriving on a full queue is answered immediately with CodeOverloaded
	// instead of waiting: the client learns to back off while the queue
	// stays short enough that accepted requests meet their deadlines.
	QueueDepth int
	// MaxFrame bounds one protocol frame (default DefaultMaxFrame).
	MaxFrame int
	// MaxWire is the highest wire protocol version the server negotiates
	// (default MaxProtoVersion). Setting it to ProtoVersion serves v1 JSON
	// only — the negotiated version is min(client offer, MaxWire), so v2
	// clients transparently fall back to JSON against such a server.
	MaxWire int
	// CoalesceMax bounds how many queued write requests a worker folds into
	// one engine batch — one WAL record, one fsync — per dequeue (default
	// 16; 1 disables coalescing).
	CoalesceMax int
	// Registry receives server metrics (default obs.Default()).
	Registry *obs.Registry
	// Name labels this server's metrics (default "relmerged").
	Name string
	// Logf, when set, receives one line per lifecycle event and failed
	// connection (default: silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers < 4 {
			c.Workers = 4
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.MaxWire <= 0 || c.MaxWire > MaxProtoVersion {
		c.MaxWire = MaxProtoVersion
	}
	if c.CoalesceMax <= 0 {
		c.CoalesceMax = 16
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	if c.Name == "" {
		c.Name = "relmerged"
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Backend is what the server serves: the engine's operational surface, as
// implemented by a single *engine.DB or by a shard router fronting several.
// The server is indifferent to which — every request dispatches through
// this interface, so `relmerged -shards N` is the same server wrapped
// around a different backend.
type Backend interface {
	InsertCtx(ctx context.Context, name string, tup relation.Tuple) error
	DeleteCtx(ctx context.Context, name string, key relation.Tuple) error
	UpdateCtx(ctx context.Context, name string, key, tup relation.Tuple) error
	GetByKeyCtx(ctx context.Context, name string, key relation.Tuple) (relation.Tuple, bool, error)
	InsertBatchCtx(ctx context.Context, name string, tuples []relation.Tuple) error
	ApplyBatchCtx(ctx context.Context, ops []engine.BatchOp) error
	Begin() error
	Commit() error
	Rollback() error
	// StatsTotals returns the monotonic counters stamped with the current
	// version LSN (aggregated across shards for a router backend).
	StatsTotals() engine.StatsSnapshot
	Checkpoint() error
	Durable() bool
	Close() error
}

// Replicator is the optional primary-side replication surface of a Backend.
// The server type-asserts for it when dispatching repl_* operations: a
// durable *engine.DB implements it; backends that cannot ship a log (shard
// routers, non-durable engines) answer CodeNotRepl instead.
type Replicator interface {
	// ReplRead returns committed records after afterLSN plus the commit
	// horizon; wal.ErrCompacted means the position predates the newest
	// checkpoint and the caller must bootstrap from ReplSnapshot.
	ReplRead(afterLSN uint64, maxRecords int) ([]wal.Record, uint64, error)
	// ReplSnapshot returns the newest checkpoint's payload and covered LSN.
	ReplSnapshot() ([]byte, uint64, error)
	// DurableLSN returns the log's commit horizon.
	DurableLSN() uint64
}

// Server serves engine operations over the relmerged wire protocol.
type Server struct {
	db  Backend
	cfg Config
	m   *serverMetrics

	baseCtx  context.Context
	baseStop context.CancelFunc

	queue chan *task

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*srvConn]struct{}
	draining bool
	closed   bool

	connWG   sync.WaitGroup
	workerWG sync.WaitGroup
	reapOnce sync.Once
	reaped   chan struct{}
}

type srvConn struct {
	s  *Server
	nc net.Conn
	br *bufio.Reader // buffered reads: frame prefix + body without per-field syscalls

	// ver is the negotiated wire protocol version. It starts at ProtoVersion
	// (the hello exchange is always v1 JSON) and is bumped once by the
	// handshake, before any request is enqueued, so workers observe it
	// through the queue's happens-before edge without locking.
	ver int

	rbuf []byte // connection-owned frame read buffer, reused across frames

	wmu sync.Mutex // serializes response frames

	mu       sync.Mutex
	inflight map[uint64]struct{}
}

// readFrame reads one frame body into the connection's reusable buffer.
func (c *srvConn) readFrame() ([]byte, error) {
	body, err := ReadFrameInto(c.br, c.s.cfg.MaxFrame, c.rbuf)
	if err != nil {
		return nil, err
	}
	c.rbuf = body // keep the (possibly grown) buffer for the next frame
	return body, nil
}

type task struct {
	c      *srvConn
	req    *Request
	ctx    context.Context
	cancel context.CancelFunc
	start  time.Time
}

// New builds a server around an open backend — an engine, or a shard
// router — and starts its worker pool. The server assumes ownership of the
// backend's lifecycle: a graceful Shutdown checkpoints (when durable) and
// closes it.
func New(db Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		db:       db,
		cfg:      cfg,
		m:        newServerMetrics(cfg.Registry, cfg.Name),
		baseCtx:  ctx,
		baseStop: stop,
		queue:    make(chan *task, cfg.QueueDepth),
		conns:    make(map[*srvConn]struct{}),
		reaped:   make(chan struct{}),
	}
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Serve accepts connections on ln until Shutdown or Close. It returns nil
// after a shutdown, or the first accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.cfg.Logf("relmerged: serving on %s", ln.Addr())
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.draining || s.closed
			s.mu.Unlock()
			if stopping {
				return nil
			}
			return err
		}
		s.connWG.Add(1)
		go s.handleConn(nc)
	}
}

// ListenAndServe listens on addr and serves until shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the serving address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains gracefully: stop accepting, stop reading new requests,
// finish every in-flight request (and write its response), checkpoint a
// durable engine, close the WAL, then close the connections. If ctx expires
// first, in-flight work is cancelled and connections are closed immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	alreadyDraining := s.draining
	s.draining = true
	ln := s.ln
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if alreadyDraining {
		<-s.reaped
		return nil
	}
	s.m.drains.Inc()
	s.cfg.Logf("relmerged: draining (%d connections)", len(conns))
	if ln != nil {
		ln.Close()
	}
	// Unblock readers parked in ReadFrame; they observe draining and exit
	// without treating the deadline as a connection failure.
	for _, c := range conns {
		c.nc.SetReadDeadline(time.Now())
	}
	go s.reap()
	select {
	case <-s.reaped:
	case <-ctx.Done():
		s.baseStop() // cancel in-flight engine contexts
		s.closeConns()
		<-s.reaped
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.closeConns()
	var err error
	if s.db.Durable() {
		if cerr := s.db.Checkpoint(); cerr != nil && !errors.Is(cerr, engine.ErrOpenTransaction) {
			err = cerr
		}
		if cerr := s.db.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.baseStop()
	s.cfg.Logf("relmerged: drained")
	return err
}

// Close kills the server abruptly — no drain, no checkpoint, no WAL close —
// simulating a crash. In-flight requests are cancelled and every connection
// is dropped. The engine is left untouched (and its WAL unsynced), so crash
// tests can reopen the directory and measure what recovery reconstructs.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	s.baseStop()
	if ln != nil {
		ln.Close()
	}
	s.closeConns()
	go s.reap()
	<-s.reaped
	return nil
}

// reap waits for readers, closes the queue (no sender remains), and waits
// for workers to finish the remaining tasks.
func (s *Server) reap() {
	s.reapOnce.Do(func() {
		s.connWG.Wait()
		close(s.queue)
		s.workerWG.Wait()
		close(s.reaped)
	})
}

func (s *Server) closeConns() {
	s.mu.Lock()
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.nc.Close()
	}
}

func (s *Server) drainingNow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) handleConn(nc net.Conn) {
	defer s.connWG.Done()
	c := &srvConn{
		s:        s,
		nc:       nc,
		br:       bufio.NewReaderSize(nc, 16<<10),
		ver:      ProtoVersion,
		inflight: make(map[uint64]struct{}),
	}
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	s.m.connections.Add(1)
	defer s.m.connections.Add(-1)

	if err := s.handshake(c); err != nil {
		s.failConn(c, 0, err)
		s.untrack(c)
		nc.Close()
		return
	}
	for {
		body, err := c.readFrame()
		if err != nil {
			if s.drainingNow() {
				// Leave the connection open: workers still owe it responses;
				// Shutdown closes it after the queue drains.
				return
			}
			if errors.Is(err, ErrProtocol) {
				s.failConn(c, 0, err)
			}
			s.untrack(c)
			nc.Close()
			return
		}
		s.m.bytesRead.Add(int64(4 + len(body)))
		req, err := DecodeRequestVersion(body, c.ver)
		if err != nil {
			s.failConn(c, 0, err)
			s.untrack(c)
			nc.Close()
			return
		}
		if req.Op == OpHello {
			s.failConn(c, req.ID, fmt.Errorf("%w: repeated hello", ErrProtocol))
			s.untrack(c)
			nc.Close()
			return
		}
		c.mu.Lock()
		if _, dup := c.inflight[req.ID]; dup {
			c.mu.Unlock()
			s.failConn(c, req.ID, fmt.Errorf("%w: duplicate in-flight request id %d", ErrProtocol, req.ID))
			s.untrack(c)
			nc.Close()
			return
		}
		c.inflight[req.ID] = struct{}{}
		c.mu.Unlock()

		s.m.requests.Inc()
		ctx, cancel := s.baseCtx, context.CancelFunc(func() {})
		if req.DeadlineMS > 0 {
			ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(req.DeadlineMS)*time.Millisecond)
		}
		t := &task{c: c, req: req, ctx: ctx, cancel: cancel, start: time.Now()}
		select {
		case s.queue <- t:
			s.m.inflight.Add(1)
		default:
			// Admission control: reject instantly rather than queue past the
			// depth limit — the engine is already saturated.
			cancel()
			c.clearID(req.ID)
			s.m.overloaded.Inc()
			c.send(errorResponse(req.ID, ErrOverloaded))
		}
	}
}

// handshake runs the version negotiation: the client's hello (always v1
// JSON) offers its highest version, the server answers min(offer, MaxWire)
// (also in JSON), and the connection speaks the agreed codec from the next
// frame on. An offer below 1 is garbage and fails only this connection.
func (s *Server) handshake(c *srvConn) error {
	body, err := c.readFrame()
	if err != nil {
		return err
	}
	s.m.bytesRead.Add(int64(4 + len(body)))
	req, err := DecodeRequest(body)
	if err != nil {
		return err
	}
	if req.Op != OpHello {
		return fmt.Errorf("%w: first frame must be hello, got %q", ErrProtocol, req.Op)
	}
	if req.Version < ProtoVersion {
		return fmt.Errorf("%w: protocol version %d not supported (server speaks %d-%d)", ErrProtocol, req.Version, ProtoVersion, s.cfg.MaxWire)
	}
	negotiated := req.Version
	if negotiated > s.cfg.MaxWire {
		negotiated = s.cfg.MaxWire
	}
	if err := c.send(&Response{ID: req.ID, OK: true, Version: negotiated}); err != nil {
		return err
	}
	c.ver = negotiated
	return nil
}

// failConn records a protocol violation, best-effort answers it, and lets
// the caller close the connection. Only this connection is affected.
func (s *Server) failConn(c *srvConn, id uint64, err error) {
	s.m.protocolErrors.Inc()
	s.cfg.Logf("relmerged: %s: %v", c.nc.RemoteAddr(), err)
	c.send(errorResponse(id, err))
}

func (s *Server) untrack(c *srvConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (c *srvConn) clearID(id uint64) {
	c.mu.Lock()
	delete(c.inflight, id)
	c.mu.Unlock()
}

// send writes one response frame in the connection's negotiated codec.
// Write errors are swallowed: the reader side notices the dead connection
// and tears it down.
func (c *srvConn) send(resp *Response) error {
	c.wmu.Lock()
	n, err := WriteFrameVersion(c.nc, c.ver, resp)
	c.wmu.Unlock()
	c.s.m.bytesWritten.Add(int64(n))
	return err
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for t := range s.queue {
		if writeOp(t.req.Op) && s.cfg.CoalesceMax > 1 {
			batch := []*task{t}
		drain:
			// Opportunistically fold queued writes into one engine batch:
			// one lock-plan acquisition, one WAL record, one fsync for the
			// whole group. Reads and txn ops dequeued along the way execute
			// inline (cross-request ordering is only promised to clients
			// that wait for responses, which cannot have two in flight).
			for len(batch) < s.cfg.CoalesceMax {
				select {
				case t2, ok := <-s.queue:
					if !ok {
						break drain
					}
					if writeOp(t2.req.Op) {
						batch = append(batch, t2)
					} else {
						s.execute(t2)
					}
				default:
					break drain
				}
			}
			s.executeWrites(batch)
		} else {
			s.execute(t)
		}
	}
}

// finish answers t and releases its bookkeeping.
func (s *Server) finish(t *task, resp *Response) {
	resp.ID = t.req.ID
	t.c.send(resp)
	t.c.clearID(t.req.ID)
	t.cancel()
	s.m.inflight.Add(-1)
	if h := s.m.wireLat[t.req.Op]; h != nil {
		h.ObserveSince(t.start)
	}
}

func (s *Server) execute(t *task) {
	if err := t.ctx.Err(); err != nil {
		s.finish(t, errorResponse(t.req.ID, deadlineError(err)))
		return
	}
	s.finish(t, s.dispatch(t))
}

// executeWrites runs a coalesced group of write requests as one engine
// batch. If the merged batch fails — any member's constraint violation
// aborts all of it — fall back to executing each request individually, which
// reproduces the exact per-request outcomes of an uncoalesced server.
func (s *Server) executeWrites(batch []*task) {
	live := batch[:0]
	for _, t := range batch {
		if err := t.ctx.Err(); err != nil {
			s.finish(t, errorResponse(t.req.ID, deadlineError(err)))
			continue
		}
		live = append(live, t)
	}
	if len(live) == 0 {
		return
	}
	if len(live) == 1 {
		s.finish(live[0], s.dispatch(live[0]))
		return
	}
	var ops []engine.BatchOp
	merged := live[:0]
	for _, t := range live {
		decoded, err := decodeWriteOps(t.req)
		if err != nil {
			// Undecodable member: answer it, coalesce the rest.
			s.finish(t, errorResponse(t.req.ID, err))
			continue
		}
		ops = append(ops, decoded...)
		merged = append(merged, t)
	}
	if len(merged) == 0 {
		return
	}
	if err := s.db.ApplyBatchCtx(s.baseCtx, ops); err == nil {
		s.m.coalescedBatch.Inc()
		s.m.coalescedWrites.Add(int64(len(merged)))
		for _, t := range merged {
			s.finish(t, &Response{OK: true})
		}
		return
	}
	// The combined batch aborted atomically (no effects survive), so per-
	// request execution observes the same starting state.
	for _, t := range merged {
		s.finish(t, s.dispatch(t))
	}
}

// decodeWriteOps lowers one write request to engine batch ops.
func decodeWriteOps(req *Request) ([]engine.BatchOp, error) {
	switch req.Op {
	case OpInsert:
		tup, err := DecodeTuple(req.Tuple)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		return []engine.BatchOp{engine.Ins(req.Relation, tup)}, nil
	case OpDelete:
		key, err := DecodeTuple(req.Key)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		return []engine.BatchOp{engine.Del(req.Relation, key)}, nil
	case OpUpdate:
		key, err := DecodeTuple(req.Key)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		tup, err := DecodeTuple(req.Tuple)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		return []engine.BatchOp{engine.Upd(req.Relation, key, tup)}, nil
	case OpInsertBatch:
		out := make([]engine.BatchOp, 0, len(req.Tuples))
		for _, wt := range req.Tuples {
			tup, err := DecodeTuple(wt)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
			}
			out = append(out, engine.Ins(req.Relation, tup))
		}
		return out, nil
	case OpApplyBatch:
		ops, err := DecodeOps(req.Ops)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		return ops, nil
	}
	return nil, fmt.Errorf("%w: %q is not a write op", ErrProtocol, req.Op)
}

// decodeTuples decodes an insert_batch payload.
func decodeTuples(ws [][]WireValue) ([]relation.Tuple, error) {
	out := make([]relation.Tuple, len(ws))
	for i, w := range ws {
		t, err := DecodeTuple(w)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// deadlineError maps a context error to the wire's deadline/cancel sentinel.
func deadlineError(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w while queued", ErrDeadline)
	}
	return err
}

// dispatch executes one request against the engine and builds its response.
func (s *Server) dispatch(t *task) *Response {
	req := t.req
	fail := func(err error) *Response { return errorResponse(req.ID, err) }
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpInsert:
		tup, err := DecodeTuple(req.Tuple)
		if err != nil {
			return fail(fmt.Errorf("%w: %v", ErrProtocol, err))
		}
		if err := s.db.InsertCtx(t.ctx, req.Relation, tup); err != nil {
			return fail(err)
		}
		return &Response{OK: true}
	case OpDelete:
		key, err := DecodeTuple(req.Key)
		if err != nil {
			return fail(fmt.Errorf("%w: %v", ErrProtocol, err))
		}
		if err := s.db.DeleteCtx(t.ctx, req.Relation, key); err != nil {
			return fail(err)
		}
		return &Response{OK: true}
	case OpUpdate:
		key, err := DecodeTuple(req.Key)
		if err != nil {
			return fail(fmt.Errorf("%w: %v", ErrProtocol, err))
		}
		tup, err := DecodeTuple(req.Tuple)
		if err != nil {
			return fail(fmt.Errorf("%w: %v", ErrProtocol, err))
		}
		if err := s.db.UpdateCtx(t.ctx, req.Relation, key, tup); err != nil {
			return fail(err)
		}
		return &Response{OK: true}
	case OpFetch:
		key, err := DecodeTuple(req.Key)
		if err != nil {
			return fail(fmt.Errorf("%w: %v", ErrProtocol, err))
		}
		tup, ok, err := s.db.GetByKeyCtx(t.ctx, req.Relation, key)
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Found: ok, Tuple: EncodeTuple(tup)}
	case OpInsertBatch:
		ts, err := decodeTuples(req.Tuples)
		if err != nil {
			return fail(fmt.Errorf("%w: %v", ErrProtocol, err))
		}
		if err := s.db.InsertBatchCtx(t.ctx, req.Relation, ts); err != nil {
			return fail(err)
		}
		return &Response{OK: true}
	case OpApplyBatch:
		ops, err := DecodeOps(req.Ops)
		if err != nil {
			return fail(fmt.Errorf("%w: %v", ErrProtocol, err))
		}
		if err := s.db.ApplyBatchCtx(t.ctx, ops); err != nil {
			return fail(err)
		}
		return &Response{OK: true}
	case OpBegin:
		if err := TxnError(s.db.Begin()); err != nil {
			return fail(err)
		}
		return &Response{OK: true}
	case OpCommit:
		if err := TxnError(s.db.Commit()); err != nil {
			return fail(err)
		}
		return &Response{OK: true}
	case OpRollback:
		if err := TxnError(s.db.Rollback()); err != nil {
			return fail(err)
		}
		return &Response{OK: true}
	case OpStats:
		return &Response{OK: true, Stats: toWireStats(s.db.StatsTotals())}
	case OpCheckpoint:
		if err := s.db.Checkpoint(); err != nil {
			return fail(err)
		}
		return &Response{OK: true}
	case OpReplSubscribe, OpReplFetch:
		// Subscribe and fetch share semantics: validate the follower's
		// position and return the chunk after it. A position below the
		// compaction horizon ships the checkpoint snapshot instead, so a
		// fresh (or long-dead) follower bootstraps in the same exchange.
		rep, ok := s.db.(Replicator)
		if !ok {
			return fail(ErrNotReplicating)
		}
		recs, horizon, err := rep.ReplRead(req.AfterLSN, req.MaxRecords)
		if err != nil {
			if errors.Is(err, wal.ErrCompacted) {
				data, lsn, serr := rep.ReplSnapshot()
				if serr != nil {
					return fail(serr)
				}
				return &Response{OK: true, Repl: &WireRepl{CommitLSN: horizon, Snapshot: data, SnapshotLSN: lsn}}
			}
			return fail(err)
		}
		out := make([]WireRecord, len(recs))
		for i, r := range recs {
			out[i] = WireRecord{LSN: r.LSN, Payload: r.Payload}
		}
		return &Response{OK: true, Repl: &WireRepl{CommitLSN: horizon, Records: out}}
	case OpReplHeartbeat:
		rep, ok := s.db.(Replicator)
		if !ok {
			return fail(ErrNotReplicating)
		}
		return &Response{OK: true, Repl: &WireRepl{CommitLSN: rep.DurableLSN()}}
	}
	return fail(fmt.Errorf("%w: unknown op %q", ErrProtocol, req.Op))
}

// TxnError classifies transaction sequencing failures (begin while open,
// commit/rollback without begin) under ErrTxn, leaving sentinel-coded errors
// (e.g. a crashed WAL refusing the marker) untouched. Both the embedded
// session and the server use it, so Code is backend-independent.
func TxnError(err error) error {
	if err == nil || CodeOf(err) != CodeUnknown {
		return err
	}
	return fmt.Errorf("%w: %v", ErrTxn, err)
}
