// Package server implements the relmerged network service: a length-prefixed
// TCP protocol (JSON v1 or binary v2, negotiated per connection) serving
// engine operations (insert/delete/update/fetch/batch/txn/stats/checkpoint)
// from a bounded worker pool with admission control, per-request deadlines,
// and write coalescing aligned with the WAL's group commit. The matching
// client (with connection pooling and retries for idempotent operations)
// lives in this package too; pkg/relmerge wraps both behind the Session
// interface.
package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"

	"repro/internal/engine"
	"repro/internal/relation"
)

// Protocol versions. The hello handshake is a negotiation: the client offers
// its highest supported version, the server answers min(offered, its own
// maximum), and both sides speak the agreed codec for the rest of the
// connection. The hello exchange itself is always v1 JSON, so any client can
// talk to any server regardless of what they go on to negotiate.
const (
	// ProtoVersion is the v1 JSON codec — the floor every peer supports.
	ProtoVersion = 1
	// ProtoVersionBinary is the v2 binary codec (see binary.go).
	ProtoVersionBinary = 2
	// MaxProtoVersion is the highest version this build speaks.
	MaxProtoVersion = ProtoVersionBinary
)

// DefaultMaxFrame bounds a single frame (4-byte length prefix + JSON body).
// Frames announcing a larger body fail the connection closed before any
// allocation proportional to the announced size.
const DefaultMaxFrame = 4 << 20

// Operation names carried in Request.Op.
const (
	OpHello       = "hello"
	OpPing        = "ping"
	OpInsert      = "insert"
	OpDelete      = "delete"
	OpUpdate      = "update"
	OpFetch       = "fetch"
	OpInsertBatch = "insert_batch"
	OpApplyBatch  = "apply_batch"
	OpBegin       = "begin"
	OpCommit      = "commit"
	OpRollback    = "rollback"
	OpStats       = "stats"
	OpCheckpoint  = "checkpoint"

	// Replication ops (v2 additions; see repl.go in internal/repl for the
	// shipping loop). All three are reads against the primary's log: subscribe
	// validates a start position (shipping a snapshot when it was compacted
	// away), fetch returns the next chunk of committed records plus the commit
	// horizon, heartbeat returns the horizon alone.
	OpReplSubscribe = "repl_subscribe"
	OpReplFetch     = "repl_fetch"
	OpReplHeartbeat = "repl_heartbeat"
)

// writeOp reports whether op mutates the database and is therefore a
// candidate for server-side coalescing into one WAL group commit.
func writeOp(op string) bool {
	switch op {
	case OpInsert, OpDelete, OpUpdate, OpInsertBatch, OpApplyBatch:
		return true
	}
	return false
}

// knownOp reports whether op is part of the protocol. Unknown operations are
// a protocol violation: the connection fails closed.
func knownOp(op string) bool {
	switch op {
	case OpHello, OpPing, OpInsert, OpDelete, OpUpdate, OpFetch,
		OpInsertBatch, OpApplyBatch, OpBegin, OpCommit, OpRollback,
		OpStats, OpCheckpoint, OpReplSubscribe, OpReplFetch, OpReplHeartbeat:
		return true
	}
	return false
}

// replOp reports whether op is a replication operation; these carry the
// repl-only request fields (AfterLSN, MaxRecords) in the binary codec.
func replOp(op string) bool {
	switch op {
	case OpReplSubscribe, OpReplFetch, OpReplHeartbeat:
		return true
	}
	return false
}

// Request is one client frame. ID must be unique among the connection's
// in-flight requests; reusing a live ID is a protocol violation.
type Request struct {
	ID      uint64 `json:"id"`
	Op      string `json:"op"`
	Version int    `json:"version,omitempty"` // hello only

	Relation string        `json:"relation,omitempty"`
	Key      []WireValue   `json:"key,omitempty"`
	Tuple    []WireValue   `json:"tuple,omitempty"`
	Tuples   [][]WireValue `json:"tuples,omitempty"` // insert_batch
	Ops      []WireOp      `json:"ops,omitempty"`    // apply_batch

	// DeadlineMS is the client's remaining time budget in milliseconds;
	// zero means no deadline. The server arms a context deadline from it,
	// so a request that expires while queued is answered with CodeDeadline
	// without touching the engine.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// Replication fields (repl_subscribe / repl_fetch only): the follower's
	// durable position and the record-count cap for one fetch chunk.
	AfterLSN   uint64 `json:"after_lsn,omitempty"`
	MaxRecords int    `json:"max_records,omitempty"`
}

// WireOp is one operation of an apply_batch request.
type WireOp struct {
	Kind     string      `json:"kind"` // insert | delete | update
	Relation string      `json:"relation"`
	Key      []WireValue `json:"key,omitempty"`
	Tuple    []WireValue `json:"tuple,omitempty"`
}

// Response is one server frame, correlated to its request by ID.
type Response struct {
	ID      uint64 `json:"id"`
	OK      bool   `json:"ok"`
	Code    Code   `json:"code,omitempty"`
	Error   string `json:"error,omitempty"`
	Version int    `json:"version,omitempty"` // hello only

	// Violation carries the full typed constraint violation when Code is
	// CodeConstraint, so clients can reconstruct *engine.ConstraintViolation
	// (which null-constraint regime fired, on which relation/attribute).
	Violation *WireViolation `json:"violation,omitempty"`

	Found bool        `json:"found,omitempty"` // fetch
	Tuple []WireValue `json:"tuple,omitempty"` // fetch
	Stats *WireStats  `json:"stats,omitempty"` // stats
	Repl  *WireRepl   `json:"repl,omitempty"`  // repl_*
}

// WireRepl is the payload of a replication response: the primary's commit
// horizon, a chunk of committed records (repl_fetch), and — when the
// requested position was compacted away — a full snapshot to bootstrap from.
// Byte fields ride v1 JSON as base64 ([]byte marshaling) and v2 binary raw.
type WireRepl struct {
	CommitLSN   uint64       `json:"commit_lsn"`
	Records     []WireRecord `json:"records,omitempty"`
	Snapshot    []byte       `json:"snapshot,omitempty"`
	SnapshotLSN uint64       `json:"snapshot_lsn,omitempty"`
}

// WireRecord is one shipped WAL record: the primary's LSN and the opaque
// record payload (the engine's op encoding, replayed verbatim by the
// follower's log).
type WireRecord struct {
	LSN     uint64 `json:"lsn"`
	Payload []byte `json:"payload"`
}

// WireViolation mirrors engine.ConstraintViolation on the wire.
type WireViolation struct {
	Kind       uint8  `json:"kind"`
	Relation   string `json:"relation,omitempty"`
	Attr       string `json:"attr,omitempty"`
	Constraint string `json:"constraint,omitempty"`
	Op         string `json:"op,omitempty"`
}

// WireStats mirrors engine.StatsSnapshot with stable lowercase field names.
// version_lsn is omitempty for cross-version compatibility: a client reading
// an older server sees zero, an older client ignores the unknown key.
type WireStats struct {
	Inserts           int    `json:"inserts"`
	Deletes           int    `json:"deletes"`
	Updates           int    `json:"updates"`
	Lookups           int    `json:"lookups"`
	DeclarativeChecks int    `json:"declarative_checks"`
	TriggerFirings    int    `json:"trigger_firings"`
	IndexLookups      int    `json:"index_lookups"`
	TuplesScanned     int    `json:"tuples_scanned"`
	VersionLSN        uint64 `json:"version_lsn,omitempty"`
}

func toWireStats(s engine.StatsSnapshot) *WireStats {
	return &WireStats{
		Inserts:           s.Inserts,
		Deletes:           s.Deletes,
		Updates:           s.Updates,
		Lookups:           s.Lookups,
		DeclarativeChecks: s.DeclarativeChecks,
		TriggerFirings:    s.TriggerFirings,
		IndexLookups:      s.IndexLookups,
		TuplesScanned:     s.TuplesScanned,
		VersionLSN:        s.VersionLSN,
	}
}

func fromWireStats(w *WireStats) engine.StatsSnapshot {
	if w == nil {
		return engine.StatsSnapshot{}
	}
	return engine.StatsSnapshot{
		Inserts:           w.Inserts,
		Deletes:           w.Deletes,
		Updates:           w.Updates,
		Lookups:           w.Lookups,
		DeclarativeChecks: w.DeclarativeChecks,
		TriggerFirings:    w.TriggerFirings,
		IndexLookups:      w.IndexLookups,
		TuplesScanned:     w.TuplesScanned,
		VersionLSN:        w.VersionLSN,
	}
}

// WireValue is the wire form of relation.Value: a kind tag plus a string
// payload. Floats travel as hex-encoded IEEE 754 bits rather than JSON
// numbers so NaN and signed-zero survive the round trip bit-exactly.
type WireValue struct {
	T string `json:"t"`           // n | s | i | f | b
	V string `json:"v,omitempty"` // payload, kind-dependent
}

// EncodeValue converts an engine value to its wire form.
func EncodeValue(v relation.Value) WireValue {
	switch v.Kind() {
	case relation.KindString:
		return WireValue{T: "s", V: v.AsString()}
	case relation.KindInt:
		return WireValue{T: "i", V: strconv.FormatInt(v.AsInt(), 10)}
	case relation.KindFloat:
		return WireValue{T: "f", V: strconv.FormatUint(math.Float64bits(v.AsFloat()), 16)}
	case relation.KindBool:
		if v.AsBool() {
			return WireValue{T: "b", V: "1"}
		}
		return WireValue{T: "b", V: "0"}
	default:
		return WireValue{T: "n"}
	}
}

// DecodeValue converts a wire value back to an engine value.
func DecodeValue(w WireValue) (relation.Value, error) {
	switch w.T {
	case "n":
		return relation.Null(), nil
	case "s":
		return relation.NewString(w.V), nil
	case "i":
		n, err := strconv.ParseInt(w.V, 10, 64)
		if err != nil {
			return relation.Value{}, fmt.Errorf("bad int value %q", w.V)
		}
		return relation.NewInt(n), nil
	case "f":
		bits, err := strconv.ParseUint(w.V, 16, 64)
		if err != nil {
			return relation.Value{}, fmt.Errorf("bad float value %q", w.V)
		}
		return relation.NewFloat(math.Float64frombits(bits)), nil
	case "b":
		switch w.V {
		case "1":
			return relation.NewBool(true), nil
		case "0":
			return relation.NewBool(false), nil
		}
		return relation.Value{}, fmt.Errorf("bad bool value %q", w.V)
	default:
		return relation.Value{}, fmt.Errorf("unknown value kind %q", w.T)
	}
}

// EncodeTuple converts a tuple to its wire form (nil stays nil).
func EncodeTuple(t relation.Tuple) []WireValue {
	if t == nil {
		return nil
	}
	out := make([]WireValue, len(t))
	for i, v := range t {
		out[i] = EncodeValue(v)
	}
	return out
}

// DecodeTuple converts a wire tuple back to an engine tuple (nil stays nil).
func DecodeTuple(ws []WireValue) (relation.Tuple, error) {
	if ws == nil {
		return nil, nil
	}
	out := make(relation.Tuple, len(ws))
	for i, w := range ws {
		v, err := DecodeValue(w)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// EncodeOps converts batch ops to their wire form.
func EncodeOps(ops []engine.BatchOp) ([]WireOp, error) {
	out := make([]WireOp, len(ops))
	for i, op := range ops {
		var kind string
		switch op.Kind {
		case engine.BatchInsert:
			kind = OpInsert
		case engine.BatchDelete:
			kind = OpDelete
		case engine.BatchUpdate:
			kind = OpUpdate
		default:
			return nil, fmt.Errorf("unknown batch kind %d", op.Kind)
		}
		out[i] = WireOp{Kind: kind, Relation: op.Relation, Key: EncodeTuple(op.Key), Tuple: EncodeTuple(op.Tuple)}
	}
	return out, nil
}

// DecodeOps converts wire batch ops back to engine batch ops.
func DecodeOps(ws []WireOp) ([]engine.BatchOp, error) {
	out := make([]engine.BatchOp, len(ws))
	for i, w := range ws {
		var kind engine.BatchKind
		switch w.Kind {
		case OpInsert:
			kind = engine.BatchInsert
		case OpDelete:
			kind = engine.BatchDelete
		case OpUpdate:
			kind = engine.BatchUpdate
		default:
			return nil, fmt.Errorf("unknown batch kind %q", w.Kind)
		}
		key, err := DecodeTuple(w.Key)
		if err != nil {
			return nil, err
		}
		tup, err := DecodeTuple(w.Tuple)
		if err != nil {
			return nil, err
		}
		out[i] = engine.BatchOp{Kind: kind, Relation: w.Relation, Key: key, Tuple: tup}
	}
	return out, nil
}

// frameEncoder is the pooled per-write scratch: one reusable buffer holding
// the 4-byte length prefix plus the encoded body, and a json.Encoder bound
// to it for the v1 path. Both codecs assemble the whole frame here and issue
// ONE Write, so steady-state serving neither allocates a fresh body per
// frame (the old json.Marshal) nor copies it into a second framing buffer.
type frameEncoder struct {
	buf []byte
	enc *json.Encoder
}

// Write appends to the frame buffer; it is the json.Encoder's sink.
func (fe *frameEncoder) Write(p []byte) (int, error) {
	fe.buf = append(fe.buf, p...)
	return len(p), nil
}

var framePool = sync.Pool{New: func() any {
	fe := &frameEncoder{buf: make([]byte, 0, 512)}
	fe.enc = json.NewEncoder(fe)
	return fe
}}

// frameKeepCap bounds what a pooled frame buffer may retain: a rare huge
// frame should not pin its allocation in the pool forever.
const frameKeepCap = 64 << 10

// WriteFrame writes one length-prefixed v1 JSON frame: encode into a pooled
// buffer, one Write. Kept as the v1-only entrypoint (the hello handshake and
// pre-negotiation peers).
func WriteFrame(w io.Writer, v any) (int, error) {
	return WriteFrameVersion(w, ProtoVersion, v)
}

// WriteFrameVersion writes one length-prefixed frame in the given protocol
// version's codec. v must be *Request or *Response for the binary codec; the
// JSON codec takes anything marshalable.
func WriteFrameVersion(w io.Writer, version int, v any) (int, error) {
	fe := framePool.Get().(*frameEncoder)
	fe.buf = append(fe.buf[:0], 0, 0, 0, 0)
	var err error
	switch version {
	case ProtoVersion:
		// Encoder appends a trailing newline; it rides inside the frame as
		// JSON whitespace, which every decoder tolerates.
		err = fe.enc.Encode(v)
	case ProtoVersionBinary:
		switch m := v.(type) {
		case *Request:
			fe.buf, err = appendRequestBinary(fe.buf, m)
		case *Response:
			fe.buf, err = appendResponseBinary(fe.buf, m)
		default:
			err = fmt.Errorf("binary codec cannot encode %T", v)
		}
	default:
		err = fmt.Errorf("unsupported protocol version %d", version)
	}
	if err != nil {
		framePool.Put(fe)
		return 0, err
	}
	binary.BigEndian.PutUint32(fe.buf, uint32(len(fe.buf)-4))
	n, err := w.Write(fe.buf)
	if cap(fe.buf) <= frameKeepCap {
		framePool.Put(fe)
	}
	return n, err
}

// ReadFrame reads one length-prefixed frame body of at most maxFrame bytes.
// An announced length of zero or beyond the limit is a protocol violation
// (returned before reading — and before allocating — the body). io.EOF is
// returned unwrapped on a clean close before the prefix.
func ReadFrame(r io.Reader, maxFrame int) ([]byte, error) {
	return ReadFrameInto(r, maxFrame, nil)
}

// ReadFrameInto is ReadFrame with a reusable buffer: when buf's capacity
// covers the announced length the body is read into it and the returned
// slice aliases buf. Connections keep one scratch buffer and pass it here,
// so steady-state reads allocate nothing.
func ReadFrameInto(r io.Reader, maxFrame int, buf []byte) ([]byte, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("reading frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n == 0 {
		return nil, fmt.Errorf("%w: zero-length frame", ErrProtocol)
	}
	if int64(n) > int64(maxFrame) {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds limit %d", ErrProtocol, n, maxFrame)
	}
	var body []byte
	if uint64(cap(buf)) >= uint64(n) {
		body = buf[:n]
	} else {
		body = make([]byte, n)
	}
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("reading frame body: %w", err)
	}
	return body, nil
}

// DecodeRequest parses and validates one v1 JSON request frame.
func DecodeRequest(body []byte) (*Request, error) {
	return DecodeRequestVersion(body, ProtoVersion)
}

// DecodeRequestVersion parses and validates one request frame in the given
// protocol version's codec. Malformed bodies — bad JSON, bad binary, unknown
// ops, trailing bytes — are all ErrProtocol: the connection fails closed.
func DecodeRequestVersion(body []byte, version int) (*Request, error) {
	switch version {
	case ProtoVersion:
		var req Request
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("%w: bad request JSON: %v", ErrProtocol, err)
		}
		if !knownOp(req.Op) {
			return nil, fmt.Errorf("%w: unknown op %q", ErrProtocol, req.Op)
		}
		return &req, nil
	case ProtoVersionBinary:
		req, err := decodeRequestBinary(body)
		if err != nil {
			return nil, fmt.Errorf("%w: bad binary request: %v", ErrProtocol, err)
		}
		return req, nil
	}
	return nil, fmt.Errorf("%w: unsupported protocol version %d", ErrProtocol, version)
}

// DecodeResponseVersion parses one response frame in the given protocol
// version's codec.
func DecodeResponseVersion(body []byte, version int) (*Response, error) {
	switch version {
	case ProtoVersion:
		var resp Response
		if err := json.Unmarshal(body, &resp); err != nil {
			return nil, fmt.Errorf("%w: bad response JSON: %v", ErrProtocol, err)
		}
		return &resp, nil
	case ProtoVersionBinary:
		resp, err := decodeResponseBinary(body)
		if err != nil {
			return nil, fmt.Errorf("%w: bad binary response: %v", ErrProtocol, err)
		}
		return resp, nil
	}
	return nil, fmt.Errorf("%w: unsupported protocol version %d", ErrProtocol, version)
}
