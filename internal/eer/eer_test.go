package eer

import (
	"strings"
	"testing"
)

func TestFixturesValidate(t *testing.T) {
	for name, s := range map[string]*Schema{
		"fig1": Fig1(), "fig7": Fig7(),
		"fig8i": Fig8i(), "fig8ii": Fig8ii(), "fig8iii": Fig8iii(), "fig8iv": Fig8iv(),
	} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLookups(t *testing.T) {
	s := Fig7()
	if s.Entity("PERSON") == nil || s.Entity("OFFER") != nil {
		t.Error("Entity lookup")
	}
	if s.Relationship("OFFER") == nil || s.Relationship("PERSON") != nil {
		t.Error("Relationship lookup")
	}
	if !s.IsObject("PERSON") || !s.IsObject("OFFER") || s.IsObject("NOPE") {
		t.Error("IsObject")
	}
	if got := s.Parents("FACULTY"); len(got) != 1 || got[0] != "PERSON" {
		t.Errorf("Parents = %v", got)
	}
	if got := s.Children("PERSON"); len(got) != 2 {
		t.Errorf("Children = %v", got)
	}
	if got := s.RelationshipsOf("OFFER"); len(got) != 2 {
		t.Errorf("RelationshipsOf(OFFER) = %d, want TEACH and ASSIST", len(got))
	}
	if !s.IsSpecialization("FACULTY") || s.IsSpecialization("PERSON") {
		t.Error("IsSpecialization")
	}
}

func TestBinaryManyToOne(t *testing.T) {
	s := Fig7()
	many, one, ok := s.Relationship("OFFER").IsBinaryManyToOne()
	if !ok || many.Object != "COURSE" || one.Object != "DEPARTMENT" {
		t.Errorf("OFFER = %v/%v/%v", many, one, ok)
	}
	// Reversed declaration order also works.
	r := &RelationshipSet{Parts: []Participant{
		{Object: "B", Card: One}, {Object: "A", Card: Many},
	}}
	many, one, ok = r.IsBinaryManyToOne()
	if !ok || many.Object != "A" || one.Object != "B" {
		t.Error("reversed order")
	}
	mm := &RelationshipSet{Parts: []Participant{
		{Object: "A", Card: Many}, {Object: "B", Card: Many},
	}}
	if _, _, ok := mm.IsBinaryManyToOne(); ok {
		t.Error("many-to-many is not many-to-one")
	}
}

func TestValidateRejections(t *testing.T) {
	id := []Attr{{Name: "E.ID", Domain: "d"}}
	cases := []struct {
		name string
		mk   func() *Schema
	}{
		{"duplicate object", func() *Schema {
			s := New()
			s.Entities = []*EntitySet{
				{Name: "E", OwnAttrs: id, ID: []string{"E.ID"}},
				{Name: "E", OwnAttrs: id, ID: []string{"E.ID"}},
			}
			return s
		}},
		{"root without identifier", func() *Schema {
			s := New()
			s.Entities = []*EntitySet{{Name: "E", OwnAttrs: id}}
			return s
		}},
		{"identifier not own attr", func() *Schema {
			s := New()
			s.Entities = []*EntitySet{{Name: "E", OwnAttrs: id, ID: []string{"X"}}}
			return s
		}},
		{"nullable identifier", func() *Schema {
			s := New()
			s.Entities = []*EntitySet{{Name: "E",
				OwnAttrs: []Attr{{Name: "E.ID", Domain: "d", Nullable: true}},
				ID:       []string{"E.ID"}}}
			return s
		}},
		{"specialization with identifier", func() *Schema {
			s := New()
			s.Entities = []*EntitySet{
				{Name: "E", OwnAttrs: id, ID: []string{"E.ID"}},
				{Name: "F", Prefix: "F", OwnAttrs: []Attr{{Name: "F.ID", Domain: "d"}}, ID: []string{"F.ID"}},
			}
			s.ISAs = []ISA{{Child: "F", Parent: "E"}}
			return s
		}},
		{"specialization without prefix", func() *Schema {
			s := New()
			s.Entities = []*EntitySet{
				{Name: "E", OwnAttrs: id, ID: []string{"E.ID"}},
				{Name: "F"},
			}
			s.ISAs = []ISA{{Child: "F", Parent: "E"}}
			return s
		}},
		{"ISA cycle", func() *Schema {
			s := New()
			s.Entities = []*EntitySet{
				{Name: "A", Prefix: "A"},
				{Name: "B", Prefix: "B"},
			}
			s.ISAs = []ISA{{Child: "A", Parent: "B"}, {Child: "B", Parent: "A"}}
			return s
		}},
		{"self ISA", func() *Schema {
			s := New()
			s.Entities = []*EntitySet{{Name: "E", OwnAttrs: id, ID: []string{"E.ID"}}}
			s.ISAs = []ISA{{Child: "E", Parent: "E"}}
			return s
		}},
		{"relationship with one participant", func() *Schema {
			s := New()
			s.Entities = []*EntitySet{{Name: "E", OwnAttrs: id, ID: []string{"E.ID"}}}
			s.Relationships = []*RelationshipSet{{Name: "R", Prefix: "R",
				Parts: []Participant{{Object: "E", Card: Many}}}}
			return s
		}},
		{"relationship unknown participant", func() *Schema {
			s := New()
			s.Entities = []*EntitySet{{Name: "E", OwnAttrs: id, ID: []string{"E.ID"}}}
			s.Relationships = []*RelationshipSet{{Name: "R", Prefix: "R",
				Parts: []Participant{{Object: "E", Card: Many}, {Object: "X", Card: One}}}}
			return s
		}},
		{"relationship without many side", func() *Schema {
			s := New()
			s.Entities = []*EntitySet{
				{Name: "E", OwnAttrs: id, ID: []string{"E.ID"}},
				{Name: "F", OwnAttrs: []Attr{{Name: "F.ID", Domain: "d"}}, ID: []string{"F.ID"}},
			}
			s.Relationships = []*RelationshipSet{{Name: "R", Prefix: "R",
				Parts: []Participant{{Object: "E", Card: One}, {Object: "F", Card: One}}}}
			return s
		}},
		{"weak with unknown owner", func() *Schema {
			s := New()
			s.Entities = []*EntitySet{{Name: "W", Prefix: "W", Weak: true, Owner: "X",
				OwnAttrs: []Attr{{Name: "W.D", Domain: "d"}}, Discriminator: []string{"W.D"}}}
			return s
		}},
		{"weak without discriminator", func() *Schema {
			s := New()
			s.Entities = []*EntitySet{
				{Name: "E", OwnAttrs: id, ID: []string{"E.ID"}},
				{Name: "W", Prefix: "W", Weak: true, Owner: "E"},
			}
			return s
		}},
		{"copybases arity mismatch", func() *Schema {
			s := New()
			s.Entities = []*EntitySet{{Name: "E", OwnAttrs: id, ID: []string{"E.ID"},
				CopyBases: []string{"A", "B"}}}
			return s
		}},
	}
	for _, c := range cases {
		if err := c.mk().Validate(); err == nil {
			t.Errorf("%s: Validate should fail", c.name)
		}
	}
}

// §5.2 condition (1) — figure 8(iii) holds, figure 8(i) fails on (1c).
func TestCondition1(t *testing.T) {
	if err := Fig8iii().CheckCondition1("PERSON", []string{"FACULTY", "STUDENT"}); err != nil {
		t.Errorf("figure 8(iii) should satisfy condition (1): %v", err)
	}
	err := Fig8i().CheckCondition1("VEHICLE", []string{"CAR", "TRUCK"})
	if err == nil || !strings.Contains(err.Error(), "(1c)") {
		t.Errorf("figure 8(i) should fail condition (1c), got %v", err)
	}

	// (1b): a specialization participating in a relationship.
	s := Fig8iii()
	s.Entities = append(s.Entities, &EntitySet{
		Name: "DEPARTMENT", Prefix: "D",
		OwnAttrs: []Attr{{Name: "D.NAME", Domain: domDeptName}},
		ID:       []string{"D.NAME"},
	})
	s.Relationships = []*RelationshipSet{{
		Name: "ADVISES", Prefix: "AD",
		Parts: []Participant{
			{Object: "FACULTY", Card: Many},
			{Object: "DEPARTMENT", Card: One},
		},
	}}
	err = s.CheckCondition1("PERSON", []string{"FACULTY", "STUDENT"})
	if err == nil || !strings.Contains(err.Error(), "(1b)") {
		t.Errorf("want (1b) failure, got %v", err)
	}

	// (1a): a nested specialization.
	s2 := Fig8iii()
	s2.Entities = append(s2.Entities, &EntitySet{
		Name: "GRAD", Prefix: "G",
		OwnAttrs: []Attr{{Name: "G.PROGRAM", Domain: "program"}},
	})
	s2.ISAs = append(s2.ISAs, ISA{Child: "GRAD", Parent: "STUDENT"})
	err = s2.CheckCondition1("PERSON", []string{"FACULTY", "STUDENT"})
	if err == nil || !strings.Contains(err.Error(), "(1a)") {
		t.Errorf("want (1a) failure, got %v", err)
	}

	if Fig8iii().CheckCondition1("NOPE", nil) == nil {
		t.Error("unknown entity")
	}
	if Fig8iii().CheckCondition1("PERSON", []string{"NOPE"}) == nil {
		t.Error("unknown specialization")
	}
}

// §5.2 condition (2) — figure 8(iv) holds, figure 8(ii) fails on (2a).
func TestCondition2(t *testing.T) {
	if err := Fig8iv().CheckCondition2("COURSE", []string{"OFFER", "TEACH"}); err != nil {
		t.Errorf("figure 8(iv) should satisfy condition (2): %v", err)
	}
	err := Fig8ii().CheckCondition2("EMPLOYEE", []string{"WORKS", "BELONGS"})
	if err == nil || !strings.Contains(err.Error(), "(2a)") {
		t.Errorf("figure 8(ii) should fail condition (2a), got %v", err)
	}

	// Figure 7: OFFER with TEACH and ASSIST satisfies condition (2) — the
	// paper's §5.2 example — but COURSE with OFFER/TEACH/ASSIST does not
	// (TEACH involves OFFER, not COURSE).
	fig7 := Fig7()
	if err := fig7.CheckCondition2("OFFER", []string{"TEACH", "ASSIST"}); err != nil {
		t.Errorf("figure 7 OFFER/TEACH/ASSIST should satisfy condition (2): %v", err)
	}
	if fig7.CheckCondition2("COURSE", []string{"OFFER", "TEACH", "ASSIST"}) == nil {
		t.Error("COURSE with TEACH should fail condition (2)")
	}
	// OFFER alone under COURSE is fine... except OFFER is itself involved in
	// TEACH and ASSIST, failing (2b).
	err = fig7.CheckCondition2("COURSE", []string{"OFFER"})
	if err == nil || !strings.Contains(err.Error(), "(2b)") {
		t.Errorf("want (2b) failure for OFFER, got %v", err)
	}

	// (2c): a weak one-side entity.
	s := Fig8iv()
	s.Entities = append(s.Entities, &EntitySet{
		Name: "SECTION", Prefix: "SEC", Weak: true, Owner: "DEPARTMENT",
		OwnAttrs:      []Attr{{Name: "SEC.NR", Domain: "secnr"}},
		Discriminator: []string{"SEC.NR"},
	})
	s.Relationships = append(s.Relationships, &RelationshipSet{
		Name: "HOSTS", Prefix: "H",
		Parts: []Participant{
			{Object: "COURSE", Card: Many},
			{Object: "SECTION", Card: One},
		},
	})
	err = s.CheckCondition2("COURSE", []string{"HOSTS"})
	if err == nil || !strings.Contains(err.Error(), "(2c)") {
		t.Errorf("want (2c) failure, got %v", err)
	}

	if Fig8iv().CheckCondition2("NOPE", nil) == nil {
		t.Error("unknown object")
	}
	if Fig8iv().CheckCondition2("COURSE", []string{"NOPE"}) == nil {
		t.Error("unknown relationship")
	}
}

func TestWeakDependentsAndIdentifier(t *testing.T) {
	s := New()
	s.Entities = []*EntitySet{
		{Name: "B", Prefix: "B", OwnAttrs: []Attr{{Name: "B.N", Domain: "d"}}, ID: []string{"B.N"}, CopyBases: []string{"N"}},
		{Name: "R", Prefix: "R", Weak: true, Owner: "B",
			OwnAttrs: []Attr{{Name: "R.NR", Domain: "e"}}, Discriminator: []string{"R.NR"}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.WeakDependents("B"); len(got) != 1 || got[0].Name != "R" {
		t.Errorf("WeakDependents = %v", got)
	}
	if got := s.identifierArity(s.Entity("R")); len(got) != 2 {
		t.Errorf("weak identifier arity = %v", got)
	}
}

func TestCardinalityString(t *testing.T) {
	if One.String() != "1" || Many.String() != "M" {
		t.Error("Cardinality.String")
	}
}
