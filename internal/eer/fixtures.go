package eer

// Paper fixtures: the EER schemas of figures 1, 7, and 8 of Markowitz
// (ICDE 1992). Domain names match the figures package so the relational
// translations line up with the figure 3 fixture.

const (
	domSSN      = "ssn"
	domCourseNr = "course_nr"
	domDeptName = "dept_name"
	domProjNr   = "project_nr"
	domDate     = "date"
)

// Fig1 builds the ER schema of figure 1(i): EMPLOYEE and PROJECT entity-sets
// with the WORKS (many-to-one, with a DATE attribute) and MANAGES
// (many-to-one) relationship-sets.
func Fig1() *Schema {
	s := New()
	s.Entities = []*EntitySet{
		{
			Name: "PROJECT", Prefix: "PJ",
			OwnAttrs: []Attr{{Name: "PJ.NR", Domain: domProjNr}},
			ID:       []string{"PJ.NR"},
			// Copies of PROJECT's identifier appear as <prefix>.NR.
			CopyBases: []string{"NR"},
		},
		{
			Name: "EMPLOYEE", Prefix: "E",
			OwnAttrs:  []Attr{{Name: "E.SSN", Domain: domSSN}},
			ID:        []string{"E.SSN"},
			CopyBases: []string{"SSN"},
		},
	}
	s.Relationships = []*RelationshipSet{
		{
			Name: "WORKS", Prefix: "W",
			Parts: []Participant{
				{Object: "EMPLOYEE", Card: Many},
				{Object: "PROJECT", Card: One},
			},
			OwnAttrs: []Attr{{Name: "W.DATE", Domain: domDate}},
		},
		{
			Name: "MANAGES", Prefix: "M",
			Parts: []Participant{
				{Object: "EMPLOYEE", Card: Many},
				{Object: "PROJECT", Card: One},
			},
		},
	}
	return s
}

// Fig7 builds the EER schema of figure 7: the university schema whose
// Markowitz–Shoshani relational translation is exactly figure 3. PERSON is
// generalized into FACULTY and STUDENT; OFFER is a many-to-one
// relationship-set from COURSE to DEPARTMENT; TEACH and ASSIST are
// many-to-one relationship-sets from OFFER (a relationship-set participant)
// to FACULTY and STUDENT respectively.
func Fig7() *Schema {
	s := New()
	s.Entities = []*EntitySet{
		{
			Name: "PERSON", Prefix: "P",
			OwnAttrs:  []Attr{{Name: "P.SSN", Domain: domSSN}},
			ID:        []string{"P.SSN"},
			CopyBases: []string{"SSN"},
		},
		{Name: "FACULTY", Prefix: "F"},
		{Name: "STUDENT", Prefix: "S"},
		{
			Name: "COURSE", Prefix: "C",
			OwnAttrs: []Attr{{Name: "C.NR", Domain: domCourseNr}},
			ID:       []string{"C.NR"},
		},
		{
			Name: "DEPARTMENT", Prefix: "D",
			OwnAttrs: []Attr{{Name: "D.NAME", Domain: domDeptName}},
			ID:       []string{"D.NAME"},
		},
	}
	s.ISAs = []ISA{
		{Child: "FACULTY", Parent: "PERSON"},
		{Child: "STUDENT", Parent: "PERSON"},
	}
	s.Relationships = []*RelationshipSet{
		{
			Name: "OFFER", Prefix: "O",
			Parts: []Participant{
				{Object: "COURSE", Card: Many},
				{Object: "DEPARTMENT", Card: One},
			},
		},
		{
			Name: "TEACH", Prefix: "T",
			Parts: []Participant{
				{Object: "OFFER", Card: Many},
				{Object: "FACULTY", Card: One},
			},
		},
		{
			Name: "ASSIST", Prefix: "A",
			Parts: []Participant{
				{Object: "OFFER", Card: Many},
				{Object: "STUDENT", Card: One},
			},
		},
	}
	return s
}

// Fig8i builds the figure 8(i) structure: a generalization hierarchy whose
// specialization entity-sets have several own attributes each, so a
// single-relation representation needs general null constraints
// (condition (1c) of section 5.2 fails).
func Fig8i() *Schema {
	s := New()
	s.Entities = []*EntitySet{
		{
			Name: "VEHICLE", Prefix: "V",
			OwnAttrs:  []Attr{{Name: "V.VIN", Domain: "vin"}},
			ID:        []string{"V.VIN"},
			CopyBases: []string{"VIN"},
		},
		{
			Name: "CAR", Prefix: "CAR",
			OwnAttrs: []Attr{
				{Name: "CAR.DOORS", Domain: "count"},
				{Name: "CAR.TRUNK", Domain: "volume"},
			},
		},
		{
			Name: "TRUCK", Prefix: "TRK",
			OwnAttrs: []Attr{
				{Name: "TRK.AXLES", Domain: "count"},
				{Name: "TRK.PAYLOAD", Domain: "weight"},
			},
		},
	}
	s.ISAs = []ISA{
		{Child: "CAR", Parent: "VEHICLE"},
		{Child: "TRUCK", Parent: "VEHICLE"},
	}
	return s
}

// Fig8ii builds the figure 8(ii) structure: an entity-set involved with Many
// cardinality in binary many-to-one relationship-sets that carry attributes,
// so a single-relation representation needs general null constraints
// (condition (2a) of section 5.2 fails).
func Fig8ii() *Schema {
	s := New()
	s.Entities = []*EntitySet{
		{
			Name: "EMPLOYEE", Prefix: "E",
			OwnAttrs:  []Attr{{Name: "E.SSN", Domain: domSSN}},
			ID:        []string{"E.SSN"},
			CopyBases: []string{"SSN"},
		},
		{
			Name: "PROJECT", Prefix: "PJ",
			OwnAttrs:  []Attr{{Name: "PJ.NR", Domain: domProjNr}},
			ID:        []string{"PJ.NR"},
			CopyBases: []string{"NR"},
		},
		{
			Name: "DEPARTMENT", Prefix: "D",
			OwnAttrs: []Attr{{Name: "D.NAME", Domain: domDeptName}},
			ID:       []string{"D.NAME"},
		},
	}
	s.Relationships = []*RelationshipSet{
		{
			Name: "WORKS", Prefix: "W",
			Parts: []Participant{
				{Object: "EMPLOYEE", Card: Many},
				{Object: "PROJECT", Card: One},
			},
			OwnAttrs: []Attr{{Name: "W.DATE", Domain: domDate}},
		},
		{
			Name: "BELONGS", Prefix: "B",
			Parts: []Participant{
				{Object: "EMPLOYEE", Card: Many},
				{Object: "DEPARTMENT", Card: One},
			},
			OwnAttrs: []Attr{{Name: "B.SINCE", Domain: domDate}},
		},
	}
	return s
}

// Fig8iii builds the figure 8(iii) structure: a generalization hierarchy
// whose specializations each have exactly one own attribute, no further
// specializations, and no relationship participation — representable by a
// single relation with only nulls-not-allowed constraints (condition (1)).
func Fig8iii() *Schema {
	s := New()
	s.Entities = []*EntitySet{
		{
			Name: "PERSON", Prefix: "P",
			OwnAttrs:  []Attr{{Name: "P.SSN", Domain: domSSN}},
			ID:        []string{"P.SSN"},
			CopyBases: []string{"SSN"},
		},
		{
			Name: "FACULTY", Prefix: "F",
			OwnAttrs: []Attr{{Name: "F.RANK", Domain: "rank"}},
		},
		{
			Name: "STUDENT", Prefix: "S",
			OwnAttrs: []Attr{{Name: "S.YEAR", Domain: "year"}},
		},
	}
	s.ISAs = []ISA{
		{Child: "FACULTY", Parent: "PERSON"},
		{Child: "STUDENT", Parent: "PERSON"},
	}
	return s
}

// Fig8iv builds the figure 8(iv) structure: an entity-set involved with Many
// cardinality in attribute-less binary many-to-one relationship-sets whose
// one-side entity-sets are strong with single-attribute identifiers —
// representable by a single relation with only nulls-not-allowed constraints
// (condition (2)).
func Fig8iv() *Schema {
	s := New()
	s.Entities = []*EntitySet{
		{
			Name: "COURSE", Prefix: "C",
			OwnAttrs: []Attr{{Name: "C.NR", Domain: domCourseNr}},
			ID:       []string{"C.NR"},
		},
		{
			Name: "DEPARTMENT", Prefix: "D",
			OwnAttrs: []Attr{{Name: "D.NAME", Domain: domDeptName}},
			ID:       []string{"D.NAME"},
		},
		{
			Name: "FACULTY", Prefix: "F",
			OwnAttrs: []Attr{{Name: "F.SSN", Domain: domSSN}},
			ID:       []string{"F.SSN"},
		},
	}
	s.Relationships = []*RelationshipSet{
		{
			Name: "OFFER", Prefix: "O",
			Parts: []Participant{
				{Object: "COURSE", Card: Many},
				{Object: "DEPARTMENT", Card: One},
			},
		},
		{
			Name: "TEACH", Prefix: "T",
			Parts: []Participant{
				{Object: "COURSE", Card: Many},
				{Object: "FACULTY", Card: One},
			},
		},
	}
	return s
}
