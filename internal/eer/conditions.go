package eer

import (
	"fmt"
)

// CheckCondition1 verifies condition (1) of section 5.2: the entity-set and
// the given specialization entity-sets can be represented by a single
// relation-scheme involving only nulls-not-allowed constraints, provided
// every specialization
//
//	(a) has no specializations of its own and is directly generalized only
//	    by the given entity-set,
//	(b) is not involved in relationship-sets or weak entity-sets, and
//	(c) has exactly one (not inherited) attribute of its own.
//
// This is the figure 8(iii) structure. A nil error means the condition
// holds.
func (s *Schema) CheckCondition1(entity string, specs []string) error {
	if s.Entity(entity) == nil {
		return fmt.Errorf("eer: unknown entity-set %s", entity)
	}
	for _, sp := range specs {
		e := s.Entity(sp)
		if e == nil {
			return fmt.Errorf("eer: unknown entity-set %s", sp)
		}
		// (a)
		if len(s.Children(sp)) > 0 {
			return fmt.Errorf("eer: condition (1a) fails: %s has specializations of its own", sp)
		}
		parents := s.Parents(sp)
		if len(parents) != 1 || parents[0] != entity {
			return fmt.Errorf("eer: condition (1a) fails: %s is not generalized only by %s", sp, entity)
		}
		// (b)
		if len(s.RelationshipsOf(sp)) > 0 {
			return fmt.Errorf("eer: condition (1b) fails: %s participates in a relationship-set", sp)
		}
		if len(s.WeakDependents(sp)) > 0 {
			return fmt.Errorf("eer: condition (1b) fails: %s owns a weak entity-set", sp)
		}
		// (c)
		if len(e.OwnAttrs) != 1 {
			return fmt.Errorf("eer: condition (1c) fails: %s has %d own attributes, want exactly 1", sp, len(e.OwnAttrs))
		}
	}
	return nil
}

// CheckCondition2 verifies condition (2) of section 5.2: the object-set and
// the given binary many-to-one relationship-sets (in which the object-set
// participates with Many cardinality) can be represented by a single
// relation-scheme involving only nulls-not-allowed constraints, provided
// every relationship-set
//
//	(a) has no attributes,
//	(b) is not involved in any other relationship-set, and
//	(c) associates the object-set with entity-sets that are not weak and
//	    have single-attribute identifiers.
//
// This is the figure 8(iv) structure. A nil error means the condition holds.
func (s *Schema) CheckCondition2(object string, rels []string) error {
	if !s.IsObject(object) {
		return fmt.Errorf("eer: unknown object-set %s", object)
	}
	for _, rn := range rels {
		r := s.Relationship(rn)
		if r == nil {
			return fmt.Errorf("eer: unknown relationship-set %s", rn)
		}
		many, one, ok := r.IsBinaryManyToOne()
		if !ok {
			return fmt.Errorf("eer: condition (2) fails: %s is not binary many-to-one", rn)
		}
		if many.Object != object {
			return fmt.Errorf("eer: condition (2) fails: %s does not involve %s with Many cardinality", rn, object)
		}
		// (a)
		if len(r.OwnAttrs) > 0 {
			return fmt.Errorf("eer: condition (2a) fails: %s has attributes", rn)
		}
		// (b)
		if len(s.RelationshipsOf(rn)) > 0 {
			return fmt.Errorf("eer: condition (2b) fails: %s is involved in another relationship-set", rn)
		}
		if len(s.WeakDependents(rn)) > 0 {
			return fmt.Errorf("eer: condition (2b) fails: %s owns a weak entity-set", rn)
		}
		// (c)
		target := s.Entity(one.Object)
		if target == nil {
			return fmt.Errorf("eer: condition (2c) fails: %s associates %s with %s, which is not an entity-set", rn, object, one.Object)
		}
		if target.Weak {
			return fmt.Errorf("eer: condition (2c) fails: %s is weak", one.Object)
		}
		if len(s.identifierArity(target)) != 1 {
			return fmt.Errorf("eer: condition (2c) fails: %s has a composite identifier", one.Object)
		}
	}
	return nil
}

// identifierArity returns the (inherited) identifier attribute names of an
// entity-set — for a specialization, the parent chain is followed.
func (s *Schema) identifierArity(e *EntitySet) []string {
	if len(e.ID) > 0 {
		return e.ID
	}
	if e.Weak {
		owner := s.Entity(e.Owner)
		if owner == nil {
			return nil
		}
		return append(s.identifierArity(owner), e.Discriminator...)
	}
	parents := s.Parents(e.Name)
	if len(parents) == 0 {
		return nil
	}
	parent := s.Entity(parents[0])
	if parent == nil {
		return nil
	}
	return s.identifierArity(parent)
}
