// Package eer models the Extended Entity-Relationship schemas of
// Markowitz–Shoshani (reference [11] of Markowitz, ICDE 1992): entity-sets
// (including weak entity-sets), relationship-sets whose participants may be
// entity-sets or other relationship-sets, ISA generalization, and attributes
// with null-value restrictions. It also implements the structural conditions
// of section 5.2 of the paper — the figure 8 recognizers characterizing when
// multiple object-sets can be represented by a single relation-scheme with
// only nulls-not-allowed constraints.
package eer

import (
	"fmt"
)

// Cardinality of a relationship participant.
type Cardinality int

// Participation cardinalities. In a binary many-to-one relationship-set the
// "many" side contributes the key of the relationship's relational
// translation.
const (
	One Cardinality = iota
	Many
)

// String renders the cardinality.
func (c Cardinality) String() string {
	if c == One {
		return "1"
	}
	return "M"
}

// Attr is an EER attribute: its relational name (the paper assigns globally
// unique qualified names at translation time, so the name is declared here),
// a domain, and a null-value restriction (Nullable false translates to a
// nulls-not-allowed constraint).
type Attr struct {
	Name     string
	Domain   string
	Nullable bool
	// MultiValued marks a set-valued attribute: the relational translation
	// gives it its own relation-scheme keyed by the owner's identifier copy
	// plus the value (the Markowitz–Shoshani treatment of multi-valued EER
	// attributes). Identifier attributes cannot be multi-valued.
	MultiValued bool
}

// EntitySet is an entity-set. A root entity-set declares its identifier
// among its own attributes; a specialization entity-set (one that appears as
// the child of an ISA link) declares no identifier and inherits it from its
// parent(s). A weak entity-set names its owner and declares a discriminator:
// its identifier is the owner's identifier copy plus the discriminator.
type EntitySet struct {
	Name string
	// Prefix qualifies inherited identifier copies (e.g. FACULTY with prefix
	// "F" copies PERSON's identifier base "SSN" as "F.SSN").
	Prefix string
	// OwnAttrs are the entity-set's own (not inherited) attributes.
	OwnAttrs []Attr
	// ID names the identifier attributes (subset of OwnAttrs) for root
	// entity-sets; empty for specializations.
	ID []string
	// CopyBases optionally overrides, per identifier attribute, the base
	// name used when another object-set copies this identifier (defaults to
	// the identifier attribute names). E.g. PERSON's P.SSN has copy base
	// "SSN" so FACULTY's copy is "F.SSN", not "F.P.SSN".
	CopyBases []string
	// Weak marks a weak entity-set; Owner names the identifying owner and
	// Discriminator the own attributes extending the owner's identifier.
	Weak          bool
	Owner         string
	Discriminator []string
}

// Participant is one leg of a relationship-set: an object-set (entity-set or
// relationship-set) with a cardinality.
type Participant struct {
	Object string
	Card   Cardinality
}

// RelationshipSet is a relationship-set over two or more participants, with
// optional attributes of its own.
type RelationshipSet struct {
	Name     string
	Prefix   string
	Parts    []Participant
	OwnAttrs []Attr
}

// ManyParticipants returns the participants with Many cardinality.
func (r *RelationshipSet) ManyParticipants() []Participant {
	var out []Participant
	for _, p := range r.Parts {
		if p.Card == Many {
			out = append(out, p)
		}
	}
	return out
}

// IsBinaryManyToOne reports whether the relationship-set is binary with
// exactly one Many and one One participant, returning them.
func (r *RelationshipSet) IsBinaryManyToOne() (many, one Participant, ok bool) {
	if len(r.Parts) != 2 {
		return Participant{}, Participant{}, false
	}
	a, b := r.Parts[0], r.Parts[1]
	switch {
	case a.Card == Many && b.Card == One:
		return a, b, true
	case a.Card == One && b.Card == Many:
		return b, a, true
	default:
		return Participant{}, Participant{}, false
	}
}

// ISA is a generalization link: Child is a specialization of Parent.
type ISA struct {
	Child  string
	Parent string
}

// Schema is an EER schema: entity-sets, relationship-sets, and ISA links,
// in declaration order.
type Schema struct {
	Entities      []*EntitySet
	Relationships []*RelationshipSet
	ISAs          []ISA
}

// New returns an empty EER schema.
func New() *Schema { return &Schema{} }

// Entity returns the named entity-set, or nil.
func (s *Schema) Entity(name string) *EntitySet {
	for _, e := range s.Entities {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// Relationship returns the named relationship-set, or nil.
func (s *Schema) Relationship(name string) *RelationshipSet {
	for _, r := range s.Relationships {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// IsObject reports whether the name denotes any object-set.
func (s *Schema) IsObject(name string) bool {
	return s.Entity(name) != nil || s.Relationship(name) != nil
}

// Parents returns the generalization parents of the entity-set.
func (s *Schema) Parents(child string) []string {
	var out []string
	for _, isa := range s.ISAs {
		if isa.Child == child {
			out = append(out, isa.Parent)
		}
	}
	return out
}

// Children returns the direct specializations of the entity-set.
func (s *Schema) Children(parent string) []string {
	var out []string
	for _, isa := range s.ISAs {
		if isa.Parent == parent {
			out = append(out, isa.Child)
		}
	}
	return out
}

// RelationshipsOf returns the relationship-sets in which the object-set
// participates.
func (s *Schema) RelationshipsOf(object string) []*RelationshipSet {
	var out []*RelationshipSet
	for _, r := range s.Relationships {
		for _, p := range r.Parts {
			if p.Object == object {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// WeakDependents returns the weak entity-sets owned by the object-set.
func (s *Schema) WeakDependents(owner string) []*EntitySet {
	var out []*EntitySet
	for _, e := range s.Entities {
		if e.Weak && e.Owner == owner {
			out = append(out, e)
		}
	}
	return out
}

// IsSpecialization reports whether the entity-set has a generalization
// parent.
func (s *Schema) IsSpecialization(name string) bool {
	return len(s.Parents(name)) > 0
}

// Validate checks structural well-formedness of the EER schema.
func (s *Schema) Validate() error {
	names := make(map[string]bool)
	for _, e := range s.Entities {
		if e.Name == "" {
			return fmt.Errorf("eer: entity-set with empty name")
		}
		if names[e.Name] {
			return fmt.Errorf("eer: duplicate object-set %s", e.Name)
		}
		names[e.Name] = true
		if err := s.validateEntity(e); err != nil {
			return err
		}
	}
	for _, r := range s.Relationships {
		if r.Name == "" {
			return fmt.Errorf("eer: relationship-set with empty name")
		}
		if names[r.Name] {
			return fmt.Errorf("eer: duplicate object-set %s", r.Name)
		}
		names[r.Name] = true
	}
	for _, r := range s.Relationships {
		if len(r.Parts) < 2 {
			return fmt.Errorf("eer: relationship-set %s needs at least two participants", r.Name)
		}
		for _, p := range r.Parts {
			if !s.IsObject(p.Object) {
				return fmt.Errorf("eer: relationship-set %s references unknown object-set %s", r.Name, p.Object)
			}
			if p.Object == r.Name {
				return fmt.Errorf("eer: relationship-set %s cannot participate in itself", r.Name)
			}
		}
		if len(r.ManyParticipants()) == 0 {
			return fmt.Errorf("eer: relationship-set %s has no Many participant (unsupported)", r.Name)
		}
	}
	for _, isa := range s.ISAs {
		if s.Entity(isa.Child) == nil || s.Entity(isa.Parent) == nil {
			return fmt.Errorf("eer: ISA %s → %s references unknown entity-set", isa.Child, isa.Parent)
		}
		if isa.Child == isa.Parent {
			return fmt.Errorf("eer: ISA %s is self-referential", isa.Child)
		}
	}
	if cycle := s.isaCycle(); cycle != "" {
		return fmt.Errorf("eer: generalization cycle through %s", cycle)
	}
	return nil
}

func (s *Schema) validateEntity(e *EntitySet) error {
	attrNames := make(map[string]bool, len(e.OwnAttrs))
	for _, a := range e.OwnAttrs {
		if a.Name == "" || a.Domain == "" {
			return fmt.Errorf("eer: entity-set %s has an attribute without name or domain", e.Name)
		}
		if attrNames[a.Name] {
			return fmt.Errorf("eer: entity-set %s duplicates attribute %s", e.Name, a.Name)
		}
		attrNames[a.Name] = true
	}
	isSpec := s.IsSpecialization(e.Name)
	switch {
	case e.Weak:
		if s.Entity(e.Owner) == nil {
			return fmt.Errorf("eer: weak entity-set %s has unknown owner %s", e.Name, e.Owner)
		}
		if len(e.Discriminator) == 0 {
			return fmt.Errorf("eer: weak entity-set %s needs a discriminator", e.Name)
		}
		for _, d := range e.Discriminator {
			if !attrNames[d] {
				return fmt.Errorf("eer: weak entity-set %s discriminator %s is not an own attribute", e.Name, d)
			}
		}
	case isSpec:
		if len(e.ID) > 0 {
			return fmt.Errorf("eer: specialization entity-set %s must inherit its identifier", e.Name)
		}
		if e.Prefix == "" {
			return fmt.Errorf("eer: specialization entity-set %s needs a prefix for its identifier copy", e.Name)
		}
	default:
		if len(e.ID) == 0 {
			return fmt.Errorf("eer: root entity-set %s has no identifier", e.Name)
		}
		for _, id := range e.ID {
			if !attrNames[id] {
				return fmt.Errorf("eer: entity-set %s identifier %s is not an own attribute", e.Name, id)
			}
		}
		for _, id := range e.ID {
			for _, a := range e.OwnAttrs {
				if a.Name != id {
					continue
				}
				if a.Nullable {
					return fmt.Errorf("eer: identifier attribute %s of %s cannot be nullable", id, e.Name)
				}
				if a.MultiValued {
					return fmt.Errorf("eer: identifier attribute %s of %s cannot be multi-valued", id, e.Name)
				}
			}
		}
		if len(e.CopyBases) != 0 && len(e.CopyBases) != len(e.ID) {
			return fmt.Errorf("eer: entity-set %s CopyBases must match its identifier arity", e.Name)
		}
	}
	return nil
}

func (s *Schema) isaCycle() string {
	const (
		unseen = iota
		open
		done
	)
	color := make(map[string]int)
	var visit func(string) string
	visit = func(n string) string {
		switch color[n] {
		case open:
			return n
		case done:
			return ""
		}
		color[n] = open
		for _, p := range s.Parents(n) {
			if c := visit(p); c != "" {
				return c
			}
		}
		color[n] = done
		return ""
	}
	for _, e := range s.Entities {
		if c := visit(e.Name); c != "" {
			return c
		}
	}
	return ""
}
