GO ?= go

.PHONY: check fmt vet metriclint build test race stress crash serve-test shard-test proto-test repl-test advise-test fuzz-short probe bench benchjson

## check: the full CI gate — formatting, vet, metric-name lint, build, tests under the race detector, concurrency stress, crash recovery, client/server serving, shard routing, wire protocol (negotiation + golden vectors + short fuzz), replication, adaptive merging, and the quick probes (read-under-write + cross-shard IND)
check: fmt vet metriclint build race stress crash serve-test shard-test proto-test repl-test advise-test probe

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

## metriclint: every registered metric name is unique and follows the naming convention
metriclint:
	$(GO) run ./scripts/metriclint .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## stress: the concurrency stress suite, fresh (uncached) under the race detector
stress:
	$(GO) test -race -count=1 -run 'Stress|Concurrent|Mixed' ./internal/engine/ ./internal/workload/ ./internal/attrset/

## crash: the crash-recovery suite — WAL replay, failpoint injection, the recovery property matrix — fresh under the race detector
crash:
	$(GO) test -race -count=1 -run 'Crash|Failpoint|Recovery|WAL' ./internal/wal/ ./internal/engine/

## serve-test: the service-layer suite — wire protocol (incl. fuzz seeds), admission control, graceful drain, the kill-server-mid-batch crash test, and the cross-backend Session conformance suite — fresh under the race detector
serve-test:
	$(GO) test -race -count=1 -run 'Session|Remote|Serve|Frame|Wire|Protocol|Admission|Deadline|Drain|Kill|Coalesc|Client|Stats|Code|Sentinels' ./internal/server/ ./pkg/relmerge/

## shard-test: the sharding suite — hash golden vectors, cross-shard IND enforcement and stress, durable reopen — fresh under the race detector (the three-backend Session conformance suite, which includes the sharded router, runs under serve-test)
shard-test:
	$(GO) test -race -count=1 -run 'HashKey|Router|CrossShard|Shard|NonKeyIND|ProbeCache' ./internal/shard/

## proto-test: the wire-protocol suite — version negotiation matrix, binary golden vectors, codec round trips, encode allocation budget — fresh under the race detector, then a short fuzz of both codecs
proto-test:
	$(GO) test -race -count=1 -run 'Negotiation|Golden|Binary|Version|Fallback|Taxonomy|WriteFrame|EncodeAllocs' ./internal/server/
	$(GO) test -run xxx -fuzz FuzzBinaryRoundTrip -fuzztime 10s ./internal/server/
	$(GO) test -run xxx -fuzz FuzzReadFrame -fuzztime 10s ./internal/server/

## repl-test: the replication suite — WAL streaming and shipped-commit validation, follower catch-up, failover promotion, stream-fault (gap/reorder/duplicate) refusal, and the follower Session conformance reads — fresh under the race detector
repl-test:
	$(GO) test -race -count=1 -run 'Repl|Follower|Promote|Failover|Ship|Stream|Snapshot|Checkpoint' ./internal/wal/ ./internal/engine/ ./internal/repl/ ./pkg/relmerge/

## advise-test: the adaptive-merging suite — live schema migration (engine + router), the migration crash matrix, co-access measurement, the online decision policy, and the public Advise/ApplyRecommendation API — fresh under the race detector
advise-test:
	$(GO) test -race -count=1 -run 'Migrate|CoAccess|Decide|Apply|Advis|CostModelFromStats' ./internal/engine/ ./internal/shard/ ./internal/advisor/... ./pkg/relmerge/

## fuzz-short: a longer fuzz pass over the wire codecs (frame reader + binary round trip)
fuzz-short:
	$(GO) test -run xxx -fuzz FuzzBinaryRoundTrip -fuzztime 60s ./internal/server/
	$(GO) test -run xxx -fuzz FuzzReadFrame -fuzztime 60s ./internal/server/

## probe: the quick gates — the MVCC read path stays lock-free beside a saturating writer, and cross-shard routing exercises the IND probe path and rejects dangling keys
probe:
	$(GO) run ./cmd/benchreport -probe

bench:
	$(GO) test -bench . -benchmem -run xxx ./internal/attrset/ ./internal/fd/

## benchjson: regenerate the machine-readable perf report committed as BENCH_PR10.json
benchjson:
	$(GO) run ./cmd/benchreport -json BENCH_PR10.json
