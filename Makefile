GO ?= go

.PHONY: check fmt vet metriclint build test race stress crash serve-test probe bench benchjson

## check: the full CI gate — formatting, vet, metric-name lint, build, tests under the race detector, concurrency stress, crash recovery, client/server serving, and the quick read-under-write probe
check: fmt vet metriclint build race stress crash serve-test probe

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

## metriclint: every registered metric name is unique and follows the naming convention
metriclint:
	$(GO) run ./scripts/metriclint .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## stress: the concurrency stress suite, fresh (uncached) under the race detector
stress:
	$(GO) test -race -count=1 -run 'Stress|Concurrent|Mixed' ./internal/engine/ ./internal/workload/ ./internal/attrset/

## crash: the crash-recovery suite — WAL replay, failpoint injection, the recovery property matrix — fresh under the race detector
crash:
	$(GO) test -race -count=1 -run 'Crash|Failpoint|Recovery|WAL' ./internal/wal/ ./internal/engine/

## serve-test: the service-layer suite — wire protocol (incl. fuzz seeds), admission control, graceful drain, the kill-server-mid-batch crash test, and the cross-backend Session conformance suite — fresh under the race detector
serve-test:
	$(GO) test -race -count=1 -run 'Session|Remote|Serve|Frame|Wire|Protocol|Admission|Deadline|Drain|Kill|Coalesc|Client|Stats|Code|Sentinels' ./internal/server/ ./pkg/relmerge/

## probe: the quick read-under-write check — the MVCC read path stays lock-free and makes progress beside a saturating writer
probe:
	$(GO) run ./cmd/benchreport -probe

bench:
	$(GO) test -bench . -benchmem -run xxx ./internal/attrset/ ./internal/fd/

## benchjson: regenerate the machine-readable perf report committed as BENCH_PR6.json
benchjson:
	$(GO) run ./cmd/benchreport -json BENCH_PR6.json
