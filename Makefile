GO ?= go

.PHONY: check fmt vet build test race bench benchjson

## check: the full CI gate — formatting, vet, build, tests under the race detector
check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run xxx ./internal/attrset/ ./internal/fd/

## benchjson: regenerate the machine-readable perf report committed as BENCH_PR1.json
benchjson:
	$(GO) run ./cmd/benchreport -json BENCH_PR1.json
