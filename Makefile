GO ?= go

.PHONY: check fmt vet metriclint build test race bench benchjson

## check: the full CI gate — formatting, vet, metric-name lint, build, tests under the race detector
check: fmt vet metriclint build race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

## metriclint: every registered metric name is unique and follows the naming convention
metriclint:
	$(GO) run ./scripts/metriclint .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run xxx ./internal/attrset/ ./internal/fd/

## benchjson: regenerate the machine-readable perf report committed as BENCH_PR2.json
benchjson:
	$(GO) run ./cmd/benchreport -json BENCH_PR2.json
