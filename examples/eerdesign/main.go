// EER design: the SDT pipeline of section 6 — write an EER schema in the
// DSL, translate it to a BCNF relational schema, let the planner find every
// merge set that Proposition 5.2 certifies as safe for declarative-only
// systems, and emit the DDL for both design options.
package main

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ddl"
	"repro/internal/sdl"
	"repro/internal/translate"
)

// A hospital flavour of the figure 8(iv) structure: PATIENT is involved with
// Many cardinality in three attribute-less many-to-one relationship-sets,
// plus a generalization and an independent relationship that stays outside
// any merge.
const hospital = `
entity PERSON prefix P attrs (P.ID person_id) id (P.ID) copybase (ID)
specialization PATIENT of PERSON prefix PT
specialization PHYSICIAN of PERSON prefix PH
entity WARD prefix W attrs (W.NAME ward_name) id (W.NAME)
entity PLAN prefix PL attrs (PL.CODE plan_code) id (PL.CODE)
entity DRUG prefix DR attrs (DR.NAME drug_name) id (DR.NAME)
relationship ADMITTED prefix AD parts (PATIENT many, WARD one)
relationship COVERED prefix CV parts (PATIENT many, PLAN one)
relationship ATTENDS prefix AT parts (PATIENT many, PHYSICIAN one)
relationship PRESCRIBES prefix PR parts (PHYSICIAN many, DRUG one) attrs (PR.DOSE dose?)
`

func main() {
	es, err := sdl.ParseEER(hospital)
	check(err)
	fmt.Printf("EER schema: %d entity-sets, %d relationship-sets\n\n",
		len(es.Entities), len(es.Relationships))

	// §5.2 condition (2) certifies the PATIENT cluster at the EER level.
	err = es.CheckCondition2("PATIENT", []string{"ADMITTED", "COVERED", "ATTENDS"})
	fmt.Printf("condition (2) for PATIENT with {ADMITTED, COVERED, ATTENDS}: %v\n", err == nil)
	// PRESCRIBES carries an attribute, so its cluster is not certified.
	err = es.CheckCondition2("PHYSICIAN", []string{"PRESCRIBES"})
	fmt.Printf("condition (2) for PHYSICIAN with {PRESCRIBES}: %v (%v)\n\n", err == nil, err)

	// Option (i): one relation per object-set.
	base, err := translate.MS(es)
	check(err)
	fmt.Printf("option (i) — no merging: %d relation-schemes\n", len(base.Relations))

	// Option (ii): merge everything Prop. 5.2 certifies.
	clusters := core.Prop52Clusters(base)
	for _, c := range clusters {
		fmt.Printf("  planner: merge %s (key-relation %s)\n", strings.Join(c, ", "), c[0])
	}
	merged, _, err := core.ApplyPlan(base, clusters)
	check(err)
	fmt.Printf("option (ii) — with merging: %d relation-schemes\n\n", len(merged.Relations))
	fmt.Print(indent(merged.String()))

	// Both options are DB2-expressible; option (ii) simply has fewer tables.
	for _, opt := range []struct {
		label string
		s     int
	}{{"option (i)", 0}, {"option (ii)", 1}} {
		target := base
		if opt.s == 1 {
			target = merged
		}
		out, err := ddl.Generate(target, ddl.Options{Dialect: ddl.DB2})
		fmt.Printf("%s DB2 DDL: %d statements, declaratively maintainable: %v\n",
			opt.label, strings.Count(out, ";"), err == nil)
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}

func indent(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
	return b.String()
}
