// University: the paper's running example end-to-end — the figure 3 schema,
// the figure 4 and figure 5 merges, the figure 6 removals, the applicability
// checks of Propositions 5.1 and 5.2, and DDL generation for the three
// dialect families of section 5.1.
package main

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ddl"
	"repro/internal/figures"
	"repro/internal/nullcon"
)

func main() {
	s := figures.Fig3()
	fmt.Println("figure 3 — the university schema:")
	fmt.Print(indent(s.String()))

	// Figure 4: merging COURSE, OFFER, TEACH leaves ASSIST outside, which
	// turns its reference to OFFER into a non-key-based dependency.
	m4, err := core.Merge(s, []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	check(err)
	fmt.Println("\nfigure 4 — Merge(COURSE, OFFER, TEACH):")
	fmt.Print(indent(m4.Schema.String()))
	fmt.Printf("  all dependencies key-based: %v (ASSIST now references a non-key attribute)\n",
		core.AllINDsKeyBased(m4.Schema))
	fmt.Printf("  O.C.NR removable here: %v\n", m4.IsRemovable("OFFER") == nil)

	// Figure 5: adding ASSIST to the merge set internalizes that dependency.
	m5, err := core.Merge(s, []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	check(err)
	fmt.Println("\nfigure 5 — Merge(COURSE, OFFER, TEACH, ASSIST):")
	fmt.Print(indent(m5.Schema.String()))

	// Figure 6: every key copy is now removable.
	removed := m5.RemoveAll()
	fmt.Printf("\nfigure 6 — after Remove of the %v key copies:\n", removed)
	fmt.Print(indent(m5.Schema.String()))

	// The figure 6 result still carries null-existence constraints, so a
	// declarative-only system cannot maintain it...
	_, err = ddl.Generate(m5.Schema, ddl.Options{Dialect: ddl.DB2})
	fmt.Printf("\nDB2 accepts the figure 6 schema: %v\n", err == nil)
	if err != nil {
		fmt.Print(indent(err.Error()))
	}

	// ...but SYBASE 4.0 compiles the constraints to triggers.
	sybase, err := ddl.Generate(m5.Schema, ddl.Options{Dialect: ddl.Sybase})
	check(err)
	fmt.Printf("\nSYBASE DDL (%d lines; triggers excerpted):\n", strings.Count(sybase, "\n"))
	for _, line := range strings.Split(sybase, "\n") {
		if strings.HasPrefix(line, "CREATE TRIGGER") {
			fmt.Println("  " + line)
		}
	}

	// The Prop. 5.2 alternative: merge only OFFER, TEACH, ASSIST. The result
	// is maintainable everywhere.
	m52, err := core.Merge(figures.Fig3(), []string{"OFFER", "TEACH", "ASSIST"}, "OFFER'")
	check(err)
	m52.RemoveAll()
	fmt.Println("\nthe Prop. 5.2 merge — Merge(OFFER, TEACH, ASSIST) + RemoveAll:")
	fmt.Print(indent(m52.Schema.String()))
	fmt.Printf("  only nulls-not-allowed constraints: %v\n", nullcon.OnlyNNA(m52.Schema.NullsOf("OFFER'")))
	_, err = ddl.Generate(m52.Schema, ddl.Options{Dialect: ddl.DB2})
	fmt.Printf("  DB2 accepts it: %v\n", err == nil)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}

func indent(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
	return b.String()
}
