// Quickstart: the paper's figure 2 in a few lines — merge two
// relation-schemes with compatible primary keys into one, see the null
// constraints the merge generates, round-trip a database state through the
// η/η′ mappings to confirm nothing is lost, and serve the merged design
// through the Session API (the same interface relmerge.Dial returns for a
// relmerged server).
//
// Everything comes from the public pkg/relmerge facade; no internal imports.
package main

import (
	"fmt"

	"repro/pkg/relmerge"
)

func main() {
	// Build the figure 2 schema by hand: OFFER(O.CN*, O.DN) and
	// TEACH(T.CN*, T.FN), with every TEACH course also an OFFER course.
	s := relmerge.NewSchema()
	s.AddScheme(relmerge.NewScheme("OFFER",
		[]relmerge.Attribute{
			{Name: "O.CN", Domain: "course_nr"},
			{Name: "O.DN", Domain: "dept_name"},
		}, []string{"O.CN"}))
	s.AddScheme(relmerge.NewScheme("TEACH",
		[]relmerge.Attribute{
			{Name: "T.CN", Domain: "course_nr"},
			{Name: "T.FN", Domain: "faculty_name"},
		}, []string{"T.CN"}))
	s.INDs = append(s.INDs, relmerge.NewIND("TEACH", []string{"T.CN"}, "OFFER", []string{"O.CN"}))
	s.Nulls = append(s.Nulls,
		relmerge.NNA("OFFER", "O.CN", "O.DN"),
		relmerge.NNA("TEACH", "T.CN", "T.FN"))

	fmt.Println("before merging:")
	fmt.Print(indent(s.String()))

	// Merge. OFFER qualifies as the key-relation (Prop. 3.1), so no
	// synthetic key is needed.
	m, err := relmerge.Merge(s, []string{"OFFER", "TEACH"}, relmerge.WithName("ASSIGN"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nafter Merge (key-relation %s):\n", m.KeyRelation)
	fmt.Print(indent(m.Schema.String()))

	// T.CN duplicates O.CN (total-equality constraint) and is removable.
	if err := m.Remove("TEACH"); err != nil {
		panic(err)
	}
	fmt.Println("\nafter Remove(T.CN):")
	fmt.Print(indent(m.Schema.String()))

	// Round-trip a state: two offered courses, one of them taught.
	db := relmerge.NewState(s)
	add := func(rel string, vals ...string) {
		t := make(relmerge.Tuple, len(vals))
		for i, v := range vals {
			t[i] = relmerge.NewString(v)
		}
		db.Relation(rel).Add(t)
	}
	add("OFFER", "cs101", "cs")
	add("OFFER", "ma201", "math")
	add("TEACH", "cs101", "knuth")

	merged := m.MapState(db)
	fmt.Println("\nmerged relation (note the null for the untaught course):")
	fmt.Print(indent(merged.Relation("ASSIGN").String()) + "\n")

	back := m.UnmapState(merged)
	fmt.Printf("\nround trip restored the original state: %v\n", back.Equal(db))

	// Serve the merged design through the Session API. Open is the one
	// constructor for every backend — change Config.Backend to Remote (plus
	// an Addr) to run this same code against a relmerged server, or to
	// Sharded (plus a shard count) to hash-partition it across engines.
	sess, err := relmerge.Open(relmerge.Config{Schema: m.Schema})
	if err != nil {
		panic(err)
	}
	defer sess.Close()
	if err := sess.InsertBatch("ASSIGN", merged.Relation("ASSIGN").Tuples()); err != nil {
		panic(err)
	}
	tup, found, err := sess.Fetch("ASSIGN", relmerge.Tuple{relmerge.NewString("cs101")})
	if err != nil || !found {
		panic(fmt.Sprintf("fetch cs101: found=%v err=%v", found, err))
	}
	fmt.Printf("\nsession fetch by key on the merged design: %v\n", tup)
}

func indent(s string) string {
	out := ""
	line := ""
	for _, r := range s {
		if r == '\n' {
			out += "  " + line + "\n"
			line = ""
		} else {
			line += string(r)
		}
	}
	if line != "" {
		out += "  " + line + "\n"
	}
	return out
}
