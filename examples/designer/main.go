// Designer: the full design loop a practitioner would run — describe the
// domain in the EER DSL, let the advisor price the merge under the expected
// workload, apply it, inspect the provenance trace and migration SQL, and
// verify with the logical query planner that the same query answers
// identically (and more cheaply) on the merged design.
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/ddl"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sdl"
	"repro/internal/state"
	"repro/internal/translate"
	"repro/pkg/relmerge"
)

const ticketing = `
entity EVENT prefix E attrs (E.ID event_id) id (E.ID) copybase (ID)
entity VENUE prefix V attrs (V.NAME venue) id (V.NAME)
entity ORGANIZER prefix OG attrs (OG.ID org_id) id (OG.ID)
entity SPONSOR prefix SP attrs (SP.NAME sponsor) id (SP.NAME)
relationship HOSTED prefix H parts (EVENT many, VENUE one)
relationship RUNS prefix R parts (EVENT many, ORGANIZER one)
relationship BACKED prefix BK parts (EVENT many, SPONSOR one)
`

func main() {
	es, err := sdl.ParseEER(ticketing)
	check(err)
	base, err := translate.MS(es)
	check(err)
	fmt.Printf("base design: %d relations\n\n", len(base.Relations))

	// The advisor under a read-heavy workload.
	recs, err := relmerge.AdviseDesign(base, relmerge.Workload{
		ProfileQueries: map[string]float64{"EVENT": 500},
		Inserts:        map[string]float64{"EVENT": 20},
	}, relmerge.DefaultCostModel())
	check(err)
	fmt.Print(relmerge.DesignReport(recs))

	rec := recs[0]
	if !rec.Merge {
		fmt.Println("advisor says keep split; stopping")
		return
	}

	// Apply the recommended merge.
	m, err := core.Merge(base, rec.Cluster, "EVENT+")
	check(err)
	m.RemoveAll()
	fmt.Println("\nprovenance:")
	for _, line := range m.Trace() {
		fmt.Println("  " + line)
	}
	fmt.Println("\nmigration script:")
	fmt.Print(indent(ddl.MigrationSQL(m)))

	// Load both designs with the same data and compare one query.
	rng := rand.New(rand.NewSource(7))
	st := state.MustGenerate(base, rng, state.GenOptions{
		Rows:    30,
		RowsPer: map[string]int{"HOSTED": 25, "RUNS": 20, "BACKED": 10},
	})
	baseDB := engine.MustOpen(base)
	check(baseDB.Load(st))
	mergedDB := engine.MustOpen(m.Schema)
	check(mergedDB.Load(m.MapState(st)))

	basePlanner := &query.BasePlanner{DB: baseDB}
	mergedPlanner := &query.MergedPlanner{DB: mergedDB, M: m}

	eventKey := relation.Tuple{st.Relation("EVENT").Sorted()[0][0]}
	q := query.Query{
		Root: "EVENT", Key: eventKey,
		Want: []string{"E.ID", "H.V.NAME", "R.OG.ID", "BK.SP.NAME"},
	}
	baseDB.Stats.Reset()
	a, err := basePlanner.Answer(q)
	check(err)
	mergedDB.Stats.Reset()
	b, err := mergedPlanner.Answer(q)
	check(err)

	fmt.Printf("\nevent profile for %v:\n", eventKey)
	for _, attr := range q.Want {
		fmt.Printf("  %-12s base=%-14v merged=%-14v agree=%v\n",
			attr, a[attr], b[attr], a[attr].Identical(b[attr]) || (a[attr].IsNull() && b[attr].IsNull()))
	}
	fmt.Printf("lookups: base=%d merged=%d\n", baseDB.Stats.Lookups(), mergedDB.Stats.Lookups())
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}

func indent(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
	return b.String()
}
