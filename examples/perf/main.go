// Perf: the paper's motivating performance claims, measured on the
// in-memory engine — merged schemas answer multi-object queries with a
// single lookup instead of one per relation, and the price is procedural
// constraint maintenance when the merge leaves general null constraints.
package main

import (
	"fmt"

	"repro/internal/workload"
)

func main() {
	fmt.Println("access path: object-profile query, base vs. merged (star schema)")
	fmt.Printf("%-4s %-20s %-20s %s\n", "n", "base lookups/query", "merged lookups/query", "speedup")
	for _, n := range []int{2, 4, 8} {
		b, err := workload.NewBench(workload.StarEER(n), "E0", 200, int64(n))
		check(err)
		b.Base.Stats.Reset()
		b.Merged.Stats.Reset()
		for _, k := range b.Keys {
			b.ProfileBase(k)
			b.ProfileMerged(k)
		}
		q := float64(len(b.Keys))
		base := float64(b.Base.Stats.IndexLookups()) / q
		merged := float64(b.Merged.Stats.IndexLookups()) / q
		fmt.Printf("%-4d %-20.1f %-20.1f %.1fx\n", n, base, merged, base/merged)
	}

	fmt.Println("\nmaintenance: inserts into the merged relation (n = 4)")
	fmt.Printf("%-24s %-24s %s\n", "merged constraint regime", "declarative checks/ins", "trigger firings/ins")
	for _, c := range []struct {
		label string
		mk    func() (*workload.Bench, error)
	}{
		{"only NNA (star)", func() (*workload.Bench, error) {
			return workload.NewBench(workload.StarEER(4), "E0", 100, 5)
		}},
		{"NE chain (chain)", func() (*workload.Bench, error) {
			return workload.NewBench(workload.ChainEER(4), "E0", 100, 6)
		}},
	} {
		b, err := c.mk()
		check(err)
		b.Merged.Stats.Reset()
		done := 0
		for i := 0; i < 50; i++ {
			if err := b.InsertMergedRow(); err == nil {
				done++
			}
		}
		st := b.Merged.Stats.Snapshot()
		fmt.Printf("%-24s %-24.1f %.1f\n", c.label,
			float64(st.DeclarativeChecks)/float64(done),
			float64(st.TriggerFirings)/float64(done))
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
