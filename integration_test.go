package repro

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/ddl"
	"repro/internal/diff"
	"repro/internal/engine"
	"repro/internal/nullcon"
	"repro/internal/relation"
	"repro/internal/sdl"
	"repro/internal/state"
	"repro/internal/translate"
)

// The library-system pipeline: a fresh domain (not one of the paper's
// fixtures) pushed through every stage of the toolchain — EER DSL, MS
// translation, advisor, merge + remove, diff, DDL and migration SQL, dual
// engines with generated data, query-answer equivalence, and persistence.
const libraryEER = `
entity BOOK prefix B attrs (B.ISBN isbn) id (B.ISBN) copybase (ISBN)
entity BRANCH prefix BR attrs (BR.NAME branch) id (BR.NAME)
entity MEMBER prefix M attrs (M.ID member_id) id (M.ID)
entity PUBLISHER prefix PB attrs (PB.NAME publisher) id (PB.NAME)
relationship HELD prefix H parts (BOOK many, BRANCH one)
relationship LOANED prefix L parts (BOOK many, MEMBER one)
relationship ISSUED prefix I parts (BOOK many, PUBLISHER one)
`

func TestLibraryPipeline(t *testing.T) {
	// 1. Parse and translate.
	es, err := sdl.ParseEER(libraryEER)
	if err != nil {
		t.Fatal(err)
	}
	base, err := translate.MS(es)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Relations) != 7 {
		t.Fatalf("base schema has %d relations", len(base.Relations))
	}

	// 2. The EER-level §5.2 condition and the advisor agree that the BOOK
	// cluster is safe and worthwhile under a read-heavy workload.
	if err := es.CheckCondition2("BOOK", []string{"HELD", "LOANED", "ISSUED"}); err != nil {
		t.Fatalf("condition (2): %v", err)
	}
	recs, err := advisor.Advise(base, advisor.Workload{
		ProfileQueries: map[string]float64{"BOOK": 50},
		Inserts:        map[string]float64{"BOOK": 5},
	}, advisor.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !recs[0].Merge || !recs[0].OnlyNNA {
		t.Fatalf("advisor = %+v", recs)
	}

	// 3. Merge and remove; the result is only-NNA and BCNF.
	m, err := core.Merge(base, recs[0].Cluster, "BOOK+")
	if err != nil {
		t.Fatal(err)
	}
	if removed := m.RemoveAll(); len(removed) != 3 {
		t.Fatalf("removed %v", removed)
	}
	if !nullcon.OnlyNNA(m.Schema.NullsOf("BOOK+")) || !core.AllBCNF(m.Schema) {
		t.Fatal("merged schema should be only-NNA and BCNF")
	}

	// 4. Diff, DDL, and migration SQL are all well-formed.
	changes := diff.Schemas(base, m.Schema)
	if len(changes) == 0 {
		t.Fatal("diff should report changes")
	}
	ddlOut, err := ddl.Generate(m.Schema, ddl.Options{Dialect: ddl.DB2})
	if err != nil {
		t.Fatalf("the only-NNA result must be DB2-expressible: %v", err)
	}
	if !strings.Contains(ddlOut, "CREATE TABLE BOOKp") {
		t.Error("merged table missing from DDL")
	}
	migration := ddl.MigrationSQL(m)
	if !strings.Contains(migration, "LEFT OUTER JOIN HELD") {
		t.Errorf("migration SQL:\n%s", migration)
	}

	// 5. Dual engines over the same generated data.
	rng := rand.New(rand.NewSource(20260704))
	st := state.MustGenerate(base, rng, state.GenOptions{
		Rows:    40,
		RowsPer: map[string]int{"HELD": 30, "LOANED": 15, "ISSUED": 25},
	})
	baseDB := engine.MustOpen(base)
	if err := baseDB.Load(st); err != nil {
		t.Fatal(err)
	}
	mergedDB := engine.MustOpen(m.Schema)
	if err := mergedDB.Load(m.MapState(st)); err != nil {
		t.Fatal(err)
	}

	// 6. Query-answer equivalence: for every book, the navigational answer
	// on the base engine equals the single-row answer on the merged engine.
	books := st.Relation("BOOK")
	mergedRel := mergedDB.Relation("BOOK+")
	for _, bk := range books.Tuples() {
		key := relation.Tuple{bk[0]}
		row, ok := mergedDB.GetByKey("BOOK+", key)
		if !ok {
			t.Fatalf("book %v missing from merged engine", key)
		}
		for member, attr := range map[string]string{
			"HELD": "H.BR.NAME", "LOANED": "L.M.ID", "ISSUED": "I.PB.NAME",
		} {
			baseTup, baseOK := baseDB.GetByKey(member, key)
			mergedVal := row[mergedRel.Position(attr)]
			switch {
			case baseOK && mergedVal.IsNull():
				t.Fatalf("book %v: %s present in base, null in merged", key, member)
			case !baseOK && !mergedVal.IsNull():
				t.Fatalf("book %v: %s absent in base, non-null in merged", key, member)
			case baseOK:
				rel := baseDB.Relation(member)
				if !baseTup[rel.Position(attr)].Identical(mergedVal) {
					t.Fatalf("book %v: %s values disagree", key, member)
				}
			}
		}
	}

	// 7. The merged engine costs one lookup per profile vs. four.
	baseDB.Stats.Reset()
	mergedDB.Stats.Reset()
	for _, bk := range books.Tuples() {
		key := relation.Tuple{bk[0]}
		for _, member := range []string{"BOOK", "HELD", "LOANED", "ISSUED"} {
			baseDB.GetByKey(member, key)
		}
		mergedDB.GetByKey("BOOK+", key)
	}
	if mergedDB.Stats.IndexLookups()*4 != baseDB.Stats.IndexLookups() {
		t.Errorf("lookups: base %d, merged %d", baseDB.Stats.IndexLookups(), mergedDB.Stats.IndexLookups())
	}

	// 8. Persistence round trip of the merged engine.
	path := filepath.Join(t.TempDir(), "library.data")
	if err := mergedDB.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	mergedDB2 := engine.MustOpen(m.Schema)
	if err := mergedDB2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if !mergedDB2.Snapshot().Equal(mergedDB.Snapshot()) {
		t.Error("persistence round trip failed")
	}

	// 9. And the information-capacity round trip holds on the real data.
	if !m.RoundTrip(st) {
		t.Error("η′∘η ≠ id on the library data")
	}
}
