package repro

import (
	"strings"
	"testing"
)

// TestRelmergeCLIDurableRecovery drives the -durable flag end to end: the
// first run replays figure 3 into write-ahead-logged engines and checkpoints
// them; the second run over the same directory must recover instead of
// replaying. A run with a bad -fsync policy must fail.
func TestRelmergeCLIDurableRecovery(t *testing.T) {
	bin := buildTool(t, "relmerge")
	dir := t.TempDir()
	args := []string{"-fig3", "-merge", "COURSE,OFFER,TEACH,ASSIST",
		"-name", "COURSE''", "-remove", "all", "-metrics", "text",
		"-durable", dir, "-fsync", "always"}

	out, err := run(t, bin, args...)
	if err != nil {
		t.Fatalf("first durable run: %v\n%s", err, out)
	}
	for _, want := range []string{
		`durable{db="base",policy="always"} recovered=false`,
		`durable{db="merged",policy="always"} recovered=false`,
		`wal.checkpoints{wal="base"} 1`,
		`reconcile{db="base"} true`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("first run missing %q in:\n%s", want, out)
		}
	}

	out, err = run(t, bin, args...)
	if err != nil {
		t.Fatalf("second durable run: %v\n%s", err, out)
	}
	for _, want := range []string{
		`durable{db="base",policy="always"} recovered=true`,
		`durable{db="merged",policy="always"} recovered=true`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("second run did not recover; missing %q in:\n%s", want, out)
		}
	}

	if out, err := run(t, bin, "-fig3", "-metrics", "text", "-durable", dir, "-fsync", "sometimes"); err == nil {
		t.Errorf("unknown -fsync policy should fail:\n%s", out)
	}
	if out, err := run(t, bin, "-fig3", "-durable", dir); err == nil {
		t.Errorf("-durable without -metrics should fail:\n%s", out)
	}
}
