// Command relmerged serves a relmerge engine over the length-prefixed wire
// protocol (see internal/server) — binary v2 by default, negotiated down to
// JSON v1 per connection: inserts, deletes, updates, key fetches, batches,
// transactions, stats, and checkpoints, with per-request deadlines,
// admission control, and server-side write coalescing aligned with the
// write-ahead log's group commit.
//
// Usage:
//
//	relmerged -fig3 -addr :7421                          # serve figure 3
//	relmerged -schema schema.sdl -data data.sdl          # serve a loaded state
//	relmerged -fig3 -merged                              # apply the Prop 5.2 plan, serve the merged schema
//	relmerged -fig3 -durable ./wal -fsync always         # durable: recovers on restart
//	relmerged -fig3 -advise auto                         # adaptive: merge hot only-NNA clusters live
//	relmerged -fig3 -shards 4                            # hash-partition across 4 engine shards
//	relmerged -fig3 -durable ./rep -replica-of :7421     # read-only follower of the primary at :7421
//
// SIGINT/SIGTERM drain gracefully: stop accepting, finish in-flight
// requests, checkpoint a durable engine, close the WAL. A follower promotes
// on SIGUSR1: it stops shipping and starts accepting writes over exactly the
// acked prefix its log holds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"context"

	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/pkg/relmerge"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7421", "listen address")
		schemaPath  = flag.String("schema", "", "path to an SDL schema file (- for stdin)")
		useFig3     = flag.Bool("fig3", false, "use the paper's figure 3 schema as input")
		merged      = flag.Bool("merged", false, "apply the Prop. 5.2 merge plan and serve the merged schema")
		dataPath    = flag.String("data", "", "optional data file (insert statements) loaded at startup; with -merged the state is mapped through the η mappings first")
		durableDir  = flag.String("durable", "", "directory for the engine's write-ahead log; a reopened directory recovers before serving")
		replicaOf   = flag.String("replica-of", "", "primary relmerged address to ship the WAL from; serves read-only until promoted by SIGUSR1 (requires -durable, same schema flags as the primary)")
		shards      = flag.Int("shards", 1, "hash-partition the engine across N shards behind a cross-shard router (1 = single engine; with -durable each shard logs under shard-<i>/)")
		fsyncMode   = flag.String("fsync", "interval", "fsync policy for -durable: always, interval, or never")
		workers     = flag.Int("workers", 0, "request worker pool size (0 = GOMAXPROCS, at least 4)")
		queueDepth  = flag.Int("queue", 0, "admission queue depth (0 = default 64); a full queue rejects with code overloaded")
		coalesce    = flag.Int("coalesce", 0, "max queued writes folded into one engine batch and WAL record (0 = default 16, 1 disables)")
		wire        = flag.String("wire", "binary", "highest wire codec to negotiate: binary (protocol v2) or json (v1 only); v1-only clients get JSON either way")
		adviseMode  = flag.String("advise", "off", "adaptive-merge advisor: off, suggest (log recommendations), or auto (additionally apply only-NNA merges to the live design); not valid with -replica-of")
		adviseEvery = flag.Duration("advise-interval", time.Second, "decision cadence of the -advise loop")
		accessDelay = flag.Duration("access-delay", 0, "simulated storage access delay per operation (benchmark knob)")
		drainWait   = flag.Duration("drain-timeout", 10*time.Second, "how long a signal-triggered drain waits for in-flight requests")
		quiet       = flag.Bool("quiet", false, "suppress lifecycle log lines")
	)
	flag.Parse()

	fsyncPolicy, err := relmerge.ParseSyncPolicy(*fsyncMode)
	if err != nil {
		fatal(fmt.Errorf("relmerged: %w", err))
	}

	maxWire := server.MaxProtoVersion
	switch *wire {
	case "binary":
	case "json":
		maxWire = server.ProtoVersion
	default:
		fatal(fmt.Errorf("relmerged: unknown -wire codec %q (want binary or json)", *wire))
	}

	advisor, err := relmerge.ParseAdvisorMode(*adviseMode)
	if err != nil {
		fatal(fmt.Errorf("relmerged: %w", err))
	}
	if advisor != relmerge.AdvisorOff && *replicaOf != "" {
		fatal(fmt.Errorf("relmerged: -advise %s cannot run on a follower: the primary's shipped log dictates the design; run the advisor on the primary", advisor))
	}

	s, err := loadSchema(*schemaPath, *useFig3)
	if err != nil {
		fatal(err)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = func(string, ...any) {}
	}

	// With -merged, rewrite the schema through the Prop. 5.2 planner; the η
	// mappings of the per-cluster merge records map any loaded state across.
	orig := s
	var merges []*relmerge.Merged
	if *merged {
		clusters := relmerge.Plan(s)
		if len(clusters) == 0 {
			fatal(fmt.Errorf("relmerged: -merged: no merge set satisfies the Prop. 5.2 conditions"))
		}
		s, merges, err = relmerge.Apply(s, clusters)
		if err != nil {
			fatal(err)
		}
		for _, m := range merges {
			logf("relmerged: merged %s <- {%s}", m.Name, strings.Join(memberNames(m), ", "))
		}
	}

	var delayOpts []relmerge.EngineOption
	if *accessDelay > 0 {
		delayOpts = append(delayOpts, relmerge.WithAccessDelay(*accessDelay))
	}

	var db server.Backend
	var follower *repl.Follower
	if *replicaOf != "" {
		// Follower: the local durable engine replays the primary's shipped
		// WAL; its state comes from the stream, never from -data.
		switch {
		case *durableDir == "":
			fatal(fmt.Errorf("relmerged: -replica-of requires -durable (the local log is the replica state)"))
		case *shards > 1:
			fatal(fmt.Errorf("relmerged: -replica-of cannot be combined with -shards"))
		case *dataPath != "":
			fatal(fmt.Errorf("relmerged: -replica-of cannot load -data (state ships from the primary)"))
		}
		eng, err := buildEngine(s, orig, merges, "", append(delayOpts,
			relmerge.WithDurability(*durableDir, fsyncPolicy), relmerge.AsReplica()))
		if err != nil {
			fatal(err)
		}
		rec := eng.Recovered()
		logf("relmerged: wal %s (fsync %s): recovered=%v replayed=%d", *durableDir, *fsyncMode, rec.Recovered, rec.ReplayedOps)
		follower, err = repl.Open(*replicaOf, eng, repl.Options{})
		if err != nil {
			eng.Close()
			fatal(err)
		}
		info := follower.Info()
		logf("relmerged: following %s (applied LSN %d, primary horizon %d); read-only until SIGUSR1", *replicaOf, info.AppliedLSN, info.CommitLSN)
		db = follower.Backend()
	} else if *shards > 1 {
		// Sharded: N independent engines behind a hash-partitioning router
		// that checks inclusion dependencies across shards. Durability is per
		// shard (shard-<i>/ subdirectories), so WithDurability stays out of
		// the engine options here — relmerge.Open wires the per-shard WALs.
		router, err := buildRouter(s, orig, merges, *dataPath, relmerge.Config{
			Backend:       relmerge.Sharded,
			Schema:        s,
			Shards:        *shards,
			DurableDir:    *durableDir,
			Sync:          fsyncPolicy,
			EngineOptions: delayOpts,
		})
		if err != nil {
			fatal(err)
		}
		if router.Durable() {
			rec := router.Recovered()
			logf("relmerged: wal %s (fsync %s, %d shards): recovered=%v replayed=%d",
				*durableDir, *fsyncMode, *shards, rec.Recovered, rec.ReplayedOps)
		}
		logf("relmerged: routing across %d engine shards", *shards)
		db = router
	} else {
		engOpts := delayOpts
		if *durableDir != "" {
			engOpts = append(engOpts, relmerge.WithDurability(*durableDir, fsyncPolicy))
		}
		eng, err := buildEngine(s, orig, merges, *dataPath, engOpts)
		if err != nil {
			fatal(err)
		}
		if eng.Durable() {
			rec := eng.Recovered()
			logf("relmerged: wal %s (fsync %s): recovered=%v replayed=%d discarded=%d snapshot=%v",
				*durableDir, *fsyncMode, rec.Recovered, rec.ReplayedOps, rec.DiscardedOps, rec.SnapshotLoaded)
		}
		db = eng
	}

	// The advisor loop watches the serving backend's own co-access
	// measurements and — in auto mode — migrates it live; the schema lock
	// serializes migrations against the request workers.
	if advisor != relmerge.AdvisorOff {
		var advSess relmerge.Session
		if router, ok := db.(*shard.Router); ok {
			advSess = relmerge.NewShardedSession(router)
		} else {
			advSess = relmerge.NewSession(db.(*relmerge.Engine))
		}
		seen := map[string]bool{} // one log line per distinct recommendation
		stopAdvise, err := relmerge.StartAdvisor(advSess, relmerge.AdvisorConfig{
			Mode:     advisor,
			Interval: *adviseEvery,
			OnSuggestion: func(rec relmerge.Recommendation) {
				if seen[rec.MergedName] {
					return
				}
				seen[rec.MergedName] = true
				logf("relmerged: advisor: merge {%s} -> %s (co-access %d, net benefit %.1f, auto-applicable %v)",
					strings.Join(rec.Cluster, ","), rec.MergedName, rec.CoAccessHits, rec.NetBenefit, rec.AutoApplicable)
			},
			OnApplied: func(rec relmerge.Recommendation, err error) {
				if err != nil {
					logf("relmerged: advisor: apply %s: %v", rec.MergedName, err)
					return
				}
				logf("relmerged: advisor: applied merge %s to the live design", rec.MergedName)
			},
		})
		if err != nil {
			fatal(fmt.Errorf("relmerged: %w", err))
		}
		defer stopAdvise()
		logf("relmerged: advisor %s (every %s)", advisor, *adviseEvery)
	}

	srv := server.New(db, server.Config{
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		MaxWire:     maxWire,
		CoalesceMax: *coalesce,
		Logf:        logf,
	})

	if follower != nil {
		promote := make(chan os.Signal, 1)
		signal.Notify(promote, syscall.SIGUSR1)
		go func() {
			for range promote {
				if err := follower.Promote(); err != nil {
					logf("relmerged: promote: %v", err)
					continue
				}
				logf("relmerged: promoted at LSN %d: accepting writes", follower.DB().DurableLSN())
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	shutdownDone := make(chan error, 1)
	go func() {
		sig := <-sigs
		logf("relmerged: %s: draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	if err := srv.ListenAndServe(*addr); err != nil {
		fatal(fmt.Errorf("relmerged: %w", err))
	}
	// Serve returns nil only after Shutdown closed the listener; the drain —
	// in-flight responses, checkpoint, WAL close — is still running on the
	// signal goroutine. Exiting now would turn the graceful path into a
	// crash, so wait for it.
	if err := <-shutdownDone; err != nil {
		fatal(fmt.Errorf("relmerged: shutdown: %w", err))
	}
}

// buildEngine opens the serving engine. A fresh durable directory (or a
// non-durable run) replays -data through the η mappings; a recovered
// directory already holds its state, so the data file is skipped.
func buildEngine(s, orig *relmerge.Schema, merges []*relmerge.Merged, dataPath string, opts []relmerge.EngineOption) (*relmerge.Engine, error) {
	eng, err := relmerge.OpenEngine(s, opts...)
	if err != nil {
		return nil, err
	}
	if dataPath == "" {
		return eng, nil
	}
	if eng.Durable() && eng.Recovered().Recovered {
		return eng, nil // recovered state wins over the data file
	}
	data, err := os.ReadFile(dataPath)
	if err != nil {
		eng.Close()
		return nil, err
	}
	// The data file is written against the pre-merge schema; map it through
	// each merge record in plan order before loading.
	st, err := relmerge.ParseState(orig, string(data))
	if err != nil {
		eng.Close()
		return nil, err
	}
	for _, m := range merges {
		st = m.MapState(st)
	}
	if err := eng.Load(st); err != nil {
		eng.Close()
		return nil, err
	}
	return eng, nil
}

// buildRouter opens the sharded serving backend through relmerge.Open. The
// data-file rules match buildEngine: recovered state wins over -data, and a
// fresh (or non-durable) router replays the file through the η mappings.
func buildRouter(s, orig *relmerge.Schema, merges []*relmerge.Merged, dataPath string, cfg relmerge.Config) (*shard.Router, error) {
	sess, err := relmerge.Open(cfg)
	if err != nil {
		return nil, err
	}
	router := sess.(*relmerge.ShardedSession).Router()
	if dataPath == "" {
		return router, nil
	}
	if router.Durable() && router.Recovered().Recovered {
		return router, nil // recovered state wins over the data file
	}
	data, err := os.ReadFile(dataPath)
	if err != nil {
		router.Close()
		return nil, err
	}
	st, err := relmerge.ParseState(orig, string(data))
	if err != nil {
		router.Close()
		return nil, err
	}
	for _, m := range merges {
		st = m.MapState(st)
	}
	if err := router.Load(st); err != nil {
		router.Close()
		return nil, err
	}
	return router, nil
}

func memberNames(m *relmerge.Merged) []string {
	names := make([]string, len(m.Members))
	for i, mb := range m.Members {
		names[i] = mb.Name
	}
	return names
}

func loadSchema(path string, fig3 bool) (*relmerge.Schema, error) {
	if fig3 {
		return relmerge.Fig3(), nil
	}
	if path == "" {
		return nil, fmt.Errorf("relmerged: need -schema FILE or -fig3")
	}
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return relmerge.ParseSchema(string(data))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
