// Command sdt reproduces the Schema Definition and Translation tool the
// paper describes in section 6 (reference [12]): given an EER schema, it
// generates the corresponding relational schema definition for a target
// DBMS dialect, with two options:
//
//	(i)  one relation-scheme per EER object-set (no merging), or
//	(ii) merging, reducing the number of relation-schemes — either every
//	     Prop. 5.2-safe cluster (-merge auto) or an explicit merge set.
//
// Usage:
//
//	sdt -eer schema.eer -dialect db2                  # option (i)
//	sdt -eer schema.eer -dialect sybase -merge auto   # option (ii), planned
//	sdt -eer schema.eer -merge OFFER,TEACH,ASSIST -name "OFFER'" -remove all
//	sdt -fig7 -merge auto -out paper                  # built-in figure 7 demo
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/ddl"
	"repro/internal/eer"
	"repro/internal/fd"
	"repro/internal/nullcon"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/sdl"
	"repro/internal/translate"
	"repro/pkg/relmerge"
)

func main() {
	var (
		eerPath    = flag.String("eer", "", "path to an EER schema file (- for stdin)")
		useFig7    = flag.Bool("fig7", false, "use the paper's figure 7 EER schema as input")
		dialect    = flag.String("dialect", "sybase", "target dialect: db2, sybase, or ingres")
		mergeList  = flag.String("merge", "", "merge option: 'auto' for all Prop. 5.2 clusters, or a comma-separated merge set")
		name       = flag.String("name", "MERGED", "name for an explicit merged relation-scheme")
		removeList = flag.String("remove", "all", "members whose key copies to remove ('all', 'none', or a list)")
		out        = flag.String("out", "ddl", "output: ddl, sdl, or paper")
		baseline   = flag.Bool("teorey", false, "use the Teorey-style translation baseline instead (no null constraints)")
		advise     = flag.Bool("advise", false, "price every merge cluster under the workload and print recommendations instead of DDL")
		queries    = flag.String("queries", "", "profile-query frequencies for -advise, as ROOT=FREQ,... pairs")
		inserts    = flag.String("inserts", "", "insert frequencies for -advise, as ROOT=FREQ,... pairs")
		metrics    = flag.String("metrics", "", "append an observability report (json or text): merge-pipeline spans and dependency-reasoning cache metrics")
	)
	flag.Parse()

	var tracer *obs.Tracer
	if *metrics != "" {
		if *metrics != "json" && *metrics != "text" {
			fatal(fmt.Errorf("sdt: unknown -metrics mode %q (want json or text)", *metrics))
		}
		tracer = obs.NewTracer(obs.DefaultTraceCapacity)
	}

	es, err := loadEER(*eerPath, *useFig7)
	if err != nil {
		fatal(err)
	}
	var rs *schema.Schema
	if *baseline {
		rs, err = translate.Teorey(es)
	} else {
		rs, err = translate.MS(es)
	}
	if err != nil {
		fatal(err)
	}

	if *advise {
		w := relmerge.Workload{
			ProfileQueries: parseFreqs(*queries),
			Inserts:        parseFreqs(*inserts),
		}
		recs, err := relmerge.AdviseDesign(rs, w, relmerge.DefaultCostModel())
		if err != nil {
			fatal(err)
		}
		if len(recs) == 0 {
			fmt.Println("no mergeable clusters found")
			return
		}
		fmt.Print(relmerge.DesignReport(recs))
		return
	}

	switch {
	case *mergeList == "":
		// Option (i): one relation-scheme per object-set.
	case *mergeList == "auto":
		clusters := core.Prop52Clusters(rs, core.WithTrace(tracer))
		for _, c := range clusters {
			fmt.Printf("-- merging %s (key-relation %s)\n", strings.Join(c, ", "), c[0])
		}
		rs, _, err = core.ApplyPlan(rs, clusters, core.WithTrace(tracer))
		if err != nil {
			fatal(err)
		}
	default:
		m, err := core.MergeSet(rs, splitList(*mergeList), core.WithName(*name), core.WithTrace(tracer))
		if err != nil {
			fatal(err)
		}
		switch *removeList {
		case "all":
			m.RemoveAll(core.WithTrace(tracer))
		case "none", "":
		default:
			for _, member := range splitList(*removeList) {
				if err := m.Remove(member, core.WithTrace(tracer)); err != nil {
					fatal(err)
				}
			}
		}
		rs = m.Schema
	}

	switch *out {
	case "paper":
		fmt.Print(rs.String())
	case "sdl":
		fmt.Print(sdl.PrintSchema(rs))
	case "ddl":
		d, err := ddl.ParseDialect(*dialect)
		if err != nil {
			fatal(err)
		}
		text, err := ddl.Generate(rs, ddl.Options{Dialect: d})
		fmt.Print(text)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	default:
		fatal(fmt.Errorf("sdt: unknown output %q", *out))
	}

	if *metrics != "" {
		fmt.Println("\n-- observability report:")
		if err := obsReport(os.Stdout, tracer, *metrics); err != nil {
			fatal(err)
		}
	}
}

// obsReport writes the dependency-reasoning cache metrics and the merge
// pipeline's span trace.
func obsReport(w io.Writer, tracer *obs.Tracer, mode string) error {
	reg := obs.NewRegistry()
	fd.RegisterMetrics(reg)
	nullcon.RegisterMetrics(reg)
	switch mode {
	case "json":
		doc := struct {
			Metrics []obs.Point     `json:"metrics"`
			Spans   []obs.SpanEvent `json:"spans,omitempty"`
		}{Metrics: reg.Snapshot(), Spans: tracer.Events()}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(w, string(data))
		return err
	default:
		if err := reg.WriteText(w); err != nil {
			return err
		}
		for _, ev := range tracer.Events() {
			fmt.Fprintf(w, "span %s depth=%d duration=%s\n", ev.Name, ev.Depth, ev.Duration)
		}
		return nil
	}
}

func loadEER(path string, fig7 bool) (*eer.Schema, error) {
	if fig7 {
		return eer.Fig7(), nil
	}
	if path == "" {
		return nil, fmt.Errorf("sdt: need -eer FILE or -fig7")
	}
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return sdl.ParseEER(string(data))
}

// parseFreqs parses "ROOT=FREQ,ROOT=FREQ" pairs.
func parseFreqs(s string) map[string]float64 {
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			fatal(fmt.Errorf("sdt: bad frequency %q (want ROOT=FREQ)", part))
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			fatal(fmt.Errorf("sdt: bad frequency %q: %v", part, err))
		}
		out[name] = f
	}
	return out
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
