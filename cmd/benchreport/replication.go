package main

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/pkg/relmerge"
)

// The replication suite: a primary relmerged server ships its WAL to
// followers that serve read-only sessions from their own engines, each
// behind its own server. The throughput grid drives the same read-only
// workload at every replica count — clients spread evenly across the serving
// nodes — so aggregate ops/sec measures how much read capacity each replica
// adds. The same simulated access delay as the scaling suite bounds one
// node's capacity, so the curve measures fan-out, not loopback bandwidth.
// The lag probe hammers the primary with a write burst while sampling the
// follower's record lag into a histogram, then times the post-burst
// catch-up. The failover probe writes acked inserts through the primary
// server, waits for the follower to reach the primary's durable horizon,
// kills the primary abruptly, promotes the follower, and checks that it
// recovered exactly the acked prefix.
const (
	replRows      = 512 // preloaded keys served by every node
	replReadsPer  = 600 // reads per client per cell
	replClients   = 4   // reader clients per serving node
	replWorkers   = 4   // server worker pool per node
	replBurst     = 600 // primary write burst behind the lag histogram
	replAckedOps  = 200 // acked inserts before the failover kill
	replFollowers = 2   // followers stood up for the grid
	replPollEvery = 2 * time.Millisecond
	replLagSample = 200 * time.Microsecond
	replWaitLimit = 30 * time.Second
)

// replRow is one replica-count cell of the read-throughput grid.
type replRow struct {
	Replicas  int     `json:"replicas"`
	Nodes     int     `json:"nodes"`
	Clients   int     `json:"clients"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ns     int64   `json:"p50_ns"`
	P99Ns     int64   `json:"p99_ns"`
	Errors    int     `json:"errors"`
}

// replLagBucket is one cumulative bucket of the shipping-lag histogram.
type replLagBucket struct {
	Le    string `json:"le"` // upper bound on lag records ("+Inf" for the tail)
	Count int    `json:"count"`
}

// replLag is the lag probe's result: how far the follower trailed the
// primary's commit horizon during a write burst, and how fast it caught up.
type replLag struct {
	WriteBurst    int             `json:"write_burst"`
	Samples       int             `json:"samples"`
	MaxLagRecords uint64          `json:"max_lag_records"`
	CatchUpMS     float64         `json:"catch_up_ms"`
	Buckets       []replLagBucket `json:"buckets"`
}

// replFailover is the kill-the-primary probe's verdict: the promoted
// follower must hold exactly the acked commit prefix — every acknowledged
// write, nothing that was never acknowledged.
type replFailover struct {
	AckedWrites      int    `json:"acked_writes"`
	RecoveredWrites  int    `json:"recovered_writes"`
	AckedMissing     int    `json:"acked_missing"`
	UnackedRecovered int    `json:"unacked_recovered"`
	PromotedLSN      uint64 `json:"promoted_lsn"`
	ExactPrefix      bool   `json:"exact_prefix"`
}

// replWait polls cond until it holds or the suite-wide limit lapses.
func replWait(what string, cond func() bool) error {
	deadline := time.Now().Add(replWaitLimit)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("benchreport: replication: timed out waiting for %s", what)
		}
		time.Sleep(500 * time.Microsecond)
	}
	return nil
}

// replNode is one serving node of the grid: the primary or a follower, with
// the handles the suite needs to tear it down.
type replNode struct {
	addr string
	srv  *server.Server
	f    *repl.Follower // nil for the primary
	db   *engine.DB
}

func replServe(backend server.Backend) (string, *server.Server, error) {
	srv := server.New(backend, server.Config{Workers: replWorkers})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go srv.Serve(ln)
	return ln.Addr().String(), srv, nil
}

func replKey(i int) string { return fmt.Sprintf("k%05d", i) }

func replTuple(i int) relation.Tuple {
	return relation.Tuple{relation.NewString(replKey(i)), relation.NewString("v")}
}

// replCluster stands up the primary plus n followers, preloaded with
// replRows keys and fully caught up.
func replCluster(dir string, n int) (*replNode, []*replNode, error) {
	p, err := engine.Open(crashSchema(),
		engine.WithWALOptions(filepath.Join(dir, "primary"), wal.Options{Policy: wal.SyncNever}),
		engine.WithAccessDelay(scalingAccessDelay))
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < replRows; i++ {
		if err := p.Insert("R", replTuple(i)); err != nil {
			return nil, nil, err
		}
	}
	addr, srv, err := replServe(p)
	if err != nil {
		return nil, nil, err
	}
	primary := &replNode{addr: addr, srv: srv, db: p}

	followers := make([]*replNode, 0, n)
	for i := 0; i < n; i++ {
		fdb, err := engine.Open(crashSchema(), engine.AsReplica(),
			engine.WithWALOptions(filepath.Join(dir, fmt.Sprintf("follower-%d", i)), wal.Options{Policy: wal.SyncNever}),
			engine.WithAccessDelay(scalingAccessDelay))
		if err != nil {
			return primary, followers, err
		}
		f, err := repl.Open(addr, fdb, repl.Options{PollInterval: replPollEvery})
		if err != nil {
			fdb.Close()
			return primary, followers, err
		}
		faddr, fsrv, err := replServe(f.Backend())
		if err != nil {
			f.Close()
			fdb.Close()
			return primary, followers, err
		}
		followers = append(followers, &replNode{addr: faddr, srv: fsrv, f: f, db: fdb})
	}
	horizon := p.DurableLSN()
	for _, fn := range followers {
		fn := fn
		if err := replWait("follower catch-up", func() bool { return fn.db.DurableLSN() >= horizon }); err != nil {
			return primary, followers, err
		}
	}
	return primary, followers, nil
}

func (n *replNode) close() {
	if n == nil {
		return
	}
	n.srv.Close()
	if n.f != nil {
		n.f.Close()
	}
	n.db.Close()
}

// replCell drives the read-only workload against the given serving nodes:
// replClients pooled clients per node, uniform keys, aggregate throughput.
func replCell(replicas int, nodes []*replNode) (replRow, error) {
	sessions := make([]relmerge.Session, len(nodes))
	for i, n := range nodes {
		sess, err := relmerge.Dial(n.addr, relmerge.WithPoolSize(replClients))
		if err != nil {
			return replRow{}, fmt.Errorf("benchreport: replication dial: %w", err)
		}
		defer sess.Close()
		sessions[i] = sess
	}

	totalClients := replClients * len(nodes)
	latencies := make([][]time.Duration, totalClients)
	errs := make([]int, totalClients)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < totalClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := sessions[w%len(sessions)]
			rng := rand.New(rand.NewSource(int64(11_000 + 17*replicas + w)))
			lats := make([]time.Duration, 0, replReadsPer)
			for i := 0; i < replReadsPer; i++ {
				key := relation.Tuple{relation.NewString(replKey(rng.Intn(replRows)))}
				t0 := time.Now()
				_, ok, err := sess.Fetch("R", key)
				lats = append(lats, time.Since(t0))
				if err != nil || !ok {
					errs[w]++
				}
			}
			latencies[w] = lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) int64 { return all[int(p*float64(len(all)-1))].Nanoseconds() }
	errors := 0
	for _, e := range errs {
		errors += e
	}
	return replRow{
		Replicas:  replicas,
		Nodes:     len(nodes),
		Clients:   totalClients,
		Ops:       len(all),
		OpsPerSec: float64(len(all)) / elapsed.Seconds(),
		P50Ns:     pct(0.50),
		P99Ns:     pct(0.99),
		Errors:    errors,
	}, nil
}

// replLagProbe bursts writes into the primary while sampling one follower's
// record lag, then times the catch-up back to the horizon.
func replLagProbe(primary *replNode, follower *replNode) (*replLag, error) {
	bounds := []uint64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}
	counts := make([]int, len(bounds)+1)
	lag := &replLag{WriteBurst: replBurst}

	done := make(chan error, 1)
	go func() {
		for i := 0; i < replBurst; i++ {
			if err := primary.db.Insert("R", replTuple(100_000+i)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	sample := func() {
		l := follower.f.Info().LagRecords
		if l > lag.MaxLagRecords {
			lag.MaxLagRecords = l
		}
		i := sort.Search(len(bounds), func(i int) bool { return bounds[i] >= l })
		counts[i]++
		lag.Samples++
	}
	for {
		select {
		case err := <-done:
			if err != nil {
				return nil, err
			}
			horizon := primary.db.DurableLSN()
			t0 := time.Now()
			if err := replWait("post-burst catch-up", func() bool {
				sample()
				return follower.db.DurableLSN() >= horizon
			}); err != nil {
				return nil, err
			}
			lag.CatchUpMS = float64(time.Since(t0).Nanoseconds()) / 1e6
			// Cumulative counts, prometheus-style: bucket le=N counts every
			// sample with lag <= N.
			cum := 0
			for i, b := range bounds {
				cum += counts[i]
				lag.Buckets = append(lag.Buckets, replLagBucket{Le: fmt.Sprint(b), Count: cum})
			}
			lag.Buckets = append(lag.Buckets, replLagBucket{Le: "+Inf", Count: cum + counts[len(bounds)]})
			return lag, nil
		case <-time.After(replLagSample):
			sample()
		}
	}
}

// replFailoverProbe writes acked inserts through the primary server, waits
// for the follower to reach the primary's durable horizon, kills the primary
// abruptly, and promotes the follower.
func replFailoverProbe(dir string) (*replFailover, error) {
	p, err := engine.Open(crashSchema(),
		engine.WithWALOptions(filepath.Join(dir, "fo-primary"), wal.Options{Policy: wal.SyncAlways}))
	if err != nil {
		return nil, err
	}
	defer p.Close()
	addr, srv, err := replServe(p)
	if err != nil {
		return nil, err
	}
	fdb, err := engine.Open(crashSchema(), engine.AsReplica(),
		engine.WithWALOptions(filepath.Join(dir, "fo-follower"), wal.Options{Policy: wal.SyncAlways}))
	if err != nil {
		srv.Close()
		return nil, err
	}
	defer fdb.Close()
	f, err := repl.Open(addr, fdb, repl.Options{PollInterval: replPollEvery})
	if err != nil {
		srv.Close()
		return nil, err
	}
	defer f.Close()

	sess, err := relmerge.Dial(addr)
	if err != nil {
		srv.Close()
		return nil, err
	}
	var acked []string
	for i := 0; i < replAckedOps; i++ {
		if err := sess.Insert("R", replTuple(i)); err != nil {
			break // refused writes were never acknowledged
		}
		acked = append(acked, replKey(i))
	}
	sess.Close()

	horizon := p.DurableLSN()
	if err := replWait("failover catch-up", func() bool { return fdb.DurableLSN() >= horizon }); err != nil {
		srv.Close()
		return nil, err
	}
	srv.Close() // abrupt primary death: no drain, no checkpoint
	if err := f.Promote(); err != nil {
		return nil, err
	}

	fo := &replFailover{
		AckedWrites:     len(acked),
		RecoveredWrites: fdb.Count("R"),
		PromotedLSN:     fdb.DurableLSN(),
	}
	recovered := make(map[string]bool, fo.RecoveredWrites)
	for _, tup := range fdb.Relation("R").Tuples() {
		recovered[tup[0].String()] = true
	}
	for _, key := range acked {
		if !recovered[key] {
			fo.AckedMissing++
		}
		delete(recovered, key)
	}
	fo.UnackedRecovered = len(recovered)
	fo.ExactPrefix = fo.AckedMissing == 0 && fo.UnackedRecovered == 0 &&
		fo.RecoveredWrites == fo.AckedWrites
	return fo, nil
}

// replicationSuite runs the grid, the lag probe, and the failover probe,
// returning the rows plus the aggregate-throughput speedup per replica count
// (relative to the primary serving alone).
func replicationSuite() ([]replRow, map[string]float64, *replLag, *replFailover, error) {
	dir, err := os.MkdirTemp("", "relmerge-repl-*")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	defer os.RemoveAll(dir)

	primary, followers, err := replCluster(dir, replFollowers)
	defer func() {
		for _, f := range followers {
			f.close()
		}
		primary.close()
	}()
	if err != nil {
		return nil, nil, nil, nil, err
	}

	var rows []replRow
	speedups := map[string]float64{}
	var base float64
	for replicas := 0; replicas <= replFollowers; replicas++ {
		nodes := append([]*replNode{primary}, followers[:replicas]...)
		row, err := replCell(replicas, nodes)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		rows = append(rows, row)
		if replicas == 0 {
			base = row.OpsPerSec
		} else if base > 0 {
			speedups[fmt.Sprintf("replicas=%d", replicas)] = row.OpsPerSec / base
		}
	}

	lag, err := replLagProbe(primary, followers[0])
	if err != nil {
		return nil, nil, nil, nil, err
	}
	failover, err := replFailoverProbe(dir)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return rows, speedups, lag, failover, nil
}

// P11 — replication: follower read fan-out, shipping lag, failover.
func runP11(int) {
	fmt.Printf("R(K,V) with %d keys, read-only clients, %v simulated access, %d server workers/node;\n",
		replRows, scalingAccessDelay, replWorkers)
	fmt.Printf("followers ship the primary's WAL over the v2 repl opcodes and serve from their own engines\n\n")
	rows, speedups, lag, failover, err := replicationSuite()
	if err != nil {
		must(err)
	}
	fmt.Printf("%-10s %-7s %-9s %-12s %-12s %-12s %s\n", "replicas", "nodes", "clients", "agg ops/sec", "p50", "p99", "errors")
	for _, r := range rows {
		fmt.Printf("%-10d %-7d %-9d %-12.0f %-12v %-12v %d\n",
			r.Replicas, r.Nodes, r.Clients, r.OpsPerSec,
			time.Duration(r.P50Ns), time.Duration(r.P99Ns), r.Errors)
	}
	fmt.Printf("\naggregate read throughput vs. the primary alone:\n")
	for replicas := 1; replicas <= replFollowers; replicas++ {
		k := fmt.Sprintf("replicas=%d", replicas)
		if s, ok := speedups[k]; ok {
			fmt.Printf("  %-14s %.1fx\n", k, s)
		}
	}
	fmt.Printf("\nshipping lag during a %d-write burst (%d samples, max %d records behind, caught up in %.1fms):\n",
		lag.WriteBurst, lag.Samples, lag.MaxLagRecords, lag.CatchUpMS)
	for _, b := range lag.Buckets {
		fmt.Printf("  lag <= %-6s %d\n", b.Le, b.Count)
	}
	fmt.Printf("\nfailover probe (fsync=always, kill primary after follower reaches the acked horizon, promote):\n")
	fmt.Printf("  acked=%d recovered=%d acked_missing=%d unacked_recovered=%d promoted_lsn=%d exact_prefix=%v\n",
		failover.AckedWrites, failover.RecoveredWrites, failover.AckedMissing,
		failover.UnackedRecovered, failover.PromotedLSN, failover.ExactPrefix)
	fmt.Println("\neach replica adds a full node of read capacity because followers answer")
	fmt.Println("from their own MVCC engines — the primary ships committed records once")
	fmt.Println("and never sees the read traffic; the promoted follower owns exactly the")
	fmt.Println("prefix the primary acknowledged and shipped.")
}
