package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/engine"
	"repro/internal/wal"
	"repro/internal/workload"
)

// The read-under-write suite: reader throughput on the star8 shapes with the
// writer idle, with one saturating writer, and with a saturating writer plus
// back-to-back checkpoints. On the MVCC read path the three columns should be
// close: readers pin immutable versions with one atomic load, so a saturating
// writer (which serializes on the per-table write locks and the WAL) costs
// the readers nothing but memory bandwidth, and a checkpoint (which quiesces
// writers only) leaves fetch p99 bounded. The same simulated access delay as
// the scaling suite applies.
const (
	p8AccessDelay = 200 * time.Microsecond
	p8Rows        = 64
	p8Reads       = 120 // fetches per reader per cell
	p8ZipfS       = 1.2
)

var p8Readers = []int{1, 2, 4, 8}

// p8Mode is one column of the suite.
type p8Mode struct {
	Name       string
	Writer     bool
	Checkpoint bool
}

func p8Modes() []p8Mode {
	return []p8Mode{
		{"idle", false, false},
		{"write", true, false},
		{"write+ckpt", true, true},
	}
}

// p8Row is one (db, mode, readers) measurement of the suite.
type p8Row struct {
	Shape       string  `json:"shape"`
	DB          string  `json:"db"`
	Mode        string  `json:"mode"`
	Readers     int     `json:"readers"`
	Reads       int     `json:"reads"`
	ReadsPerSec float64 `json:"reads_per_sec"`
	P50Ns       int64   `json:"p50_ns"`
	P99Ns       int64   `json:"p99_ns"`
	Writes      int     `json:"writes"`
	Checkpoints int     `json:"checkpoints"`
	// LockAcquireDelta is the engine's lock-plan acquisition growth during
	// the cell. In idle mode it must be 0 — the lock-free read-path witness.
	LockAcquireDelta uint64 `json:"lock_acquire_delta"`
}

// readUnderWriteSuite runs the grid on a durable star8 bench and returns the
// rows plus the saturated/idle reader-throughput ratio per (db, readers)
// curve, keyed "star8/db/readers=N". A ratio near 1.0 is the headline MVCC
// result: the saturating writer did not slow the readers down.
func readUnderWriteSuite() ([]p8Row, map[string]float64, error) {
	dir, err := os.MkdirTemp("", "relmerge-p8-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	b, err := workload.NewBenchSided(workload.StarEER(8), "E0", p8Rows, 42,
		func(s workload.Side) []engine.Option {
			return []engine.Option{
				engine.WithAccessDelay(p8AccessDelay),
				engine.WithWALOptions(fmt.Sprintf("%s/%v", dir, s), wal.Options{Policy: wal.SyncNever}),
			}
		})
	if err != nil {
		return nil, nil, fmt.Errorf("benchreport: p8 bench: %w", err)
	}

	var rows []p8Row
	ratios := map[string]float64{}
	for _, side := range []workload.Side{workload.SideBase, workload.SideMerged} {
		idle := map[int]float64{}
		for _, mode := range p8Modes() {
			for _, readers := range p8Readers {
				res, err := b.RunReadUnderWrite(side, workload.ReadUnderWriteConfig{
					Readers:        readers,
					ReadsPerReader: p8Reads,
					Writer:         mode.Writer,
					Checkpoint:     mode.Checkpoint,
					ZipfS:          p8ZipfS,
					Seed:           int64(1000*readers) + int64(side),
				})
				if err != nil {
					return nil, nil, fmt.Errorf("benchreport: p8 %v/%s readers=%d: %w", side, mode.Name, readers, err)
				}
				if mode.Name == "idle" && res.LockAcquireDelta != 0 {
					return nil, nil, fmt.Errorf("benchreport: p8 %v idle readers=%d acquired %d lock plans: read path is not lock-free",
						side, readers, res.LockAcquireDelta)
				}
				rows = append(rows, p8Row{
					Shape:            "star8",
					DB:               side.String(),
					Mode:             mode.Name,
					Readers:          readers,
					Reads:            res.Reads,
					ReadsPerSec:      res.ReadsPerSec,
					P50Ns:            res.P50.Nanoseconds(),
					P99Ns:            res.P99.Nanoseconds(),
					Writes:           res.Writes,
					Checkpoints:      res.Checkpoints,
					LockAcquireDelta: res.LockAcquireDelta,
				})
				switch mode.Name {
				case "idle":
					idle[readers] = res.ReadsPerSec
				case "write":
					if base := idle[readers]; base > 0 {
						ratios[fmt.Sprintf("star8/%v/readers=%d", side, readers)] = res.ReadsPerSec / base
					}
				}
			}
		}
	}
	return rows, ratios, nil
}

// P8 — read-under-write: the grid plus the saturated/idle ratios, as tables.
func runP8(int) {
	fmt.Printf("navigational fetches under %v simulated access; saturating writer and\n", p8AccessDelay)
	fmt.Printf("checkpoint cycler race the readers; MVCC readers pin versions lock-free\n\n")
	rows, ratios, err := readUnderWriteSuite()
	if err != nil {
		must(err)
	}
	fmt.Printf("%-8s %-12s %-9s %-12s %-12s %-12s %-8s %s\n",
		"db", "mode", "readers", "reads/sec", "p50", "p99", "writes", "ckpts")
	for _, r := range rows {
		fmt.Printf("%-8s %-12s %-9d %-12.0f %-12v %-12v %-8d %d\n",
			r.DB, r.Mode, r.Readers, r.ReadsPerSec,
			time.Duration(r.P50Ns), time.Duration(r.P99Ns), r.Writes, r.Checkpoints)
	}
	fmt.Println("\nreader throughput under saturating writer, relative to writer-idle:")
	for _, db := range []string{"base", "merged"} {
		for _, readers := range p8Readers {
			k := fmt.Sprintf("star8/%s/readers=%d", db, readers)
			if s, ok := ratios[k]; ok {
				fmt.Printf("  %-28s %.2fx\n", k, s)
			}
		}
	}
	fmt.Println("\nthe idle column took zero lock-plan acquisitions (verified per cell):")
	fmt.Println("fetch and scan never touch a mutex, so the writer's lock and WAL traffic")
	fmt.Println("cannot stall them — only publish (one pointer swap) is shared.")
}

// runProbe is the quick-mode read-under-write check behind `benchreport
// -probe`, wired into `make check`: a small bench, one idle phase asserting
// the zero-lock read path, one saturated phase asserting readers kept
// succeeding while a writer ran flat out. Seconds, not minutes — the full
// P8 grid stays in the JSON/report runs.
func runProbe() error {
	b, err := workload.NewBench(workload.StarEER(4), "E0", 24, 7)
	if err != nil {
		return err
	}
	idle, err := b.RunReadUnderWrite(workload.SideMerged, workload.ReadUnderWriteConfig{
		Readers: 4, ReadsPerReader: 60, Seed: 7,
	})
	if err != nil {
		return fmt.Errorf("probe idle phase: %w", err)
	}
	if idle.LockAcquireDelta != 0 {
		return fmt.Errorf("probe: read-only phase acquired %d lock plans; read path is not lock-free", idle.LockAcquireDelta)
	}
	sat, err := b.RunReadUnderWrite(workload.SideMerged, workload.ReadUnderWriteConfig{
		Readers: 4, ReadsPerReader: 60, Writer: true, Seed: 8,
	})
	if err != nil {
		return fmt.Errorf("probe saturated phase: %w", err)
	}
	if sat.Writes == 0 {
		return fmt.Errorf("probe: saturating writer made no progress")
	}
	fmt.Printf("read-under-write probe ok: idle %d reads lock-free, saturated %d reads beside %d writes\n",
		idle.Reads, sat.Reads, sat.Writes)
	return nil
}
