// Command benchreport regenerates every evaluation artifact of Markowitz
// (ICDE 1992): the worked figures 1–8 (experiments E1–E8), the empirical
// verification of Propositions 3.1, 4.1, 4.2, 5.1, and 5.2 (E9–E10), and the
// performance experiments behind the paper's motivating claims (P1–P3).
//
// Usage:
//
//	benchreport            # run everything
//	benchreport -only E4   # run one experiment
//	benchreport -rows 200  # scale the performance experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

type experiment struct {
	id    string
	title string
	run   func(rows int)
}

func main() {
	var (
		only     = flag.String("only", "", "run a single experiment (e.g. E4 or P1)")
		rows     = flag.Int("rows", 100, "row count for the performance experiments")
		jsonPath = flag.String("json", "", "write machine-readable micro-benchmarks to this file and exit")
		probe    = flag.Bool("probe", false, "quick read-under-write sanity check (the make-check gate) and exit")
	)
	flag.Parse()

	if *probe {
		if err := runProbe(); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		if err := runShardProbe(); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonPath != "" {
		if err := runJSON(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		return
	}

	experiments := []experiment{
		{"E1", "Figure 1: ER translation vs. the Teorey baseline (the WORKS anomaly)", runE1},
		{"E2", "Figure 2 and the synthesis baseline: OFFER + TEACH → ASSIGN", runE2},
		{"E3", "Figure 3: the university schema", runE3},
		{"E4", "Figure 4: Merge(COURSE, OFFER, TEACH)", runE4},
		{"E5", "Figure 5: Merge(COURSE, OFFER, TEACH, ASSIST)", runE5},
		{"E6", "Figure 6: Remove(O.C.NR, T.C.NR, A.C.NR)", runE6},
		{"E7", "Figure 7: the EER schema and its translation", runE7},
		{"E8", "Figure 8: structures amenable to single-relation representation", runE8},
		{"E9", "Props. 3.1/4.1/4.2: key-relations, information capacity, BCNF", runE9},
		{"E10", "Props. 5.1/5.2: DBMS applicability conditions", runE10},
		{"P1", "Access performance: object-profile lookups, base vs. merged", runP1},
		{"P2", "Maintenance overhead: declarative vs. trigger-style constraints", runP2},
		{"P3", "Procedure scalability: Merge + RemoveAll cost vs. merge-set size", runP3},
		{"P4", "Denormalization advisor: workload-driven merge recommendations", runP4},
		{"P5", "Concurrent scalability: mixed workload throughput vs. goroutines", runP5},
		{"P6", "Durability overhead: mixed workload throughput vs. fsync policy", runP6},
		{"P7", "Client/server serving: Session throughput, embedded vs. remote", runP7},
		{"P8", "Read-under-write: MVCC reader throughput vs. saturating writer", runP8},
		{"P9", "Shard scaling: write throughput and cross-shard IND probe cost vs. shard count", runP9},
		{"P10", "Wire protocol overhead: binary v2 vs JSON v1, throughput and bytes/op", runP10},
		{"P11", "Replication: follower read fan-out, shipping lag, failover", runP11},
		{"P12", "Adaptive merging: live advisor A/B, merge-favorable vs merge-hostile", runP12},
	}

	matched := false
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		matched = true
		fmt.Printf("═══ %s — %s\n\n", e.id, e.title)
		e.run(*rows)
		fmt.Println()
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "benchreport: unknown experiment %q\n", *only)
		os.Exit(1)
	}
}
