package main

import (
	"fmt"
	"time"

	"repro/internal/eer"
	"repro/internal/engine"
	"repro/internal/workload"
)

// The goroutine-scaling suite: a closed-loop 90/10 read/write mix driven by
// 1, 2, 4, and 8 workers against the base and merged designs of each workload
// shape. The engine simulates one storage access per operation inside its
// critical sections (the paper's page-access cost model), so throughput
// measures how well the per-table reader/writer locks overlap those accesses
// — not raw in-memory map speed, which would saturate a single CPU.
const (
	scalingAccessDelay  = 200 * time.Microsecond
	scalingOps          = 320
	scalingReadFraction = 0.9
	scalingZipfS        = 1.2
	scalingRows         = 64
)

var scalingWorkers = []int{1, 2, 4, 8}

// scalingShape is one workload schema in the suite.
type scalingShape struct {
	Name string
	Root string
	Make func() *eer.Schema
}

func scalingShapes() []scalingShape {
	return []scalingShape{
		{"star8", "E0", func() *eer.Schema { return workload.StarEER(8) }},
		{"chain8", "E0", func() *eer.Schema { return workload.ChainEER(8) }},
		{"hierarchy8x2", "P", func() *eer.Schema { return workload.HierarchyEER(8, 2) }},
	}
}

// scalingRow is one (shape, design, workers) measurement of the suite.
type scalingRow struct {
	Shape        string  `json:"shape"`
	DB           string  `json:"db"`
	Workers      int     `json:"workers"`
	Ops          int     `json:"ops"`
	ReadFraction float64 `json:"read_fraction"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	P50Ns        int64   `json:"p50_ns"`
	P99Ns        int64   `json:"p99_ns"`
}

// scalingSuite runs the whole grid and returns the rows plus the 1→8 worker
// throughput speedup per (shape, design) curve, keyed "shape/db".
func scalingSuite() ([]scalingRow, map[string]float64, error) {
	var rows []scalingRow
	speedups := map[string]float64{}
	for _, shape := range scalingShapes() {
		b, err := workload.NewBench(shape.Make(), shape.Root, scalingRows, 42,
			engine.WithAccessDelay(scalingAccessDelay))
		if err != nil {
			return nil, nil, fmt.Errorf("benchreport: bench %s: %w", shape.Name, err)
		}
		for _, side := range []workload.Side{workload.SideBase, workload.SideMerged} {
			var base1 float64
			for _, w := range scalingWorkers {
				res, err := b.RunMixed(side, workload.MixedConfig{
					Workers:      w,
					Ops:          scalingOps,
					ReadFraction: scalingReadFraction,
					ZipfS:        scalingZipfS,
					Seed:         int64(100*w) + int64(side),
				})
				if err != nil {
					return nil, nil, fmt.Errorf("benchreport: %s/%v workers=%d: %w", shape.Name, side, w, err)
				}
				rows = append(rows, scalingRow{
					Shape:        shape.Name,
					DB:           side.String(),
					Workers:      w,
					Ops:          res.Ops,
					ReadFraction: scalingReadFraction,
					OpsPerSec:    res.OpsPerSec,
					P50Ns:        res.P50.Nanoseconds(),
					P99Ns:        res.P99.Nanoseconds(),
				})
				if w == 1 {
					base1 = res.OpsPerSec
				} else if w == scalingWorkers[len(scalingWorkers)-1] && base1 > 0 {
					speedups[shape.Name+"/"+side.String()] = res.OpsPerSec / base1
				}
			}
		}
	}
	return rows, speedups, nil
}

// P5 — concurrent scalability: the same grid as the JSON suite, printed as a
// table.
func runP5(int) {
	fmt.Printf("closed-loop %d%%/%d%% read/write mix, Zipf(%.1f) keys, %v simulated access\n\n",
		int(scalingReadFraction*100), 100-int(scalingReadFraction*100), scalingZipfS, scalingAccessDelay)
	rows, speedups, err := scalingSuite()
	if err != nil {
		must(err)
	}
	fmt.Printf("%-14s %-8s %-9s %-12s %-12s %s\n", "shape", "db", "workers", "ops/sec", "p50", "p99")
	for _, r := range rows {
		fmt.Printf("%-14s %-8s %-9d %-12.0f %-12v %v\n",
			r.Shape, r.DB, r.Workers, r.OpsPerSec,
			time.Duration(r.P50Ns), time.Duration(r.P99Ns))
	}
	fmt.Println("\nthroughput scaling, 1 → 8 workers:")
	for _, shape := range scalingShapes() {
		for _, db := range []string{"base", "merged"} {
			if s, ok := speedups[shape.Name+"/"+db]; ok {
				fmt.Printf("  %-22s %.1fx\n", shape.Name+"/"+db, s)
			}
		}
	}
	fmt.Println("\nreads overlap under the per-table reader locks (their simulated page")
	fmt.Println("accesses run concurrently); the 10% writes serialize per table, bounding")
	fmt.Println("the curve below the worker count.")
}
