package main

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/server"
	"repro/pkg/relmerge"
)

// The protocol suite: the same remote workload over the binary v2 codec and
// the JSON v1 codec, at 1–8 pooled client connections, read-heavy and
// write-heavy. Unlike the serving suite there is NO simulated access delay
// and the relation is wide (a key plus 11 string payload columns), so frame
// encode/decode cost — the thing the codecs differ in — dominates each round
// trip instead of being hidden behind engine work. Bytes per operation come
// from the client-side wire counters, allocations per operation from the
// process-wide allocation delta across the cell, and the steady-state encode
// cost from an AllocsPerRun probe of the pooled frame writer.
const (
	protocolOps     = 8000
	protocolRows    = 512
	protocolCols    = 11 // payload columns besides the key
	protocolWorkers = 8  // server worker pool
)

var (
	protocolClients = []int{1, 2, 4, 8}
	protocolMixes   = []struct {
		Name         string
		ReadFraction float64
	}{
		{"read-heavy", 0.9},
		{"write-heavy", 0.1},
	}
)

// protocolRow is one (codec, mix, clients) measurement.
type protocolRow struct {
	Codec                string  `json:"codec"`
	Mix                  string  `json:"mix"`
	Clients              int     `json:"clients"`
	Ops                  int     `json:"ops"`
	OpsPerSec            float64 `json:"ops_per_sec"`
	P50Ns                int64   `json:"p50_ns"`
	P99Ns                int64   `json:"p99_ns"`
	BytesPerOp           float64 `json:"bytes_per_op"`
	AllocsPerOp          float64 `json:"allocs_per_op"`
	EncodeAllocsPerFrame float64 `json:"encode_allocs_per_frame"`
	Errors               int     `json:"errors"`
}

// wideSchema is the protocol suite's relation: string key, 11 payload
// columns, so one tuple is a few hundred wire bytes under either codec.
func wideSchema() *schema.Schema {
	attrs := []schema.Attribute{{Name: "W.K", Domain: "k"}}
	for i := 0; i < protocolCols; i++ {
		attrs = append(attrs, schema.Attribute{Name: fmt.Sprintf("W.C%d", i), Domain: "c"})
	}
	return schema.New().AddScheme(schema.NewScheme("W", attrs, []string{"W.K"}))
}

func wideKey(i int) string { return fmt.Sprintf("w%04d", i) }

func wideTuple(i, gen int) relation.Tuple {
	t := relation.Tuple{relation.NewString(wideKey(i))}
	for c := 0; c < protocolCols; c++ {
		t = append(t, relation.NewString(fmt.Sprintf("col%02d-gen%06d-%024d", c, gen, i)))
	}
	return t
}

// protocolEncodeAllocs probes the steady-state encode path: allocations per
// pooled WriteFrameVersion of a representative wide-update request, after
// warming the frame pool.
func protocolEncodeAllocs(version int) float64 {
	req := &server.Request{Op: server.OpUpdate, Relation: "W",
		Key:   server.EncodeTuple(relation.Tuple{relation.NewString(wideKey(1))}),
		Tuple: server.EncodeTuple(wideTuple(1, 1))}
	for i := 0; i < 16; i++ {
		server.WriteFrameVersion(io.Discard, version, req)
	}
	return testing.AllocsPerRun(200, func() {
		server.WriteFrameVersion(io.Discard, version, req)
	})
}

// protocolCell drives one (codec, mix, clients) cell against a running
// server and returns its row.
func protocolCell(addr string, wire relmerge.Wire, mixName string, readFraction float64, clients int) (protocolRow, error) {
	reg := obs.NewRegistry()
	sess, err := relmerge.Open(relmerge.Config{
		Backend:       relmerge.Remote,
		Addr:          addr,
		Wire:          wire,
		Registry:      reg,
		RemoteOptions: []relmerge.RemoteOption{relmerge.WithPoolSize(clients)},
	})
	if err != nil {
		return protocolRow{}, fmt.Errorf("benchreport: protocol dial (%s): %w", wire, err)
	}
	defer sess.Close()

	perWorker := protocolOps / clients
	latencies := make([][]time.Duration, clients)
	errs := make([]int, clients)

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7_000 + 13*clients + w)))
			lats := make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				idx := rng.Intn(protocolRows)
				t0 := time.Now()
				var err error
				if rng.Float64() < readFraction {
					_, _, err = sess.Fetch("W", relation.Tuple{relation.NewString(wideKey(idx))})
				} else {
					err = sess.Update("W", relation.Tuple{relation.NewString(wideKey(idx))}, wideTuple(idx, i))
				}
				lats = append(lats, time.Since(t0))
				if err != nil {
					errs[w]++
				}
			}
			latencies[w] = lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) int64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i].Nanoseconds()
	}
	ops := len(all)
	errors := 0
	for _, e := range errs {
		errors += e
	}

	// The client-side wire counters cover exactly this cell: the registry is
	// fresh, so the only traffic in it is this session's hellos and ops.
	var bytes float64
	for _, p := range reg.Snapshot() {
		if p.Name == "client.bytes_read" || p.Name == "client.bytes_written" {
			bytes += p.Value
		}
	}

	return protocolRow{
		Codec:       wire.String(),
		Mix:         mixName,
		Clients:     clients,
		Ops:         ops,
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		P50Ns:       pct(0.50),
		P99Ns:       pct(0.99),
		BytesPerOp:  bytes / float64(ops),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(ops),
		Errors:      errors,
	}, nil
}

// protocolSuite runs the full grid and returns the rows plus the binary/json
// throughput ratios per (mix, clients) cell.
func protocolSuite() ([]protocolRow, map[string]float64, error) {
	eng, err := engine.Open(wideSchema())
	if err != nil {
		return nil, nil, err
	}
	srv := server.New(eng, server.Config{Workers: protocolWorkers, Registry: obs.NewRegistry()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	// Preload over one throwaway session, then measure.
	pre, err := relmerge.Dial(addr)
	if err != nil {
		return nil, nil, err
	}
	tuples := make([]relation.Tuple, protocolRows)
	for i := range tuples {
		tuples[i] = wideTuple(i, 0)
	}
	if err := pre.InsertBatch("W", tuples); err != nil {
		pre.Close()
		return nil, nil, fmt.Errorf("benchreport: protocol preload: %w", err)
	}
	pre.Close()

	encodeAllocs := map[string]float64{
		"binary": protocolEncodeAllocs(server.ProtoVersionBinary),
		"json":   protocolEncodeAllocs(server.ProtoVersion),
	}

	var rows []protocolRow
	ratios := map[string]float64{}
	for _, mix := range protocolMixes {
		for _, clients := range protocolClients {
			var perCodec [2]float64
			for i, wire := range []relmerge.Wire{relmerge.WireBinary, relmerge.WireJSON} {
				row, err := protocolCell(addr, wire, mix.Name, mix.ReadFraction, clients)
				if err != nil {
					return nil, nil, err
				}
				row.EncodeAllocsPerFrame = encodeAllocs[row.Codec]
				rows = append(rows, row)
				perCodec[i] = row.OpsPerSec
			}
			if perCodec[1] > 0 {
				ratios[fmt.Sprintf("%s/clients=%d", mix.Name, clients)] = perCodec[0] / perCodec[1]
			}
		}
	}
	return rows, ratios, nil
}

// P10 — wire protocol overhead: binary v2 vs JSON v1, as a table.
func runP10(int) {
	fmt.Printf("wide relation (key + %d string columns, %d rows preloaded), no access delay;\n",
		protocolCols, protocolRows)
	fmt.Printf("remote = relmerged over loopback TCP, %d server workers, pooled connections\n\n", protocolWorkers)
	rows, ratios, err := protocolSuite()
	if err != nil {
		must(err)
	}
	fmt.Printf("%-8s %-12s %-9s %-12s %-12s %-12s %-11s %-11s %-9s %s\n",
		"codec", "mix", "clients", "ops/sec", "p50", "p99", "bytes/op", "allocs/op", "enc/frame", "errors")
	for _, r := range rows {
		fmt.Printf("%-8s %-12s %-9d %-12.0f %-12v %-12v %-11.0f %-11.1f %-9.1f %d\n",
			r.Codec, r.Mix, r.Clients, r.OpsPerSec,
			time.Duration(r.P50Ns), time.Duration(r.P99Ns),
			r.BytesPerOp, r.AllocsPerOp, r.EncodeAllocsPerFrame, r.Errors)
	}
	fmt.Println("\nbinary / json throughput ratio:")
	for _, mix := range protocolMixes {
		for _, clients := range protocolClients {
			k := fmt.Sprintf("%s/clients=%d", mix.Name, clients)
			if s, ok := ratios[k]; ok {
				fmt.Printf("  %-26s %.2fx\n", k, s)
			}
		}
	}
	fmt.Println("\nthe binary codec wins on both axes: smaller frames (varint ids and")
	fmt.Println("lengths, raw float bits instead of hex strings, no JSON syntax) and")
	fmt.Println("cheaper encode/decode (pooled buffers, no reflection), so the gap")
	fmt.Println("widens as client concurrency pushes the codec onto the critical path.")
}
