package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/attrset"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fd"
	"repro/internal/figures"
	"repro/internal/keyrel"
	"repro/internal/nullcon"
	"repro/internal/schema"
	"repro/internal/translate"
	"repro/internal/workload"
	"repro/pkg/relmerge"
)

// benchMeta records the run environment, so a committed BENCH_*.json can be
// compared against a regeneration: throughput and latency figures only mean
// something next to the toolchain and parallelism that produced them.
type benchMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

func runMeta() benchMeta {
	return benchMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// suite wraps one suite's rows with the run environment, so every section of
// the report is self-describing — a section copied out of the file, or
// compared against another run's, carries the toolchain and parallelism that
// produced it rather than relying on one file-level stamp.
type suite[T any] struct {
	Meta benchMeta `json:"meta"`
	Rows []T       `json:"rows"`
}

func newSuite[T any](rows []T) suite[T] { return suite[T]{Meta: runMeta(), Rows: rows} }

// benchProbe is one machine-readable measurement.
type benchProbe struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchReport is the BENCH_PR4.json document: raw probes, the derived
// speedup ratios of the bitset closure engine over the retained map-based
// reference implementation, the attrset cache hit rates observed during the
// probes, the per-regime constraint-maintenance counters of the fig. 3
// replay (declarative checks vs. trigger firings, base vs. merged design),
// the goroutine-scaling throughput grid (scaling.go) with its 1→8-worker
// speedup per curve, and the durability grid (durability.go): mixed-workload
// throughput with the write-ahead log at each fsync policy, plus each
// policy's throughput cost relative to the no-log baseline.
type benchReport struct {
	Meta               benchMeta             `json:"meta"`
	Probes             suite[benchProbe]     `json:"probes"`
	Speedups           map[string]float64    `json:"speedups"`
	CacheHitRates      map[string]float64    `json:"cache_hit_rates"`
	Maintenance        suite[maintenanceRow] `json:"maintenance"`
	Scaling            suite[scalingRow]     `json:"scaling"`
	ScalingSpeedups    map[string]float64    `json:"scaling_speedups"`
	Durability         suite[durabilityRow]  `json:"durability"`
	DurabilityOverhead map[string]float64    `json:"durability_overhead"`
	Serving            suite[servingRow]     `json:"serving"`
	ServingSpeedups    map[string]float64    `json:"serving_speedups"`
	ServingCrash       *servingCrash         `json:"serving_crash"`
	ReadUnderWrite     suite[p8Row]          `json:"read_under_write"`
	ReadUnderRatios    map[string]float64    `json:"read_under_write_ratios"`
	Sharding           suite[shardingRow]    `json:"sharding"`
	ShardingSpeedups   map[string]float64    `json:"sharding_speedups"`
	Protocol           suite[protocolRow]    `json:"protocol"`
	ProtocolRatios     map[string]float64    `json:"protocol_ratios"`
	Replication        suite[replRow]        `json:"replication"`
	ReplicationGains   map[string]float64    `json:"replication_gains"`
	ReplicationLag     *replLag              `json:"replication_lag"`
	ReplicationFail    *replFailover         `json:"replication_failover"`
	Adaptive           suite[adaptiveRun]    `json:"adaptive"`
}

// maintenanceRow is one engine's constraint-maintenance profile for the
// fig. 3 replay: how much checking was declarative (Prop. 5.1's cheap
// regime) and how much needed trigger firings.
type maintenanceRow struct {
	DB                string `json:"db"`
	Inserts           int    `json:"inserts"`
	DeclarativeChecks int    `json:"declarative_checks"`
	TriggerFirings    int    `json:"trigger_firings"`
}

func chainFDs(n int) ([]string, []fd.Dep) {
	attrs := make([]string, 0, n+1)
	for i := 0; i <= n; i++ {
		attrs = append(attrs, fmt.Sprintf("A%d", i))
	}
	deps := make([]fd.Dep, 0, n)
	for i := 0; i < n; i++ {
		deps = append(deps, fd.NewDep(attrs[i:i+1], attrs[i+1:i+2]))
	}
	return attrs, deps
}

// reverseFDs returns the chain dependencies in reverse declaration order —
// the adversarial ordering for the reference fixpoint (each pass derives one
// new attribute, so it goes quadratic), to which the indexed counter
// algorithm is immune.
func reverseFDs(deps []fd.Dep) []fd.Dep {
	out := make([]fd.Dep, len(deps))
	for i, d := range deps {
		out[len(deps)-1-i] = d
	}
	return out
}

func starFDs(n int) ([]string, []fd.Dep) {
	attrs := []string{"Hub"}
	var deps []fd.Dep
	for i := 0; i < n; i++ {
		s := fmt.Sprintf("S%d", i)
		attrs = append(attrs, s)
		deps = append(deps, fd.NewDep([]string{"Hub"}, []string{s}))
	}
	return attrs, deps
}

func chainExistence(n int) []schema.NullExistence {
	nes := make([]schema.NullExistence, 0, n)
	for i := 0; i < n; i++ {
		nes = append(nes, schema.NullExistence{
			Scheme: "R",
			Y:      []string{fmt.Sprintf("R.A%d", i)},
			Z:      []string{fmt.Sprintf("R.A%d", i+1)},
		})
	}
	return nes
}

func probe(name string, fn func(b *testing.B)) benchProbe {
	r := testing.Benchmark(fn)
	return benchProbe{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// runJSON measures the dependency-reasoning hot paths and writes the report.
func runJSON(path string) error {
	// Fail fast on an unwritable path rather than after minutes of probes.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	f.Close()

	var probes []benchProbe
	add := func(p benchProbe) {
		probes = append(probes, p)
		fmt.Printf("%-44s %14.1f ns/op %8d allocs/op\n", p.Name, p.NsPerOp, p.AllocsPerOp)
	}

	// Closure at scale: bitset engine vs. retained reference, forward and
	// adversarially-ordered chains plus a star.
	for _, n := range []int{1000, 10000} {
		attrs, deps := chainFDs(n)
		rev := reverseFDs(deps)
		add(probe(fmt.Sprintf("closure/bitset/chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fd.Closure(attrs[:1], deps)
			}
		}))
		add(probe(fmt.Sprintf("closure/reference/chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fd.ClosureReference(attrs[:1], deps)
			}
		}))
		add(probe(fmt.Sprintf("closure/bitset/chain-rev=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fd.Closure(attrs[:1], rev)
			}
		}))
		add(probe(fmt.Sprintf("closure/reference/chain-rev=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fd.ClosureReference(attrs[:1], rev)
			}
		}))
	}
	{
		attrs, deps := starFDs(1000)
		add(probe("closure/bitset/star=1000", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fd.Closure(attrs[:1], deps)
			}
		}))
		add(probe("closure/reference/star=1000", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fd.ClosureReference(attrs[:1], deps)
			}
		}))
	}

	// Steady-state memoized closure on a pinned index: the engine's hit path,
	// which must not allocate. The cache hit rate of this probe is the
	// memo-steady-state figure reported in cache_hit_rates.
	cacheHitRates := map[string]float64{}
	{
		_, deps := chainFDs(1000)
		engine := attrset.NewEngine()
		ix := engine.Index(len(deps), func(i int) ([]string, []string) {
			return deps[i].LHS, deps[i].RHS
		})
		seed := []string{"A0"}
		engine.Closure(ix, seed) // warm the memo
		add(probe("closure/engine-steady-state/chain=1000", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.Closure(ix, seed)
			}
		}))
		cacheHitRates["engine-steady-state/closure"] = engine.CacheStats().ClosureHitRate()
	}

	// Implication through the public fd adapter (fingerprint walk + memo hit).
	{
		attrs, deps := chainFDs(1000)
		d := fd.NewDep(attrs[:1], attrs[len(attrs)-1:])
		add(probe("implies/steady-state/chain=1000", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fd.Implies(deps, d)
			}
		}))
	}

	// Key enumeration and cover minimization at design scale.
	{
		attrs, deps := chainFDs(12)
		add(probe("candidate-keys/chain=12", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fd.CandidateKeys(attrs, deps)
			}
		}))
		add(probe("minimal-cover/chain=12", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fd.MinimalCover(deps)
			}
		}))
	}

	// Null-existence closure (FD-shaped reasoning over null constraints).
	{
		nes := chainExistence(1000)
		seed := []string{"R.A0"}
		add(probe("nullcon/close-existence/chain=1000", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nullcon.CloseExistence("R", nes, seed)
			}
		}))
	}

	// Schema-level paths: key-relation search, merge + constraint removal,
	// and the workload advisor.
	{
		star, err := translate.MS(workload.StarEER(16))
		if err != nil {
			return err
		}
		names := workload.MergeSetFor(star, "E0")
		add(probe("keyrel/find/star=16", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				keyrel.Find(star, names)
			}
		}))
		add(probe("core/merge-removeall/star=16", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := core.Merge(star, names, "MERGED")
				if err != nil {
					b.Fatal(err)
				}
				m.RemoveAll()
			}
		}))
	}
	{
		star, err := translate.MS(workload.StarEER(8))
		if err != nil {
			return err
		}
		w := relmerge.Workload{
			ProfileQueries: map[string]float64{"E0": 100},
			Inserts:        map[string]float64{"E0": 1},
		}
		cm := relmerge.DefaultCostModel()
		add(probe("advisor/advise/star=8", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := relmerge.AdviseDesign(star, w, cm); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// Package-level dependency-reasoning caches, warmed by every probe above.
	if st := fd.CacheStats(); st.ClosureHits+st.ClosureMisses > 0 {
		cacheHitRates["fd/closure"] = st.ClosureHitRate()
	}
	if st := nullcon.CacheStats(); st.ClosureHits+st.ClosureMisses > 0 {
		cacheHitRates["nullcon/closure"] = st.ClosureHitRate()
	}

	maintenance, err := maintenanceProfile()
	if err != nil {
		return err
	}

	scaling, scalingSpeedups, err := scalingSuite()
	if err != nil {
		return err
	}

	durability, durabilityOverhead, err := durabilitySuite()
	if err != nil {
		return err
	}

	serving, servingSpeedups, crash, err := servingSuite()
	if err != nil {
		return err
	}

	readUnderWrite, readUnderRatios, err := readUnderWriteSuite()
	if err != nil {
		return err
	}

	sharding, shardingSpeedups, err := shardingSuite()
	if err != nil {
		return err
	}

	protocol, protocolRatios, err := protocolSuite()
	if err != nil {
		return err
	}

	replication, replicationGains, replicationLag, replicationFail, err := replicationSuite()
	if err != nil {
		return err
	}

	adaptive, err := adaptiveSuite()
	if err != nil {
		return err
	}

	report := benchReport{
		Meta:               runMeta(),
		Probes:             newSuite(probes),
		Speedups:           map[string]float64{},
		CacheHitRates:      cacheHitRates,
		Maintenance:        newSuite(maintenance),
		Scaling:            newSuite(scaling),
		ScalingSpeedups:    scalingSpeedups,
		Durability:         newSuite(durability),
		DurabilityOverhead: durabilityOverhead,
		Serving:            newSuite(serving),
		ServingSpeedups:    servingSpeedups,
		ServingCrash:       crash,
		ReadUnderWrite:     newSuite(readUnderWrite),
		ReadUnderRatios:    readUnderRatios,
		Sharding:           newSuite(sharding),
		ShardingSpeedups:   shardingSpeedups,
		Protocol:           newSuite(protocol),
		ProtocolRatios:     protocolRatios,
		Replication:        newSuite(replication),
		ReplicationGains:   replicationGains,
		ReplicationLag:     replicationLag,
		ReplicationFail:    replicationFail,
		Adaptive:           newSuite(adaptive),
	}
	byName := make(map[string]benchProbe, len(probes))
	for _, p := range report.Probes.Rows {
		byName[p.Name] = p
	}
	for _, w := range []string{"chain=1000", "chain=10000", "chain-rev=1000", "chain-rev=10000", "star=1000"} {
		ref, okRef := byName["closure/reference/"+w]
		bit, okBit := byName["closure/bitset/"+w]
		if okRef && okBit && bit.NsPerOp > 0 {
			report.Speedups[w] = ref.NsPerOp / bit.NsPerOp
		}
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nspeedups (reference / bitset):\n")
	for _, w := range []string{"chain=1000", "chain=10000", "chain-rev=1000", "chain-rev=10000", "star=1000"} {
		if s, ok := report.Speedups[w]; ok {
			fmt.Printf("  %-20s %.1fx\n", w, s)
		}
	}
	fmt.Printf("cache hit rates:\n")
	for _, k := range []string{"engine-steady-state/closure", "fd/closure", "nullcon/closure"} {
		if r, ok := report.CacheHitRates[k]; ok {
			fmt.Printf("  %-28s %.1f%%\n", k, 100*r)
		}
	}
	fmt.Printf("maintenance (fig. 3 replay):\n")
	for _, row := range report.Maintenance.Rows {
		fmt.Printf("  %-8s inserts=%d declarative=%d triggers=%d\n", row.DB, row.Inserts, row.DeclarativeChecks, row.TriggerFirings)
	}
	fmt.Printf("throughput scaling, 1 → %d workers (90/10 mix):\n", scalingWorkers[len(scalingWorkers)-1])
	for _, shape := range scalingShapes() {
		for _, db := range []string{"base", "merged"} {
			if s, ok := report.ScalingSpeedups[shape.Name+"/"+db]; ok {
				fmt.Printf("  %-22s %.1fx\n", shape.Name+"/"+db, s)
			}
		}
	}
	fmt.Printf("durability throughput (90/10 mix, ops/sec by fsync policy):\n")
	for _, row := range report.Durability.Rows {
		fmt.Printf("  %-8s %-10s %12.0f ops/sec  (appends=%d fsyncs=%d)\n",
			row.DB, row.Policy, row.OpsPerSec, row.WalAppends, row.WalFsyncs)
	}
	fmt.Printf("durability cost vs. no log (ratio > 1 = slower):\n")
	for _, mode := range durabilityModes() {
		for _, db := range []string{"base", "merged"} {
			if c, ok := report.DurabilityOverhead[db+"/"+mode.Name]; ok {
				fmt.Printf("  %-18s %.1fx\n", db+"/"+mode.Name, c)
			}
		}
	}
	fmt.Printf("client/server scaling, %d → %d clients (90/10 mix, ops/sec ratio):\n",
		servingClients[0], servingClients[len(servingClients)-1])
	for _, pol := range servingPolicies() {
		for _, backend := range []string{"embedded", "remote"} {
			if s, ok := servingSpeedups[backend+"/"+pol.Name]; ok {
				fmt.Printf("  %-22s %.1fx\n", backend+"/"+pol.Name, s)
			}
		}
	}
	fmt.Printf("crash probe: acked=%d recovered=%d exact_prefix=%v\n",
		crash.AckedWrites, crash.RecoveredWrites, crash.ExactPrefix)
	fmt.Printf("reader throughput under saturating writer vs. writer-idle:\n")
	for _, db := range []string{"base", "merged"} {
		for _, readers := range p8Readers {
			k := fmt.Sprintf("star8/%s/readers=%d", db, readers)
			if s, ok := report.ReadUnderRatios[k]; ok {
				fmt.Printf("  %-28s %.2fx\n", k, s)
			}
		}
	}
	fmt.Printf("shard-local write scaling (insert-only, ops/sec ratio):\n")
	for _, k := range []string{"local/1to4", "local/1to8", "xshard/1to4", "xshard/1to8"} {
		if s, ok := report.ShardingSpeedups[k]; ok {
			fmt.Printf("  %-14s %.1fx\n", k, s)
		}
	}
	fmt.Printf("wire protocol, binary / json throughput ratio:\n")
	for _, mix := range protocolMixes {
		for _, clients := range protocolClients {
			k := fmt.Sprintf("%s/clients=%d", mix.Name, clients)
			if s, ok := report.ProtocolRatios[k]; ok {
				fmt.Printf("  %-26s %.2fx\n", k, s)
			}
		}
	}
	fmt.Printf("replication read fan-out (aggregate ops/sec vs. primary alone):\n")
	for replicas := 1; replicas <= replFollowers; replicas++ {
		k := fmt.Sprintf("replicas=%d", replicas)
		if s, ok := replicationGains[k]; ok {
			fmt.Printf("  %-14s %.1fx\n", k, s)
		}
	}
	fmt.Printf("replication lag: max=%d records, caught up in %.1fms; failover: acked=%d recovered=%d exact_prefix=%v\n",
		replicationLag.MaxLagRecords, replicationLag.CatchUpMS,
		replicationFail.AckedWrites, replicationFail.RecoveredWrites, replicationFail.ExactPrefix)
	fmt.Printf("wrote %s\n", path)
	return nil
}

// maintenanceProfile replays the deterministic figure 3 state into the base
// schema and into the fully merged COURSE” design, recording how much of the
// constraint maintenance each engine could do declaratively (Prop. 5.1) and
// how much needed trigger firings.
func maintenanceProfile() ([]maintenanceRow, error) {
	s := figures.Fig3()
	st := figures.Fig3State()
	base, err := engine.Open(s)
	if err != nil {
		return nil, err
	}
	if err := base.Load(st); err != nil {
		return nil, fmt.Errorf("benchreport: replaying fig. 3 into the base engine: %w", err)
	}
	m, err := core.MergeSet(s, []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, core.WithName("COURSE''"))
	if err != nil {
		return nil, err
	}
	m.RemoveAll()
	merged, err := engine.Open(m.Schema)
	if err != nil {
		return nil, err
	}
	if err := merged.Load(m.MapState(st)); err != nil {
		return nil, fmt.Errorf("benchreport: replaying fig. 3 into the merged engine: %w", err)
	}
	row := func(name string, db *engine.DB) maintenanceRow {
		st := db.Stats.Snapshot()
		return maintenanceRow{
			DB:                name,
			Inserts:           st.Inserts,
			DeclarativeChecks: st.DeclarativeChecks,
			TriggerFirings:    st.TriggerFirings,
		}
	}
	return []maintenanceRow{row("base", base), row("merged", merged)}, nil
}
