package main

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/workload"
	"repro/pkg/relmerge"
)

// The shard-scaling suite (P9): insert-only workloads against the sharded
// router at 1, 2, 4, and 8 shards, with the same simulated storage access
// delay as the goroutine-scaling suite. Two workloads per shard count:
//
//   - local: fresh-key inserts into an IND-free relation. Each insert routes
//     to its key's shard and takes only that engine's table write lock, so
//     throughput measures how well independent shards overlap their simulated
//     storage accesses — the horizontal write-scaling claim.
//   - xshard: inserts into a referencing relation whose foreign keys target a
//     preloaded directory relation partitioned across every shard. Misses in
//     the inserting shard's local view probe the owning shard (two-step IND
//     check) through the per-shard read-through cache, so the cell prices the
//     cross-shard constraint-checking protocol: remote probes, cache hit
//     rate, and the per-op latency premium over the local workload.
const (
	shardingAccessDelay = 200 * time.Microsecond
	shardingOps         = 320
	shardingWorkers     = 8
	shardingRefKeys     = 96
)

var shardingShards = []int{1, 2, 4, 8}

// shardingRow is one (workload, shards) cell of the grid.
type shardingRow struct {
	Workload     string  `json:"workload"`
	Shards       int     `json:"shards"`
	Workers      int     `json:"workers"`
	Ops          int     `json:"ops"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	P50Ns        int64   `json:"p50_ns"`
	P99Ns        int64   `json:"p99_ns"`
	RemoteProbes int64   `json:"remote_probes"`
	CacheHits    int64   `json:"cache_hits"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// ProbeCostNs is the cross-shard constraint-checking premium of this
	// cell: xshard p50 latency minus the local workload's p50 at the same
	// shard count (zero on local rows by construction).
	ProbeCostNs int64 `json:"probe_cost_ns"`
}

// shardingSchema is the dedicated P9 schema: DIR(DIR.ID) is the referenced
// directory, REF(REF.ID, REF.D) carries a key-based IND into it, and
// LOCAL(LOCAL.ID, LOCAL.V) is dependency-free.
func shardingSchema() *schema.Schema {
	s := schema.New()
	s.AddScheme(schema.NewScheme("DIR",
		[]schema.Attribute{{Name: "DIR.ID", Domain: "id"}}, []string{"DIR.ID"}))
	s.AddScheme(schema.NewScheme("REF",
		[]schema.Attribute{{Name: "REF.ID", Domain: "rid"}, {Name: "REF.D", Domain: "id"}},
		[]string{"REF.ID"}))
	s.AddScheme(schema.NewScheme("LOCAL",
		[]schema.Attribute{{Name: "LOCAL.ID", Domain: "lid"}, {Name: "LOCAL.V", Domain: "v"}},
		[]string{"LOCAL.ID"}))
	s.INDs = append(s.INDs, schema.NewIND("REF", []string{"REF.D"}, "DIR", []string{"DIR.ID"}))
	return s
}

// openShardingSession opens a fresh n-shard router over the P9 schema with
// the directory relation preloaded, so every cell starts from the same state
// and a cold probe cache.
func openShardingSession(n int) (*relmerge.ShardedSession, error) {
	sess, err := relmerge.Open(relmerge.Config{
		Backend:       relmerge.Sharded,
		Schema:        shardingSchema(),
		Shards:        n,
		EngineOptions: []relmerge.EngineOption{relmerge.WithAccessDelay(shardingAccessDelay)},
	})
	if err != nil {
		return nil, err
	}
	dir := make([]relation.Tuple, 0, shardingRefKeys)
	for i := 0; i < shardingRefKeys; i++ {
		dir = append(dir, relation.Tuple{relation.NewString(fmt.Sprintf("d-%d", i))})
	}
	if err := sess.InsertBatch("DIR", dir); err != nil {
		sess.Close()
		return nil, fmt.Errorf("benchreport: preloading the shard directory: %w", err)
	}
	return sess.(*relmerge.ShardedSession), nil
}

// shardingSuite runs the grid and returns the rows plus the 1→4 and 1→8
// shard throughput speedups per workload, keyed "workload/1toN".
func shardingSuite() ([]shardingRow, map[string]float64, error) {
	var rows []shardingRow
	speedups := map[string]float64{}
	base1 := map[string]float64{}
	for _, n := range shardingShards {
		sess, err := openShardingSession(n)
		if err != nil {
			return nil, nil, err
		}
		router := sess.Router()

		local, err := workload.RunInsertsOn(sess, workload.InsertConfig{
			Workers:  shardingWorkers,
			Ops:      shardingOps,
			Relation: "LOCAL",
			Row: func(i int) relation.Tuple {
				return relation.Tuple{relation.NewString(fmt.Sprintf("loc-%d", i)), relation.NewString("v")}
			},
		})
		if err != nil {
			sess.Close()
			return nil, nil, fmt.Errorf("benchreport: sharding local shards=%d: %w", n, err)
		}

		before := router.ProbeStats()
		xshard, err := workload.RunInsertsOn(sess, workload.InsertConfig{
			Workers:  shardingWorkers,
			Ops:      shardingOps,
			Relation: "REF",
			Row: func(i int) relation.Tuple {
				return relation.Tuple{
					relation.NewString(fmt.Sprintf("r-%d", i)),
					relation.NewString(fmt.Sprintf("d-%d", i%shardingRefKeys)),
				}
			},
		})
		after := router.ProbeStats()
		sess.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("benchreport: sharding xshard shards=%d: %w", n, err)
		}

		remote := after.RemoteProbes - before.RemoteProbes
		hits := after.CacheHits - before.CacheHits
		hitRate := 0.0
		if remote+hits > 0 {
			hitRate = float64(hits) / float64(remote+hits)
		}
		probeCost := xshard.P50.Nanoseconds() - local.P50.Nanoseconds()
		rows = append(rows,
			shardingRow{
				Workload: "local", Shards: n, Workers: shardingWorkers,
				Ops: local.Ops, OpsPerSec: local.OpsPerSec,
				P50Ns: local.P50.Nanoseconds(), P99Ns: local.P99.Nanoseconds(),
			},
			shardingRow{
				Workload: "xshard", Shards: n, Workers: shardingWorkers,
				Ops: xshard.Ops, OpsPerSec: xshard.OpsPerSec,
				P50Ns: xshard.P50.Nanoseconds(), P99Ns: xshard.P99.Nanoseconds(),
				RemoteProbes: remote, CacheHits: hits, CacheHitRate: hitRate,
				ProbeCostNs: probeCost,
			})
		for _, w := range []struct {
			name string
			ops  float64
		}{{"local", local.OpsPerSec}, {"xshard", xshard.OpsPerSec}} {
			if n == 1 {
				base1[w.name] = w.ops
			} else if (n == 4 || n == shardingShards[len(shardingShards)-1]) && base1[w.name] > 0 {
				speedups[fmt.Sprintf("%s/1to%d", w.name, n)] = w.ops / base1[w.name]
			}
		}
	}
	return rows, speedups, nil
}

// P9 — shard scaling: the same grid as the JSON suite, printed as a table.
func runP9(int) {
	fmt.Printf("insert-only closed loop, %d workers, %v simulated access, shards 1 → %d\n\n",
		shardingWorkers, shardingAccessDelay, shardingShards[len(shardingShards)-1])
	rows, speedups, err := shardingSuite()
	if err != nil {
		must(err)
	}
	fmt.Printf("%-9s %-8s %-12s %-10s %-10s %-9s %-10s %-9s %s\n",
		"workload", "shards", "ops/sec", "p50", "p99", "probes", "cache-hit", "hit-rate", "probe-cost")
	for _, r := range rows {
		fmt.Printf("%-9s %-8d %-12.0f %-10v %-10v %-9d %-10d %-9.2f %v\n",
			r.Workload, r.Shards, r.OpsPerSec,
			time.Duration(r.P50Ns), time.Duration(r.P99Ns),
			r.RemoteProbes, r.CacheHits, r.CacheHitRate, time.Duration(r.ProbeCostNs))
	}
	fmt.Println("\nshard-local write scaling (ops/sec ratio):")
	for _, k := range []string{"local/1to4", "local/1to8", "xshard/1to4", "xshard/1to8"} {
		if s, ok := speedups[k]; ok {
			fmt.Printf("  %-14s %.1fx\n", k, s)
		}
	}
	fmt.Println("\nlocal inserts route to independent engines, so their simulated storage")
	fmt.Println("accesses overlap across shards; xshard inserts pay the two-step IND probe")
	fmt.Println("on cache misses, then the read-through cache absorbs repeat references.")
}

// runShardProbe is the make-check quick gate for the sharding suite: a small
// cross-shard run that must route without errors, actually exercise the
// remote probe path, and still reject a dangling foreign key.
func runShardProbe() error {
	sess, err := openShardingSession(2)
	if err != nil {
		return err
	}
	defer sess.Close()
	res, err := workload.RunInsertsOn(sess, workload.InsertConfig{
		Workers:  4,
		Ops:      64,
		Relation: "REF",
		Row: func(i int) relation.Tuple {
			return relation.Tuple{
				relation.NewString(fmt.Sprintf("r-%d", i)),
				relation.NewString(fmt.Sprintf("d-%d", i%shardingRefKeys)),
			}
		},
	})
	if err != nil {
		return fmt.Errorf("shard probe: cross-shard inserts: %w", err)
	}
	st := sess.Router().ProbeStats()
	if st.RemoteProbes == 0 && st.CacheHits == 0 {
		return fmt.Errorf("shard probe: no cross-shard IND probes fired; routing is not exercising the probe path")
	}
	var cv *engine.ConstraintViolation
	err = sess.Insert("REF", relation.Tuple{relation.NewString("r-bad"), relation.NewString("d-missing")})
	if !errors.As(err, &cv) || cv.Kind != engine.ForeignKeyViolation {
		return fmt.Errorf("shard probe: dangling foreign key not rejected across shards (err=%v)", err)
	}
	fmt.Printf("shard probe ok: %d cross-shard inserts, %d remote probes, %d cache hits, dangling FK rejected\n",
		res.Ops, st.RemoteProbes, st.CacheHits)
	return nil
}
