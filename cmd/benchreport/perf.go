package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/translate"
	"repro/internal/workload"
	"repro/pkg/relmerge"
)

// P1 — access performance: index lookups per object-profile query on the
// base (one relation per object-set) vs. merged schema, sweeping the number
// of relationship-sets hanging off the center object.
func runP1(rows int) {
	fmt.Printf("object-profile query: fetch the center object and all its relationship parts\n")
	fmt.Printf("%-6s %-18s %-18s %s\n", "n", "base lookups/query", "merged lookups/query", "ratio")
	for _, n := range []int{1, 2, 4, 8, 16} {
		b, err := workload.NewBench(workload.StarEER(n), "E0", rows, int64(41+n))
		must(err)
		b.Base.Stats.Reset()
		b.Merged.Stats.Reset()
		for _, k := range b.Keys {
			b.ProfileBase(k)
			b.ProfileMerged(k)
		}
		q := float64(len(b.Keys))
		base := float64(b.Base.Stats.IndexLookups()) / q
		merged := float64(b.Merged.Stats.IndexLookups()) / q
		fmt.Printf("%-6d %-18.1f %-18.1f %.1fx\n", n, base, merged, base/merged)
	}
	fmt.Println("\npaper's claim: merging reduces the need for joining relations; the base")
	fmt.Println("access path costs one lookup per member relation, the merged path one total.")
}

// P2 — constraint-maintenance overhead: inserts into an only-NNA merged
// relation (star / Prop. 5.2) vs. one carrying a null-existence chain
// (chain / figure 6 regime), counting declarative checks and trigger
// firings.
func runP2(rows int) {
	inserts := rows / 2
	if inserts < 10 {
		inserts = 10
	}
	fmt.Printf("%-22s %-10s %-22s %-16s\n", "schema (n=4)", "inserts", "declarative checks/ins", "triggers/ins")
	for _, c := range []struct {
		label string
		mk    func() (*workload.Bench, error)
	}{
		{"star → only NNA", func() (*workload.Bench, error) {
			return workload.NewBench(workload.StarEER(4), "E0", rows, 17)
		}},
		{"chain → NE chain", func() (*workload.Bench, error) {
			return workload.NewBench(workload.ChainEER(4), "E0", rows, 19)
		}},
	} {
		b, err := c.mk()
		must(err)
		b.Merged.Stats.Reset()
		done := 0
		for i := 0; i < inserts; i++ {
			if err := b.InsertMergedRow(); err == nil {
				done++
			}
		}
		st := b.Merged.Stats.Snapshot()
		fmt.Printf("%-22s %-10d %-22.1f %-16.1f\n", c.label, done,
			float64(st.DeclarativeChecks)/float64(done),
			float64(st.TriggerFirings)/float64(done))
	}
	fmt.Println("\npaper's claim (§5.1): general null constraints need trigger/rule mechanisms,")
	fmt.Println("which are \"tedious and error-prone\"; only-NNA schemas stay declarative.")
}

// P4 — the advisor: the same schema under opposite workloads flips the
// recommendation exactly where the constraint regimes differ.
func runP4(int) {
	chain, err := translate.MS(workload.ChainEER(4))
	must(err)
	star, err := translate.MS(workload.StarEER(4))
	must(err)
	cm := relmerge.CostModel{IndexLookup: 1, DeclarativeCheck: 0.25, TriggerFiring: 50}

	fmt.Println("read-heavy workload (1000 profile queries : 1 insert):")
	for _, s := range []*schema.Schema{star, chain} {
		recs, err := relmerge.AdviseDesign(s, relmerge.Workload{
			ProfileQueries: map[string]float64{"E0": 1000},
			Inserts:        map[string]float64{"E0": 1},
		}, cm)
		must(err)
		fmt.Print(indent(relmerge.DesignReport(recs)))
	}
	fmt.Println("write-only workload (1000 inserts):")
	for _, s := range []*schema.Schema{star, chain} {
		recs, err := relmerge.AdviseDesign(s, relmerge.Workload{
			Inserts: map[string]float64{"E0": 1000},
		}, cm)
		must(err)
		fmt.Print(indent(relmerge.DesignReport(recs)))
	}
	fmt.Println("shape: the only-NNA star merges under every workload; the chain —")
	fmt.Println("whose merge needs trigger-maintained null-existence constraints — flips")
	fmt.Println("to 'keep split' once the workload is write-dominated (§5.1's trade-off).")
}

// P3 — Merge + RemoveAll cost as the merge set grows.
func runP3(int) {
	fmt.Printf("%-6s %-14s %-16s %s\n", "n", "schemes in R̄", "constraints out", "Merge+RemoveAll time")
	for _, n := range []int{2, 4, 8, 16, 32} {
		base, err := translate.MS(workload.StarEER(n))
		must(err)
		names := workload.MergeSetFor(base, "E0")
		start := time.Now()
		m, err := core.Merge(base, names, "MERGED")
		must(err)
		m.RemoveAll()
		elapsed := time.Since(start)
		fmt.Printf("%-6d %-14d %-16d %v\n", n, len(names), len(m.Schema.Nulls)+len(m.Schema.INDs), elapsed)
	}
}
