package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/wal"
	"repro/internal/workload"
)

// The durability suite: the star8 mixed workload of the scaling suite run
// once per durability mode — none (no write-ahead log at all), then the
// three fsync policies — with the base and merged engines logging to
// separate WAL directories under one temp root. No simulated access delay:
// the point is the raw cost the log adds to the write path (one framed
// append per insert, fsynced per policy), so nothing else is slowed down.
const (
	durabilityWorkers = 4
	durabilityOps     = 320
	durabilityRows    = 64
)

// durabilityMode is one column of the suite: a fsync policy, or no log.
type durabilityMode struct {
	Name   string
	Policy wal.SyncPolicy
	WAL    bool
}

func durabilityModes() []durabilityMode {
	return []durabilityMode{
		{"none", wal.SyncNever, false},
		{"never", wal.SyncNever, true},
		{"interval", wal.SyncInterval, true},
		{"always", wal.SyncAlways, true},
	}
}

// durabilityRow is one (design, mode) measurement: workload throughput plus
// the log activity it induced, read back from the wal=<side> metric series.
type durabilityRow struct {
	DB         string  `json:"db"`
	Policy     string  `json:"policy"`
	Workers    int     `json:"workers"`
	Ops        int     `json:"ops"`
	Writes     int     `json:"writes"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50Ns      int64   `json:"p50_ns"`
	P99Ns      int64   `json:"p99_ns"`
	WalAppends int     `json:"wal_appends"`
	WalFsyncs  int     `json:"wal_fsyncs"`
}

// durabilitySuite runs the grid and returns the rows plus the throughput
// cost of each policy relative to the no-log baseline, keyed "db/policy"
// (a ratio of 1.0 means the log is free; 4.0 means a 4x slowdown).
func durabilitySuite() ([]durabilityRow, map[string]float64, error) {
	var rows []durabilityRow
	overhead := map[string]float64{}
	baseline := map[string]float64{}
	for _, mode := range durabilityModes() {
		reg := obs.NewRegistry()
		var dir string
		if mode.WAL {
			var err error
			dir, err = os.MkdirTemp("", "relmerge-durability-*")
			if err != nil {
				return nil, nil, err
			}
		}
		b, err := workload.NewBenchSided(workload.StarEER(8), "E0", durabilityRows, 42,
			func(side workload.Side) []engine.Option {
				opts := []engine.Option{engine.WithRegistry(reg), engine.WithName(side.String())}
				if mode.WAL {
					opts = append(opts, engine.WithDurability(filepath.Join(dir, side.String()), mode.Policy))
				}
				return opts
			})
		if err != nil {
			return nil, nil, fmt.Errorf("benchreport: durability bench (%s): %w", mode.Name, err)
		}
		for _, side := range []workload.Side{workload.SideBase, workload.SideMerged} {
			res, err := b.RunMixed(side, workload.MixedConfig{
				Workers:      durabilityWorkers,
				Ops:          durabilityOps,
				ReadFraction: scalingReadFraction,
				ZipfS:        scalingZipfS,
				Seed:         int64(1000 + side),
			})
			if err != nil {
				return nil, nil, fmt.Errorf("benchreport: durability %s/%v: %w", mode.Name, side, err)
			}
			appends, fsyncs := walCounters(reg, side.String())
			rows = append(rows, durabilityRow{
				DB:         side.String(),
				Policy:     mode.Name,
				Workers:    durabilityWorkers,
				Ops:        res.Ops,
				Writes:     res.Writes,
				OpsPerSec:  res.OpsPerSec,
				P50Ns:      res.P50.Nanoseconds(),
				P99Ns:      res.P99.Nanoseconds(),
				WalAppends: appends,
				WalFsyncs:  fsyncs,
			})
			if !mode.WAL {
				baseline[side.String()] = res.OpsPerSec
			} else if base := baseline[side.String()]; base > 0 && res.OpsPerSec > 0 {
				overhead[side.String()+"/"+mode.Name] = base / res.OpsPerSec
			}
		}
		b.Base.Close()
		b.Merged.Close()
		if dir != "" {
			os.RemoveAll(dir)
		}
	}
	return rows, overhead, nil
}

// walCounters reads one log's append and fsync totals out of the shared
// registry (zero for the no-log baseline, which registered no wal series).
func walCounters(reg *obs.Registry, name string) (appends, fsyncs int) {
	for _, p := range reg.Snapshot() {
		if p.Labels["wal"] != name {
			continue
		}
		switch p.Name {
		case "wal.appends":
			appends = int(p.Value)
		case "wal.fsyncs":
			fsyncs = int(p.Value)
		}
	}
	return appends, fsyncs
}

// P6 — durability overhead: the durability grid, printed as a table.
func runP6(int) {
	fmt.Printf("closed-loop %d%%/%d%% read/write mix, %d workers, no simulated access delay;\n",
		int(scalingReadFraction*100), 100-int(scalingReadFraction*100), durabilityWorkers)
	fmt.Printf("every write is one group-committed log record under the active fsync policy\n\n")
	rows, overhead, err := durabilitySuite()
	if err != nil {
		must(err)
	}
	fmt.Printf("%-8s %-10s %-12s %-12s %-12s %-9s %s\n", "db", "policy", "ops/sec", "p50", "p99", "appends", "fsyncs")
	for _, r := range rows {
		fmt.Printf("%-8s %-10s %-12.0f %-12v %-12v %-9d %d\n",
			r.DB, r.Policy, r.OpsPerSec,
			time.Duration(r.P50Ns), time.Duration(r.P99Ns), r.WalAppends, r.WalFsyncs)
	}
	fmt.Println("\nthroughput cost vs. the no-log baseline (ratio > 1 = slower):")
	for _, mode := range durabilityModes() {
		if !mode.WAL {
			continue
		}
		for _, db := range []string{"base", "merged"} {
			if c, ok := overhead[db+"/"+mode.Name]; ok {
				fmt.Printf("  %-18s %.1fx\n", db+"/"+mode.Name, c)
			}
		}
	}
	fmt.Println("\nfsync=never only buffers to the OS; fsync=interval amortizes one fsync")
	fmt.Println("per window across concurrent writers; fsync=always pays one per record.")
}
