package main

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/relation"
	"repro/internal/state"
	"repro/internal/translate"
	"repro/internal/workload"
	"repro/pkg/relmerge"
)

// The adaptive-merging suite (P12): the live advisor A/B harness. One
// engine serves the star schema's base (unmerged) design under two opposite
// workloads:
//
//   - merge-favorable: object-profile reads, one key lookup per merge-set
//     member. The reads themselves feed the engine's co-access counters —
//     the measured workload IS the advisor's evidence. The advisor must
//     admit the only-NNA star cluster, ApplyRecommendation migrates the
//     live engine, and the same profile re-measured on the merged design
//     shows the §6.1 access-path saving as a p50/p99 drop.
//   - merge-hostile: fresh-key inserts only. No join-shaped reads means no
//     co-access heat, so the advisor must decline (nothing admitted) and
//     the design must not move.
//
// The same simulated access delay as the scaling suite prices each index
// probe, so latency counts probes rather than loopback memory speed.
const (
	adaptiveStarN = 4   // R1..R4 around E0: a 5-lookup base profile
	adaptiveRows  = 256 // preloaded rows per relation
	adaptiveOps   = 400 // measured operations per phase
	adaptiveSeed  = 7
	adaptiveDelay = scalingAccessDelay
)

// adaptivePhase is one measured workload phase on one design.
type adaptivePhase struct {
	Design    string  `json:"design"` // base | merged
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ns     int64   `json:"p50_ns"`
	P99Ns     int64   `json:"p99_ns"`
}

// adaptiveDecision is what the advisor concluded from the measured heat.
type adaptiveDecision struct {
	Recommendations int     `json:"recommendations"`
	Admitted        bool    `json:"admitted"`
	AutoApplicable  bool    `json:"auto_applicable"`
	Applied         bool    `json:"applied"`
	MergedName      string  `json:"merged_name,omitempty"`
	KeyRelation     string  `json:"key_relation,omitempty"`
	CoAccessHits    int64   `json:"co_access_hits"`
	NetBenefit      float64 `json:"net_benefit"`
}

// adaptiveRun is one workload's full before/decide/after record.
type adaptiveRun struct {
	Workload   string           `json:"workload"` // merge-favorable | merge-hostile
	Before     adaptivePhase    `json:"before"`
	Decision   adaptiveDecision `json:"decision"`
	After      *adaptivePhase   `json:"after,omitempty"` // present only when the advisor applied
	SpeedupP50 float64          `json:"speedup_p50,omitempty"`
	SpeedupP99 float64          `json:"speedup_p99,omitempty"`
}

// adaptiveOpen loads a fresh embedded session over the star schema's base
// design, and returns the profile keys and the merge-set member names.
func adaptiveOpen() (*relmerge.EmbeddedSession, []relation.Tuple, []string, error) {
	base, err := translate.MS(workload.StarEER(adaptiveStarN))
	if err != nil {
		return nil, nil, nil, err
	}
	st, err := state.Generate(base, rand.New(rand.NewSource(adaptiveSeed)),
		state.GenOptions{Rows: adaptiveRows, DomainSize: 4 * adaptiveRows})
	if err != nil {
		return nil, nil, nil, err
	}
	sess, err := relmerge.Open(relmerge.Config{
		Schema:        base,
		EngineOptions: []relmerge.EngineOption{relmerge.WithAccessDelay(adaptiveDelay)},
	})
	if err != nil {
		return nil, nil, nil, err
	}
	es := sess.(*relmerge.EmbeddedSession)
	if err := es.Engine().Load(st); err != nil {
		es.Close()
		return nil, nil, nil, err
	}
	rootScheme := base.Scheme("E0")
	rel := st.Relation("E0")
	var keys []relation.Tuple
	for _, tup := range rel.Tuples() {
		keys = append(keys, tup.Project(rel.Positions(rootScheme.PrimaryKey)))
	}
	return es, keys, workload.MergeSetFor(base, "E0"), nil
}

// measure times one operation per loop iteration and folds the latencies
// into a phase row.
func measure(design string, ops int, op func(i int) error) (adaptivePhase, error) {
	lats := make([]time.Duration, 0, ops)
	start := time.Now()
	for i := 0; i < ops; i++ {
		t0 := time.Now()
		if err := op(i); err != nil {
			return adaptivePhase{}, err
		}
		lats = append(lats, time.Since(t0))
	}
	elapsed := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) int64 { return lats[int(p*float64(len(lats)-1))].Nanoseconds() }
	return adaptivePhase{
		Design:    design,
		Ops:       ops,
		OpsPerSec: float64(ops) / elapsed.Seconds(),
		P50Ns:     pct(0.50),
		P99Ns:     pct(0.99),
	}, nil
}

func decisionOf(recs []relmerge.Recommendation, applied bool) adaptiveDecision {
	d := adaptiveDecision{Recommendations: len(recs), Applied: applied}
	if len(recs) == 0 {
		return d
	}
	best := recs[0]
	d.Admitted = best.Admitted
	d.AutoApplicable = best.AutoApplicable
	d.CoAccessHits = best.CoAccessHits
	d.NetBenefit = best.NetBenefit
	if best.Admitted {
		d.MergedName = best.MergedName
		d.KeyRelation = best.KeyRelation
	}
	return d
}

// adaptiveFavorable runs the profile-read workload, lets the advisor decide
// from the heat those reads produced, applies the winning merge to the live
// engine, and re-measures the same logical query on the merged design.
func adaptiveFavorable() (adaptiveRun, error) {
	sess, keys, members, err := adaptiveOpen()
	if err != nil {
		return adaptiveRun{}, err
	}
	defer sess.Close()

	profile := func(i int) error {
		key := keys[i%len(keys)]
		for _, name := range members {
			if _, _, err := sess.Fetch(name, key); err != nil {
				return err
			}
		}
		return nil
	}
	before, err := measure("base", adaptiveOps, profile)
	if err != nil {
		return adaptiveRun{}, err
	}

	recs, err := relmerge.Advise(sess, relmerge.AdvisorConfig{})
	if err != nil {
		return adaptiveRun{}, err
	}
	if len(recs) == 0 || !recs[0].AutoApplicable {
		return adaptiveRun{}, fmt.Errorf("adaptive: profile workload must admit the star cluster, got %+v", recs)
	}
	best := recs[0]
	if err := sess.ApplyRecommendation(context.Background(), best); err != nil {
		return adaptiveRun{}, fmt.Errorf("adaptive: apply: %w", err)
	}

	after, err := measure("merged", adaptiveOps, func(i int) error {
		_, _, err := sess.Fetch(best.MergedName, keys[i%len(keys)])
		return err
	})
	if err != nil {
		return adaptiveRun{}, err
	}
	run := adaptiveRun{
		Workload: "merge-favorable",
		Before:   before,
		Decision: decisionOf(recs, true),
		After:    &after,
	}
	if after.P50Ns > 0 {
		run.SpeedupP50 = float64(before.P50Ns) / float64(after.P50Ns)
	}
	if after.P99Ns > 0 {
		run.SpeedupP99 = float64(before.P99Ns) / float64(after.P99Ns)
	}
	return run, nil
}

// adaptiveHostile runs the insert-only workload: no join-shaped reads, no
// heat, so the advisor must decline and leave the base design standing.
func adaptiveHostile() (adaptiveRun, error) {
	sess, _, _, err := adaptiveOpen()
	if err != nil {
		return adaptiveRun{}, err
	}
	defer sess.Close()

	before, err := measure("base", adaptiveOps, func(i int) error {
		return sess.Insert("E0", relmerge.Tuple{relmerge.NewString(fmt.Sprintf("fresh-%d", i))})
	})
	if err != nil {
		return adaptiveRun{}, err
	}
	recs, err := relmerge.Advise(sess, relmerge.AdvisorConfig{})
	if err != nil {
		return adaptiveRun{}, err
	}
	for _, r := range recs {
		if r.Admitted {
			return adaptiveRun{}, fmt.Errorf("adaptive: insert-only workload must not admit a merge, got %+v", r)
		}
	}
	// The design must not have moved: the base root still answers.
	if _, _, err := sess.Fetch("E0", relmerge.Tuple{relmerge.NewString("fresh-0")}); err != nil {
		return adaptiveRun{}, fmt.Errorf("adaptive: base design gone after declined advice: %w", err)
	}
	return adaptiveRun{
		Workload: "merge-hostile",
		Before:   before,
		Decision: decisionOf(recs, false),
	}, nil
}

func adaptiveSuite() ([]adaptiveRun, error) {
	fav, err := adaptiveFavorable()
	if err != nil {
		return nil, err
	}
	hos, err := adaptiveHostile()
	if err != nil {
		return nil, err
	}
	return []adaptiveRun{fav, hos}, nil
}

// P12 — the live advisor A/B: measured heat admits the merge under the
// read-profile workload (and the migrated design serves the same query
// cheaper); the insert-only workload leaves it cold and declined.
func runP12(int) {
	runs, err := adaptiveSuite()
	must(err)
	fmt.Printf("star n=%d, %d rows, %d ops/phase, %v simulated access per probe\n\n",
		adaptiveStarN, adaptiveRows, adaptiveOps, adaptiveDelay)
	fmt.Printf("%-16s %-8s %-12s %-12s %-12s %s\n", "workload", "design", "ops/sec", "p50", "p99", "decision")
	for _, r := range runs {
		verdict := "declined (cold)"
		if r.Decision.Applied {
			verdict = fmt.Sprintf("applied %s (co-access %d)", r.Decision.MergedName, r.Decision.CoAccessHits)
		}
		fmt.Printf("%-16s %-8s %-12.0f %-12v %-12v %s\n", r.Workload, r.Before.Design,
			r.Before.OpsPerSec, time.Duration(r.Before.P50Ns), time.Duration(r.Before.P99Ns), verdict)
		if r.After != nil {
			fmt.Printf("%-16s %-8s %-12.0f %-12v %-12v p50 %.1fx, p99 %.1fx\n", "", r.After.Design,
				r.After.OpsPerSec, time.Duration(r.After.P50Ns), time.Duration(r.After.P99Ns),
				r.SpeedupP50, r.SpeedupP99)
		}
	}
	fmt.Println("\nshape: the advisor merges exactly when the measured workload is the")
	fmt.Println("join-shaped one the paper's §6.1 saving applies to, and the migrated")
	fmt.Println("engine serves the object profile in one lookup instead of n+1.")
}
