package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/eer"
	"repro/internal/fd"
	"repro/internal/figures"
	"repro/internal/keyrel"
	"repro/internal/nullcon"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/state"
	"repro/internal/translate"
)

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func mustMerge(s *schema.Schema, names []string, name string) *core.MergedScheme {
	m, err := core.Merge(s, names, name)
	must(err)
	return m
}

// E1 — Figure 1: the MS translation (RS), the Teorey baseline (RS'), and a
// mechanical demonstration of the DATE/NR anomaly.
func runE1(int) {
	rs, err := translate.MS(eer.Fig1())
	must(err)
	fmt.Println("RS (figure 1(ii), Markowitz–Shoshani translation):")
	fmt.Println(indent(rs.String()))

	teorey, err := translate.Teorey(eer.Fig1())
	must(err)
	fmt.Println("RS' (Teorey-style translation, WORKS and MANAGES folded into EMPLOYEE):")
	fmt.Println(indent(teorey.String()))

	db := state.New(teorey)
	db.Relation("EMPLOYEE").Add(relation.Tuple{
		relation.NewString("e1"), relation.Null(),
		relation.NewString("1992-02"), relation.Null(),
	})
	fmt.Printf("anomalous state (employee with assignment DATE but no PROJECT):\n")
	fmt.Printf("  consistent with RS' as generated:         %v\n", state.IsConsistent(teorey, db))
	teorey.Nulls = append(teorey.Nulls,
		schema.NewNullExistence("EMPLOYEE", []string{"W.DATE"}, []string{"W.NR"}))
	fmt.Printf("  consistent after adding W.DATE ⊑ W.NR:    %v   (paper: must be false)\n",
		state.IsConsistent(teorey, db))
}

// E2 — Figure 2: the two merges of OFFER and TEACH, plus the synthesis
// baseline of the introduction.
func runE2(int) {
	fmt.Println("synthesis baseline (Beeri–Bernstein–Goodman, equivalent-key merging):")
	schemes := fd.Synthesize(
		[]string{"COURSE", "FACULTY", "DEPARTMENT"},
		[]fd.Dep{
			fd.NewDep([]string{"COURSE"}, []string{"FACULTY"}),
			fd.NewDep([]string{"COURSE"}, []string{"DEPARTMENT"}),
		})
	for _, sch := range schemes {
		fmt.Printf("  ASSIGN-like scheme %v keys %v — no null constraints generated\n", sch.Attrs, sch.Keys)
	}
	fmt.Println()

	m := mustMerge(figures.Fig2(true), []string{"OFFER", "TEACH"}, "ASSIGN")
	fmt.Printf("Merge with key-relation %s (linked figure 2):\n%s\n", m.KeyRelation, indent(m.Schema.String()))

	m2 := mustMerge(figures.Fig2(false), []string{"OFFER", "TEACH"}, "ASSIGN")
	fmt.Printf("Merge with a synthetic key-relation (unlinked figure 2, note the part-null constraint):\n%s", indent(m2.Schema.String()))
}

// E3 — Figure 3.
func runE3(int) {
	fmt.Println(indent(figures.Fig3().String()))
}

// E4 — Figure 4.
func runE4(int) {
	m := mustMerge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	fmt.Println(indent(m.Schema.String()))
	fmt.Printf("all inclusion dependencies key-based: %v   (paper: false — dependency (11))\n",
		core.AllINDsKeyBased(m.Schema))
}

// E5 — Figure 5.
func runE5(int) {
	m := mustMerge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	fmt.Println(indent(m.Schema.String()))
	fmt.Printf("all inclusion dependencies key-based: %v   (paper: true)\n",
		core.AllINDsKeyBased(m.Schema))
}

// E6 — Figure 6.
func runE6(int) {
	m := mustMerge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	removed := m.RemoveAll()
	fmt.Printf("removed key copies of: %v\n\n", removed)
	fmt.Println(indent(m.Schema.String()))

	m4 := mustMerge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH"}, "COURSE'")
	fmt.Printf("O.C.NR removable in COURSE'' (figure 5): %v   (paper: yes)\n", nil == mustMergeRemovable())
	fmt.Printf("O.C.NR removable in COURSE'  (figure 4): %v   (paper: no — ASSIST references it)\n",
		m4.IsRemovable("OFFER") == nil)
}

func mustMergeRemovable() error {
	m := mustMerge(figures.Fig3(), []string{"COURSE", "OFFER", "TEACH", "ASSIST"}, "COURSE''")
	return m.IsRemovable("OFFER")
}

// E7 — Figure 7 and its translation.
func runE7(int) {
	es := eer.Fig7()
	fmt.Printf("EER schema: %d entity-sets, %d relationship-sets, %d ISA links\n",
		len(es.Entities), len(es.Relationships), len(es.ISAs))
	rs, err := translate.MS(es)
	must(err)
	same := rs.SameConstraints(figures.Fig3())
	fmt.Printf("translation equals figure 3: %v\n", same)
}

// E8 — Figure 8 structure table.
func runE8(int) {
	type row struct {
		name   string
		es     *eer.Schema
		object string
		others []string
		cond   func(*eer.Schema, string, []string) error
	}
	rows := []row{
		{"8(i)   hierarchy, multi-attribute specializations", eer.Fig8i(), "VEHICLE", []string{"CAR", "TRUCK"}, (*eer.Schema).CheckCondition1},
		{"8(ii)  relationships with attributes", eer.Fig8ii(), "EMPLOYEE", []string{"WORKS", "BELONGS"}, (*eer.Schema).CheckCondition2},
		{"8(iii) hierarchy, single-attribute specializations", eer.Fig8iii(), "PERSON", []string{"FACULTY", "STUDENT"}, (*eer.Schema).CheckCondition1},
		{"8(iv)  attribute-less many-to-one relationships", eer.Fig8iv(), "COURSE", []string{"OFFER", "TEACH"}, (*eer.Schema).CheckCondition2},
	}
	fmt.Printf("%-52s %-12s %s\n", "structure", "condition", "merged constraints")
	for _, r := range rows {
		condOK := r.cond(r.es, r.object, r.others) == nil
		rs, err := translate.MS(r.es)
		must(err)
		m := mustMerge(rs, append([]string{r.object}, r.others...), "MERGED")
		m.RemoveAll()
		regime := "general null constraints"
		if nullcon.OnlyNNA(m.Schema.NullsOf("MERGED")) {
			regime = "only nulls-not-allowed"
		}
		fmt.Printf("%-52s %-12v %s\n", r.name, condOK, regime)
	}
}

// E9 — property verification of Props. 3.1, 4.1, 4.2.
func runE9(rows int) {
	s := figures.Fig3()
	names := []string{"COURSE", "OFFER", "TEACH", "ASSIST"}
	fmt.Printf("Prop 3.1: key-relations of %v: %v\n", names, keyrel.Find(s, names))

	rng := rand.New(rand.NewSource(1992))
	trials := 50
	okMerge, okRemove, okConverse := 0, 0, 0
	for i := 0; i < trials; i++ {
		db := state.MustGenerate(s, rng, state.GenOptions{
			Rows:    8,
			RowsPer: map[string]int{"OFFER": 5, "TEACH": 3, "ASSIST": 4},
		})
		m := mustMerge(s, names, "COURSE''")
		if m.RoundTrip(db) && state.IsConsistent(m.Schema, m.MapState(db)) {
			okMerge++
		}
		if m.RoundTripMerged(m.MapState(db)) {
			okConverse++
		}
		m.RemoveAll()
		if m.RoundTrip(db) && state.IsConsistent(m.Schema, m.MapState(db)) {
			okRemove++
		}
	}
	fmt.Printf("Prop 4.1: η′∘η = id and η(r) consistent:        %d/%d random states\n", okMerge, trials)
	fmt.Printf("Prop 4.1: η∘η′ = id on merged states:           %d/%d random states\n", okConverse, trials)
	fmt.Printf("Prop 4.2: round trip with removals composed in: %d/%d random states\n", okRemove, trials)

	m := mustMerge(s, names, "COURSE''")
	m.RemoveAll()
	fmt.Printf("Prop 4.1(ii): merged schema in BCNF: %v\n", core.AllBCNF(m.Schema))
	_ = rows
}

// E10 — the Prop. 5.1 / 5.2 condition table over merge sets of figure 3.
func runE10(int) {
	s := figures.Fig3()
	sets := [][]string{
		{"COURSE", "OFFER"},
		{"COURSE", "OFFER", "TEACH"},
		{"COURSE", "OFFER", "TEACH", "ASSIST"},
		{"OFFER", "TEACH", "ASSIST"},
		{"PERSON", "FACULTY", "STUDENT"},
	}
	fmt.Printf("%-34s %-10s %-10s %-22s %s\n", "merge set", "5.1(i)", "5.1(ii)", "5.2", "only-NNA after Remove")
	for _, names := range sets {
		kb, nn := core.Prop51(s, names)
		rk, ok52 := core.Prop52(s, names)
		m := mustMerge(figures.Fig3(), names, "MERGED")
		m.RemoveAll()
		only := nullcon.OnlyNNA(m.Schema.NullsOf("MERGED"))
		p52 := "false"
		if ok52 {
			p52 = "true (Rk=" + rk + ")"
		}
		fmt.Printf("%-34s %-10v %-10v %-22s %v\n", join(names), kb, nn, p52, only)
	}
}

func join(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
		} else {
			cur += string(r)
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
