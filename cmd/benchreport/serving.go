package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/workload"
	"repro/pkg/relmerge"
)

// The client/server suite: the star8 merged design driven through the
// Session API, embedded (in-process engine) and remote (relmerged server
// over loopback TCP), at 1–8 concurrent clients under each durability
// policy. The same simulated access delay as the scaling suite applies, so
// remote scaling measures how well the server's worker pool and write
// coalescing overlap engine work across connections — not raw loopback
// bandwidth. The crash probe arms a WAL failpoint, kills the server
// abruptly mid-stream, reopens the directory, and checks that recovery
// reconstructs exactly the acknowledged-write prefix.
const (
	servingOps           = 320
	servingServerWorkers = 8
	servingCrashFailAt   = 24 // WAL write ordinal armed to fail
)

var servingClients = []int{1, 2, 4, 8}

// servingPolicy is one durability column of the serving grid.
type servingPolicy struct {
	Name   string
	Policy wal.SyncPolicy
	WAL    bool
}

func servingPolicies() []servingPolicy {
	return []servingPolicy{
		{"none", wal.SyncNever, false},
		{"interval", wal.SyncInterval, true},
		{"always", wal.SyncAlways, true},
	}
}

// servingRow is one (backend, policy, clients) measurement.
type servingRow struct {
	Backend   string  `json:"backend"`
	Policy    string  `json:"policy"`
	Clients   int     `json:"clients"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ns     int64   `json:"p50_ns"`
	P99Ns     int64   `json:"p99_ns"`
	Errors    int     `json:"errors"`
}

// servingCrash is the crash probe's verdict: under fsync=always, a killed
// server must recover exactly the writes it acknowledged — none lost, no
// unacknowledged write resurrected.
type servingCrash struct {
	Policy           string `json:"policy"`
	AckedWrites      int    `json:"acked_writes"`
	RecoveredWrites  int    `json:"recovered_writes"`
	AckedMissing     int    `json:"acked_missing"`
	UnackedRecovered int    `json:"unacked_recovered"`
	ExactPrefix      bool   `json:"exact_prefix"`
}

// servingSuite runs the grid and returns the rows, the 1→max-client
// throughput speedup per backend/policy curve, and the crash verdict.
func servingSuite() ([]servingRow, map[string]float64, *servingCrash, error) {
	var rows []servingRow
	speedups := map[string]float64{}
	for _, pol := range servingPolicies() {
		var dir string
		if pol.WAL {
			var err error
			dir, err = os.MkdirTemp("", "relmerge-serving-*")
			if err != nil {
				return nil, nil, nil, err
			}
		}
		b, err := workload.NewBenchSided(workload.StarEER(8), "E0", scalingRows, 42,
			func(side workload.Side) []engine.Option {
				opts := []engine.Option{engine.WithAccessDelay(scalingAccessDelay)}
				if pol.WAL && side == workload.SideMerged {
					opts = append(opts, engine.WithDurability(filepath.Join(dir, "merged"), pol.Policy))
				}
				return opts
			})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("benchreport: serving bench (%s): %w", pol.Name, err)
		}

		// Embedded backend: the Session wraps the engine in-process.
		embedded := relmerge.NewSession(b.Merged)
		if err := servingCurve(&rows, speedups, b, embedded, "embedded", pol.Name); err != nil {
			return nil, nil, nil, err
		}

		// Remote backend: a relmerged server over the same engine, one pooled
		// client connection per workload worker.
		srv := server.New(b.Merged, server.Config{Workers: servingServerWorkers})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, nil, err
		}
		go srv.Serve(ln)
		err = func() error {
			for _, clients := range servingClients {
				sess, err := relmerge.Dial(ln.Addr().String(), relmerge.WithPoolSize(clients))
				if err != nil {
					return fmt.Errorf("benchreport: serving dial (%s): %w", pol.Name, err)
				}
				err = servingPoint(&rows, speedups, b, sess, "remote", pol.Name, clients)
				sess.Close()
				if err != nil {
					return err
				}
			}
			return nil
		}()
		// Graceful shutdown checkpoints and closes the merged engine's WAL.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(ctx)
		cancel()
		b.Base.Close()
		if err != nil {
			return nil, nil, nil, err
		}
		if dir != "" {
			os.RemoveAll(dir)
		}
	}
	crash, err := servingCrashProbe()
	if err != nil {
		return nil, nil, nil, err
	}
	return rows, speedups, crash, nil
}

// servingCurve measures one backend across every client count.
func servingCurve(rows *[]servingRow, speedups map[string]float64, b *workload.Bench, sess relmerge.Session, backend, policy string) error {
	for _, clients := range servingClients {
		if err := servingPoint(rows, speedups, b, sess, backend, policy, clients); err != nil {
			return err
		}
	}
	return nil
}

// servingPoint measures one (backend, policy, clients) cell and maintains
// the 1→max speedup for its curve.
func servingPoint(rows *[]servingRow, speedups map[string]float64, b *workload.Bench, sess relmerge.Session, backend, policy string, clients int) error {
	res, err := b.RunMixedOn(sess, workload.SideMerged, workload.MixedConfig{
		Workers:      clients,
		Ops:          servingOps,
		ReadFraction: scalingReadFraction,
		ZipfS:        scalingZipfS,
		Seed:         int64(10_000 + 100*clients + len(backend)),
	})
	if err != nil {
		return fmt.Errorf("benchreport: serving %s/%s clients=%d: %w", backend, policy, clients, err)
	}
	*rows = append(*rows, servingRow{
		Backend:   backend,
		Policy:    policy,
		Clients:   clients,
		Ops:       res.Ops,
		OpsPerSec: res.OpsPerSec,
		P50Ns:     res.P50.Nanoseconds(),
		P99Ns:     res.P99.Nanoseconds(),
		Errors:    res.Errors,
	})
	curve := backend + "/" + policy
	if clients == servingClients[0] {
		speedups["__base/"+curve] = res.OpsPerSec
	} else if clients == servingClients[len(servingClients)-1] {
		if base := speedups["__base/"+curve]; base > 0 {
			speedups[curve] = res.OpsPerSec / base
		}
		delete(speedups, "__base/"+curve)
	}
	return nil
}

// crashSchema is the minimal schema the crash probe serves: one relation,
// one key attribute, one payload attribute.
func crashSchema() *schema.Schema {
	return schema.New().AddScheme(schema.NewScheme("R",
		[]schema.Attribute{{Name: "R.K", Domain: "k"}, {Name: "R.V", Domain: "v"}},
		[]string{"R.K"}))
}

// servingCrashProbe drives sequential remote inserts at fsync=always into a
// server whose WAL is armed to fail its Nth write, then kills the server
// abruptly (no drain, no checkpoint, no WAL close), reopens the directory,
// and compares what recovery reconstructed against what the client saw
// acknowledged. Under fsync=always the two must match exactly: the armed
// write fails before anything reaches the file, so the failed insert was
// refused (never acknowledged) and every prior insert was fsynced before
// its acknowledgment.
func servingCrashProbe() (*servingCrash, error) {
	dir, err := os.MkdirTemp("", "relmerge-serving-crash-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	s := crashSchema()
	fp := &wal.Failpoint{FailWrite: servingCrashFailAt}
	eng, err := engine.Open(s, engine.WithWALOptions(dir, wal.Options{Policy: wal.SyncAlways, Failpoint: fp}))
	if err != nil {
		return nil, err
	}
	srv := server.New(eng, server.Config{Workers: 2, CoalesceMax: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	sess, err := relmerge.Dial(ln.Addr().String())
	if err != nil {
		return nil, err
	}

	var acked []string
	for i := 0; i < 2*servingCrashFailAt; i++ {
		key := fmt.Sprintf("k%04d", i)
		err := sess.Insert("R", relation.Tuple{relation.NewString(key), relation.NewString("v")})
		if err != nil {
			break // the failpoint fired: this write was refused, not acknowledged
		}
		acked = append(acked, key)
	}
	sess.Close()
	srv.Close() // abrupt kill: in-flight state dropped, WAL left as the crash left it

	re, err := engine.Open(s, engine.WithDurability(dir, wal.SyncAlways))
	if err != nil {
		return nil, err
	}
	defer re.Close()

	crash := &servingCrash{Policy: "always", AckedWrites: len(acked), RecoveredWrites: re.Count("R")}
	recovered := make(map[string]bool, re.Count("R"))
	for _, tup := range re.Relation("R").Tuples() {
		recovered[tup[0].String()] = true
	}
	for _, key := range acked {
		if !recovered[key] {
			crash.AckedMissing++
		}
		delete(recovered, key)
	}
	crash.UnackedRecovered = len(recovered)
	crash.ExactPrefix = crash.AckedMissing == 0 && crash.UnackedRecovered == 0 &&
		crash.RecoveredWrites == crash.AckedWrites
	return crash, nil
}

// P7 — client/server serving: the grid plus the crash probe, as tables.
func runP7(int) {
	fmt.Printf("star8 merged design, %d%%/%d%% mix, Zipf(%.1f) keys, %v simulated access;\n",
		int(scalingReadFraction*100), 100-int(scalingReadFraction*100), scalingZipfS, scalingAccessDelay)
	fmt.Printf("remote = relmerged over loopback TCP, %d server workers, pooled connections\n\n", servingServerWorkers)
	rows, speedups, crash, err := servingSuite()
	if err != nil {
		must(err)
	}
	fmt.Printf("%-10s %-10s %-9s %-12s %-12s %-12s %s\n", "backend", "policy", "clients", "ops/sec", "p50", "p99", "errors")
	for _, r := range rows {
		fmt.Printf("%-10s %-10s %-9d %-12.0f %-12v %-12v %d\n",
			r.Backend, r.Policy, r.Clients, r.OpsPerSec,
			time.Duration(r.P50Ns), time.Duration(r.P99Ns), r.Errors)
	}
	fmt.Printf("\nthroughput scaling, %d → %d clients:\n", servingClients[0], servingClients[len(servingClients)-1])
	for _, pol := range servingPolicies() {
		for _, backend := range []string{"embedded", "remote"} {
			if s, ok := speedups[backend+"/"+pol.Name]; ok {
				fmt.Printf("  %-22s %.1fx\n", backend+"/"+pol.Name, s)
			}
		}
	}
	fmt.Printf("\ncrash probe (fsync=always, WAL write #%d armed to fail, abrupt server kill):\n", servingCrashFailAt)
	fmt.Printf("  acked=%d recovered=%d acked_missing=%d unacked_recovered=%d exact_prefix=%v\n",
		crash.AckedWrites, crash.RecoveredWrites, crash.AckedMissing, crash.UnackedRecovered, crash.ExactPrefix)
	fmt.Println("\nthe remote curve rises with clients because the server's worker pool")
	fmt.Println("overlaps engine work across connections and coalesces concurrent writes")
	fmt.Println("into one group-committed WAL record; fsync=always pays one fsync per")
	fmt.Println("coalesced batch rather than per write.")
}
