package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/state"
	"repro/pkg/relmerge"
)

// runRemoteLoad replays a database state into a running relmerged server:
// dial with the requested wire codec, replay in inclusion-dependency order
// (one atomic InsertBatch per relation), then print the negotiated codec,
// the server's engine counters, and the client-side wire counters. It is
// the CLI counterpart of the in-process metrics replay — same state
// selection (-data, -fig3, or a seeded generated state), different engine.
func runRemoteLoad(w io.Writer, addr string, wire relmerge.Wire, s *schema.Schema, st *state.DB) error {
	reg := obs.NewRegistry()
	sess, err := relmerge.Open(relmerge.Config{
		Backend:  relmerge.Remote,
		Addr:     addr,
		Wire:     wire,
		Registry: reg,
	})
	if err != nil {
		return fmt.Errorf("relmerge: -remote %s: %w", addr, err)
	}
	defer sess.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	start := time.Now()
	if err := relmerge.ReplayState(ctx, sess, s, st); err != nil {
		return err
	}
	elapsed := time.Since(start)

	rs := sess.(*relmerge.RemoteSession)
	codec := "json"
	if rs.WireVersion() > 1 {
		codec = "binary"
	}
	stats, err := sess.Stats()
	if err != nil {
		return err
	}

	var tuples int
	for _, rel := range s.Relations {
		if r := st.Relation(rel.Name); r != nil {
			tuples += r.Len()
		}
	}
	fmt.Fprintf(w, "-- remote load: %s (wire %s, protocol v%d)\n", addr, codec, rs.WireVersion())
	fmt.Fprintf(w, "loaded %d tuples in %v\n", tuples, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "server stats: inserts=%d declarative_checks=%d tuples_scanned=%d\n",
		stats.Inserts, stats.DeclarativeChecks, stats.TuplesScanned)
	for _, p := range reg.Snapshot() {
		fmt.Fprintf(w, "client wire:  %s = %.0f\n", p.Name, p.Value)
	}
	return nil
}
