package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fd"
	"repro/internal/figures"
	"repro/internal/nullcon"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/sdl"
	"repro/internal/state"
	"repro/internal/wal"
	"repro/pkg/relmerge"
)

// replayState picks the database state to replay for the metrics report: the
// -data file when given, the deterministic figure 3 state under -fig3, and a
// seeded generated state otherwise.
func replayState(s *schema.Schema, dataPath string, fig3 bool) (*state.DB, error) {
	if dataPath != "" {
		data, err := os.ReadFile(dataPath)
		if err != nil {
			return nil, err
		}
		return sdl.ParseState(s, string(data))
	}
	if fig3 {
		return figures.Fig3State(), nil
	}
	return state.Generate(s, rand.New(rand.NewSource(1)), state.GenOptions{Rows: 16})
}

// reconciliation compares one engine's registry series against its Stats
// counters; the two are kept in lockstep by the engine, so any mismatch is a
// bug worth surfacing in the report. The comparison uses Stats.Totals() —
// the monotonic process-lifetime counters — rather than the windowed
// accessors, so a Stats.Reset() in the middle of a run (a benchmark starting
// a fresh measurement window, say) cannot drift the report: registry series
// never rewind, and neither do the totals.
type reconciliation struct {
	DB         string `json:"db"`
	Reconciled bool   `json:"reconciled"`
}

func reconcile(reg *obs.Registry, db *engine.DB) reconciliation {
	totals := db.Stats.Totals()
	want := map[string]int{
		"engine.inserts":            totals.Inserts,
		"engine.deletes":            totals.Deletes,
		"engine.updates":            totals.Updates,
		"engine.lookups":            totals.Lookups,
		"engine.declarative_checks": totals.DeclarativeChecks,
		"engine.trigger_firings":    totals.TriggerFirings,
		"engine.index_lookups":      totals.IndexLookups,
		"engine.tuples_scanned":     totals.TuplesScanned,
	}
	ok := true
	for _, p := range reg.Snapshot() {
		w, tracked := want[p.Name]
		if !tracked || p.Labels["db"] != db.MetricName() {
			continue
		}
		if int(p.Value) != w {
			ok = false
		}
	}
	return reconciliation{DB: db.MetricName(), Reconciled: ok}
}

// durableStatus reports one durable engine's lifecycle for the report: what
// Open recovered and that the replay was checkpointed.
type durableStatus struct {
	DB           string `json:"db"`
	Policy       string `json:"policy"`
	Recovered    bool   `json:"recovered"`
	ReplayedOps  int    `json:"replayed_ops"`
	Checkpointed bool   `json:"checkpointed"`
}

// metricsReport replays st into both physical designs — the original schema
// and the merged one, sharing a single registry under db=base / db=merged
// labels — then writes the combined metrics, span, and reconciliation report.
// With durableDir set both engines write-ahead log under it (base/ and
// merged/) at the given fsync policy and the replay ends in a checkpoint; a
// directory holding a previous run's log is recovered instead of replayed.
func metricsReport(w io.Writer, s *schema.Schema, m *core.MergedScheme, st *state.DB, tracer *obs.Tracer, mode, durableDir string, policy wal.SyncPolicy) error {
	reg := obs.NewRegistry()
	fd.RegisterMetrics(reg)
	nullcon.RegisterMetrics(reg)
	// Both replay engines come from the unified relmerge.Open entrypoint —
	// the same constructor the quickstart, the benchmarks, and any embedded
	// caller use — sharing one registry under db=base / db=merged labels.
	openSide := func(name string, sc *schema.Schema) (*relmerge.EmbeddedSession, error) {
		cfg := relmerge.Config{
			Schema:        sc,
			Registry:      reg,
			EngineOptions: []relmerge.EngineOption{relmerge.WithEngineName(name)},
		}
		if durableDir != "" {
			cfg.DurableDir = filepath.Join(durableDir, name)
			cfg.Sync = policy
		}
		sess, err := relmerge.Open(cfg)
		if err != nil {
			return nil, err
		}
		return sess.(*relmerge.EmbeddedSession), nil
	}
	baseSess, err := openSide("base", s)
	if err != nil {
		return err
	}
	defer baseSess.Close()
	mergedSess, err := openSide("merged", m.Schema)
	if err != nil {
		return err
	}
	defer mergedSess.Close()
	base, merged := baseSess.Engine(), mergedSess.Engine()
	// The replay runs through the Session API — the same surface the remote
	// client exposes — so this report measures what any session-based caller
	// would. A recovered engine already holds the previous run's replay
	// (recovery IS the demonstration); loading on top would collide on
	// primary keys.
	ctx := context.Background()
	if !base.Recovered().Recovered {
		if err := relmerge.ReplayState(ctx, baseSess, s, st); err != nil {
			return fmt.Errorf("relmerge: replaying state into the base engine: %w", err)
		}
	}
	if !merged.Recovered().Recovered {
		if err := relmerge.ReplayState(ctx, mergedSess, m.Schema, m.MapState(st)); err != nil {
			return fmt.Errorf("relmerge: replaying state into the merged engine: %w", err)
		}
	}
	var durables []durableStatus
	if durableDir != "" {
		for _, e := range []*engine.DB{base, merged} {
			if err := relmerge.NewSession(e).Checkpoint(); err != nil {
				return fmt.Errorf("relmerge: checkpointing the %s engine: %w", e.MetricName(), err)
			}
			durables = append(durables, durableStatus{
				DB:           e.MetricName(),
				Policy:       policy.String(),
				Recovered:    e.Recovered().Recovered,
				ReplayedOps:  e.Recovered().ReplayedOps,
				Checkpointed: true,
			})
		}
	}

	recs := []reconciliation{reconcile(reg, base), reconcile(reg, merged)}
	switch mode {
	case "json":
		type span struct {
			Name     string            `json:"name"`
			Depth    int               `json:"depth"`
			Duration time.Duration     `json:"duration_ns"`
			Attrs    map[string]string `json:"attrs,omitempty"`
		}
		doc := struct {
			Metrics    []obs.Point      `json:"metrics"`
			Spans      []span           `json:"spans,omitempty"`
			Reconcile  []reconciliation `json:"reconcile"`
			Durability []durableStatus  `json:"durability,omitempty"`
		}{Metrics: reg.Snapshot(), Reconcile: recs, Durability: durables}
		if tracer != nil {
			for _, ev := range tracer.Events() {
				doc.Spans = append(doc.Spans, span{Name: ev.Name, Depth: ev.Depth, Duration: ev.Duration, Attrs: ev.Attrs})
			}
		}
		data, err := json.Marshal(doc)
		if err != nil {
			return err
		}
		var pretty bytes.Buffer
		if err := json.Indent(&pretty, data, "", "  "); err != nil {
			return err
		}
		_, err = fmt.Fprintln(w, pretty.String())
		return err
	case "text":
		if err := reg.WriteText(w); err != nil {
			return err
		}
		if tracer != nil {
			for _, ev := range tracer.Events() {
				fmt.Fprintf(w, "span %s depth=%d duration=%s\n", ev.Name, ev.Depth, ev.Duration)
			}
		}
		for _, r := range recs {
			fmt.Fprintf(w, "reconcile{db=%q} %v\n", r.DB, r.Reconciled)
		}
		for _, d := range durables {
			fmt.Fprintf(w, "durable{db=%q,policy=%q} recovered=%v replayed_ops=%d checkpointed=%v\n",
				d.DB, d.Policy, d.Recovered, d.ReplayedOps, d.Checkpointed)
		}
		return nil
	default:
		return fmt.Errorf("relmerge: unknown -metrics mode %q (want json or text)", mode)
	}
}
