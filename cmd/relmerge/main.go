// Command relmerge applies the relation merging technique of Markowitz
// (ICDE 1992) to a relational schema written in the SDL notation (see
// internal/sdl): it merges a set of relation-schemes with compatible primary
// keys, optionally removes redundant attributes, checks the applicability
// conditions of Propositions 5.1 and 5.2, and prints the result as SDL, in
// the paper's notation, or as DDL for a target dialect.
//
// Usage:
//
//	relmerge -schema schema.sdl -merge COURSE,OFFER,TEACH -name "COURSE'" \
//	         [-remove all|MEMBER,...] [-check] [-out sdl|paper|db2|sybase|ingres]
//	relmerge -fig3 -merge COURSE,OFFER,TEACH -name "COURSE'"   # built-in demo
//	relmerge -schema schema.sdl -plan                          # Prop 5.2 planner
//	relmerge -fig3 -merge COURSE,OFFER -metrics text \
//	         -durable ./wal -fsync always                      # durable replay
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/ddl"
	"repro/internal/diff"
	"repro/internal/figures"
	"repro/internal/nullcon"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/sdl"
	"repro/internal/state"
	"repro/internal/wal"
	"repro/pkg/relmerge"
)

func main() {
	var (
		schemaPath = flag.String("schema", "", "path to an SDL schema file (- for stdin)")
		useFig3    = flag.Bool("fig3", false, "use the paper's figure 3 schema as input")
		mergeList  = flag.String("merge", "", "comma-separated merge set R̄")
		name       = flag.String("name", "MERGED", "name of the merged relation-scheme")
		removeList = flag.String("remove", "", "members whose key copies to remove ('all' for every removable one)")
		check      = flag.Bool("check", false, "report the Prop. 5.1/5.2 conditions for the merge set")
		plan       = flag.Bool("plan", false, "plan and apply all Prop. 5.2 merges instead of a single merge")
		out        = flag.String("out", "paper", "output format: paper, sdl, json, db2, sybase, or ingres")
		dataPath   = flag.String("data", "", "optional data file (insert statements); the state is checked against the input schema and mapped through the merge")
		migrate    = flag.Bool("migrate", false, "also print the SQL data-migration script realizing the η mapping")
		showDiff   = flag.Bool("diff", false, "also print the schema diff (input vs merged)")
		showTrace  = flag.Bool("trace", false, "also print the Definition 4.1/4.3 provenance trace")
		metrics    = flag.String("metrics", "", "append an observability report (json or text): replays -data or a built-in state into base and merged engines sharing one registry")
		durableDir = flag.String("durable", "", "directory for the metrics engines' write-ahead logs: the replay is logged, checkpointed, and recoverable (requires -metrics; a reopened directory recovers instead of replaying)")
		fsyncMode  = flag.String("fsync", "interval", "fsync policy for -durable: always, interval, or never")
		remoteAddr = flag.String("remote", "", "address of a running relmerged server: replay -data (or the built-in state) into it instead of reporting locally")
		wireMode   = flag.String("wire", "binary", "wire codec offered to -remote: binary (protocol v2) or json (v1)")
	)
	flag.Parse()

	fsyncPolicy, err := wal.ParseSyncPolicy(*fsyncMode)
	if err != nil {
		fatal(fmt.Errorf("relmerge: %w", err))
	}
	if *durableDir != "" && *metrics == "" {
		fatal(fmt.Errorf("relmerge: -durable needs -metrics (it makes the replay engines durable)"))
	}

	var tracer *obs.Tracer
	if *metrics != "" {
		if *metrics != "json" && *metrics != "text" {
			fatal(fmt.Errorf("relmerge: unknown -metrics mode %q (want json or text)", *metrics))
		}
		tracer = obs.NewTracer(obs.DefaultTraceCapacity)
	}

	s, err := loadSchema(*schemaPath, *useFig3)
	if err != nil {
		fatal(err)
	}

	// -remote replays the chosen state into a running relmerged server (which
	// must serve this same schema) instead of reporting locally.
	if *remoteAddr != "" {
		wire, err := relmerge.ParseWire(*wireMode)
		if err != nil {
			fatal(fmt.Errorf("relmerge: %w", err))
		}
		st, err := replayState(s, *dataPath, *useFig3)
		if err != nil {
			fatal(err)
		}
		if err := runRemoteLoad(os.Stdout, *remoteAddr, wire, s, st); err != nil {
			fatal(err)
		}
		return
	}

	if *plan {
		clusters := core.Prop52Clusters(s)
		if len(clusters) == 0 {
			fmt.Println("no merge set satisfies the Prop. 5.2 conditions")
			return
		}
		for _, c := range clusters {
			fmt.Printf("merge set (key-relation %s): %s\n", c[0], strings.Join(c, ", "))
		}
		merged, _, err := core.ApplyPlan(s, clusters)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		if err := emit(merged, *out); err != nil {
			fatal(err)
		}
		return
	}

	if *mergeList == "" {
		if err := emit(s, *out); err != nil {
			fatal(err)
		}
		return
	}
	names := splitList(*mergeList)

	if *check {
		kb, nn := core.Prop51(s, names)
		fmt.Printf("Prop 5.1(i)  only key-based inclusion dependencies after merge: %v\n", kb)
		fmt.Printf("Prop 5.1(ii) merged keys free of nulls:                         %v\n", nn)
		if rk, ok := core.Prop52(s, names); ok {
			fmt.Printf("Prop 5.2     only nulls-not-allowed constraints after Remove:  true (key-relation %s)\n", rk)
		} else {
			fmt.Printf("Prop 5.2     only nulls-not-allowed constraints after Remove:  false\n")
		}
	}

	m, err := core.MergeSet(s, names, core.WithName(*name), core.WithTrace(tracer))
	if err != nil {
		fatal(err)
	}
	switch {
	case *removeList == "all":
		removed := m.RemoveAll(core.WithTrace(tracer))
		fmt.Printf("-- removed key copies of: %s\n", strings.Join(removed, ", "))
	case *removeList != "":
		for _, member := range splitList(*removeList) {
			if err := m.Remove(member, core.WithTrace(tracer)); err != nil {
				fatal(err)
			}
		}
	}
	if *check {
		fmt.Printf("merged constraint set only-NNA: %v\n\n", nullcon.OnlyNNA(m.Schema.NullsOf(*name)))
	}
	if err := emit(m.Schema, *out); err != nil {
		fatal(err)
	}
	if *showTrace {
		fmt.Println("\n-- provenance:")
		for _, line := range m.Trace() {
			fmt.Println("  " + line)
		}
	}
	if *showDiff {
		fmt.Println("\n-- schema diff:")
		fmt.Print(diff.Format(diff.Schemas(s, m.Schema)))
	}
	if *migrate {
		fmt.Println()
		fmt.Print(ddl.MigrationSQL(m))
	}
	if *dataPath != "" {
		if err := mapData(s, m, *dataPath); err != nil {
			fatal(err)
		}
	}
	if *metrics != "" {
		st, err := replayState(s, *dataPath, *useFig3)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\n-- observability report:")
		if err := metricsReport(os.Stdout, s, m, st, tracer, *metrics, *durableDir, fsyncPolicy); err != nil {
			fatal(err)
		}
	}
}

// mapData loads a state for the original schema, verifies it, maps it
// through η (and the μ projections), and prints the merged state together
// with a round-trip check.
func mapData(s *schema.Schema, m *core.MergedScheme, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	db, err := sdl.ParseState(s, string(data))
	if err != nil {
		return err
	}
	if err := state.Consistent(s, db); err != nil {
		return fmt.Errorf("relmerge: input state inconsistent: %w", err)
	}
	mapped := m.MapState(db)
	fmt.Println("\n-- mapped state (η):")
	fmt.Print(sdl.PrintState(m.Schema, mapped))
	fmt.Printf("-- mapped state consistent with merged schema: %v\n", state.IsConsistent(m.Schema, mapped))
	fmt.Printf("-- round trip η′∘η restores the input state:   %v\n", m.UnmapState(mapped).Equal(db))
	return nil
}

func loadSchema(path string, fig3 bool) (*schema.Schema, error) {
	if fig3 {
		return figures.Fig3(), nil
	}
	if path == "" {
		return nil, fmt.Errorf("relmerge: need -schema FILE or -fig3")
	}
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return sdl.ParseSchema(string(data))
}

func emit(s *schema.Schema, format string) error {
	switch format {
	case "paper":
		fmt.Print(s.String())
		return nil
	case "sdl":
		fmt.Print(sdl.PrintSchema(s))
		return nil
	case "json":
		data, err := json.Marshal(s)
		if err != nil {
			return err
		}
		var pretty bytes.Buffer
		if err := json.Indent(&pretty, data, "", "  "); err != nil {
			return err
		}
		fmt.Println(pretty.String())
		return nil
	default:
		d, err := ddl.ParseDialect(format)
		if err != nil {
			return err
		}
		out, err := ddl.Generate(s, ddl.Options{Dialect: d})
		fmt.Print(out)
		return err
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
