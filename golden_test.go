package repro

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files from current output")

// The figure reproductions are pinned byte-for-byte: any change to the
// constraint sets Merge/Remove generate for the paper's figures shows up as
// a golden diff. Regenerate with: go test -run Golden -update .
func TestGoldenFigureReports(t *testing.T) {
	bin := buildTool(t, "benchreport")
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E8", "E10"} {
		id := id
		t.Run(id, func(t *testing.T) {
			out, err := run(t, bin, "-only", id)
			if err != nil {
				t.Fatalf("%v\n%s", err, out)
			}
			path := filepath.Join("testdata", strings.ToLower(id)+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if out != string(want) {
				t.Errorf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, out, want)
			}
		})
	}
}
