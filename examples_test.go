package repro

import (
	"os/exec"
	"strings"
	"testing"
)

// The examples are part of the public deliverable: each must build, run, and
// print its headline result.
func TestExamplesRun(t *testing.T) {
	cases := []struct {
		dir  string
		want []string
	}{
		{"quickstart", []string{
			"after Merge (key-relation OFFER)",
			"round trip restored the original state: true",
		}},
		{"university", []string{
			"figure 6 — after Remove",
			"DB2 accepts the figure 6 schema: false",
			"only nulls-not-allowed constraints: true",
			"DB2 accepts it: true",
		}},
		{"eerdesign", []string{
			"condition (2) for PATIENT with {ADMITTED, COVERED, ATTENDS}: true",
			"planner: merge PATIENT, ADMITTED, COVERED, ATTENDS",
			"declaratively maintainable: true",
		}},
		{"perf", []string{
			"access path: object-profile query",
			"only NNA (star)",
		}},
		{"designer", []string{
			"MERGE",
			"Def 4.1 step 1: EVENT+",
			"LEFT OUTER JOIN HOSTED",
			"lookups: base=4 merged=1",
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+c.dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%v\n%s", err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("missing %q in output:\n%s", want, out)
				}
			}
		})
	}
}
