package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// metricsDoc mirrors the relmerge -metrics json document loosely; only the
// fields the golden comparison needs.
type metricsDoc struct {
	Metrics []struct {
		Name   string            `json:"name"`
		Kind   string            `json:"kind"`
		Labels map[string]string `json:"labels,omitempty"`
		Value  float64           `json:"value"`
		Count  uint64            `json:"count"`
	} `json:"metrics"`
	Spans []struct {
		Name  string `json:"name"`
		Depth int    `json:"depth"`
	} `json:"spans"`
	Reconcile []struct {
		DB         string `json:"db"`
		Reconciled bool   `json:"reconciled"`
	} `json:"reconcile"`
}

// normalizeMetrics reduces the -metrics json output to its deterministic
// core: engine/query counter values and histogram observation counts (replay
// of a fixed state), the sorted list of every registered metric name (cache
// counters exist but their values depend on scheduling), span names with
// nesting depth, and the reconciliation verdicts. Timing-dependent fields
// (histogram sums, span durations) are dropped.
func normalizeMetrics(t *testing.T, raw string) string {
	t.Helper()
	var doc metricsDoc
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatalf("parsing -metrics json: %v\n%s", err, raw)
	}
	var lines []string
	names := map[string]bool{}
	for _, m := range doc.Metrics {
		names[m.Name] = true
		deterministic := strings.HasPrefix(m.Name, "engine.") || strings.HasPrefix(m.Name, "query.")
		if !deterministic {
			continue
		}
		// Time-valued gauges (version age) track wall-clock, not the replayed
		// workload; keep their names registered above but drop the values.
		if m.Kind != "histogram" && strings.HasSuffix(m.Name, "_seconds") {
			continue
		}
		label := m.Name
		if db := m.Labels["db"]; db != "" {
			label += fmt.Sprintf("{db=%q}", db)
		}
		switch m.Kind {
		case "histogram":
			lines = append(lines, fmt.Sprintf("%s count=%d", label, m.Count))
		default:
			lines = append(lines, fmt.Sprintf("%s value=%v", label, m.Value))
		}
	}
	sort.Strings(lines)
	var nameList []string
	for n := range names {
		nameList = append(nameList, n)
	}
	sort.Strings(nameList)
	out := "registered: " + strings.Join(nameList, " ") + "\n"
	out += strings.Join(lines, "\n") + "\n"
	for _, sp := range doc.Spans {
		out += fmt.Sprintf("span %s depth=%d\n", sp.Name, sp.Depth)
	}
	for _, r := range doc.Reconcile {
		out += fmt.Sprintf("reconcile %s %v\n", r.DB, r.Reconciled)
	}
	return out
}

// TestRelmergeCLIMetricsGolden pins the deterministic shape of the figure 3
// observability report: run with -update to regenerate the golden file.
func TestRelmergeCLIMetricsGolden(t *testing.T) {
	bin := buildTool(t, "relmerge")
	out, err := run(t, bin, "-fig3", "-merge", "COURSE,OFFER,TEACH,ASSIST",
		"-name", "COURSE''", "-remove", "all", "-metrics", "json")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	_, report, found := strings.Cut(out, "-- observability report:\n")
	if !found {
		t.Fatalf("no observability report in output:\n%s", out)
	}
	got := normalizeMetrics(t, report)

	golden := filepath.Join("testdata", "relmerge_metrics_fig3.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("metrics report drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// The figure 3 merged design needs trigger firings where the base design is
// fully declarative — the Prop. 5.1 regime split the report must surface.
func TestRelmergeCLIMetricsRegimes(t *testing.T) {
	bin := buildTool(t, "relmerge")
	out, err := run(t, bin, "-fig3", "-merge", "COURSE,OFFER,TEACH,ASSIST",
		"-name", "COURSE''", "-remove", "all", "-metrics", "text")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{
		`engine.trigger_firings{db="base"} 0`,
		`engine.trigger_firings{db="merged"} 6`,
		`engine.declarative_checks{db="base"} 50`,
		`engine.declarative_checks{db="merged"} 43`,
		`reconcile{db="base"} true`,
		`reconcile{db="merged"} true`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if out, err := run(t, bin, "-fig3", "-metrics", "yaml"); err == nil {
		t.Errorf("unknown metrics mode should fail:\n%s", out)
	}
}
