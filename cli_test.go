package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the repository's commands into a shared temp dir
// and returns the binary path. Compilation is cached per test binary run;
// the directory is removed by TestMain.
var (
	builtTools = map[string]string{}
	toolDir    string
)

func TestMain(m *testing.M) {
	var err error
	toolDir, err = os.MkdirTemp("", "repro-cli-*")
	if err != nil {
		panic(err)
	}
	code := m.Run()
	os.RemoveAll(toolDir)
	os.Exit(code)
}

func buildTool(t *testing.T, name string) string {
	t.Helper()
	if p, ok := builtTools[name]; ok {
		return p
	}
	bin := filepath.Join(toolDir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	builtTools[name] = bin
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestRelmergeCLIFig4(t *testing.T) {
	bin := buildTool(t, "relmerge")
	out, err := run(t, bin, "-fig3", "-merge", "COURSE,OFFER,TEACH", "-name", "COURSE'", "-check")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{
		"Prop 5.1(i)  only key-based inclusion dependencies after merge: false",
		"COURSE'(C.NR*, O.C.NR, O.D.NAME, T.C.NR, T.F.SSN)",
		"COURSE': NS(O.C.NR,O.D.NAME)",
		"ASSIST[A.C.NR] ⊆ COURSE'[O.C.NR]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRelmergeCLIPlan(t *testing.T) {
	bin := buildTool(t, "relmerge")
	out, err := run(t, bin, "-fig3", "-plan")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "merge set (key-relation OFFER): OFFER, TEACH, ASSIST") {
		t.Errorf("planner output wrong:\n%s", out)
	}
	if !strings.Contains(out, "OFFER'(O.C.NR*, O.D.NAME, T.F.SSN, A.S.SSN)") {
		t.Errorf("merged scheme missing:\n%s", out)
	}
}

func TestRelmergeCLISchemaAndData(t *testing.T) {
	bin := buildTool(t, "relmerge")
	dir := t.TempDir()
	schemaFile := filepath.Join(dir, "fig2.sdl")
	dataFile := filepath.Join(dir, "fig2.data")
	os.WriteFile(schemaFile, []byte(`
relation OFFER (O.CN course_nr, O.DN dept_name) key (O.CN)
relation TEACH (T.CN course_nr, T.FN ssn) key (T.CN)
ind TEACH[T.CN] <= OFFER[O.CN]
nna OFFER (O.CN, O.DN)
nna TEACH (T.CN, T.FN)
`), 0o644)
	os.WriteFile(dataFile, []byte(`
insert OFFER (c1, math)
insert TEACH (c1, smith)
`), 0o644)

	out, err := run(t, bin, "-schema", schemaFile, "-merge", "OFFER,TEACH",
		"-name", "ASSIGN", "-remove", "all", "-data", dataFile)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{
		"insert ASSIGN (c1, math, smith)",
		"round trip η′∘η restores the input state:   true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	// An inconsistent data file is reported.
	badData := filepath.Join(dir, "bad.data")
	os.WriteFile(badData, []byte("insert TEACH (zz, smith)\n"), 0o644)
	out, err = run(t, bin, "-schema", schemaFile, "-merge", "OFFER,TEACH", "-data", badData)
	if err == nil || !strings.Contains(out, "inconsistent") {
		t.Errorf("inconsistent data should fail: %v\n%s", err, out)
	}
}

func TestRelmergeCLIMigrate(t *testing.T) {
	bin := buildTool(t, "relmerge")
	out, err := run(t, bin, "-fig3", "-merge", "COURSE,OFFER,TEACH,ASSIST",
		"-name", "COURSE2", "-remove", "all", "-migrate")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{
		"INSERT INTO COURSE2",
		"LEFT OUTER JOIN OFFER m1 ON m1.O_C_NR = k.C_NR",
		"DROP TABLE ASSIST;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRelmergeCLIErrors(t *testing.T) {
	bin := buildTool(t, "relmerge")
	if out, err := run(t, bin); err == nil {
		t.Errorf("no input should fail:\n%s", out)
	}
	if out, err := run(t, bin, "-fig3", "-merge", "COURSE,NOPE"); err == nil {
		t.Errorf("unknown member should fail:\n%s", out)
	}
	if out, err := run(t, bin, "-fig3", "-out", "oracle"); err == nil {
		t.Errorf("unknown dialect should fail:\n%s", out)
	}
}

func TestSDTCLI(t *testing.T) {
	bin := buildTool(t, "sdt")
	// Option (i): plain translation to DB2 DDL.
	out, err := run(t, bin, "-fig7", "-dialect", "db2")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "CREATE TABLE OFFER") || !strings.Contains(out, "FOREIGN KEY") {
		t.Errorf("DDL output wrong:\n%s", out)
	}
	// Option (ii): auto-merge, fewer tables.
	out2, err := run(t, bin, "-fig7", "-dialect", "db2", "-merge", "auto")
	if err != nil {
		t.Fatalf("%v\n%s", err, out2)
	}
	if !strings.Contains(out2, "-- merging OFFER, TEACH, ASSIST") {
		t.Errorf("auto-merge note missing:\n%s", out2)
	}
	if !strings.Contains(out2, "CREATE TABLE OFFERp") {
		t.Errorf("merged table missing:\n%s", out2)
	}
	if strings.Contains(out2, "CREATE TABLE TEACH ") {
		t.Errorf("TEACH should be merged away:\n%s", out2)
	}

	// The figure 4-style explicit merge needs triggers in SYBASE...
	out3, err := run(t, bin, "-fig7", "-dialect", "sybase",
		"-merge", "COURSE,OFFER,TEACH", "-name", "COURSE2", "-remove", "none")
	if err != nil {
		t.Fatalf("%v\n%s", err, out3)
	}
	if !strings.Contains(out3, "CREATE TRIGGER") {
		t.Errorf("sybase triggers missing:\n%s", out3)
	}
	// ...and is refused by DB2 (exit code 2, unsupported list on stderr).
	out4, err := run(t, bin, "-fig7", "-dialect", "db2",
		"-merge", "COURSE,OFFER,TEACH", "-name", "COURSE2", "-remove", "none")
	if err == nil {
		t.Errorf("DB2 should refuse the figure 4 schema:\n%s", out4)
	}
	if !strings.Contains(out4, "cannot maintain") {
		t.Errorf("unsupported-constraint report missing:\n%s", out4)
	}
}

func TestSDTCLIAdvise(t *testing.T) {
	bin := buildTool(t, "sdt")
	out, err := run(t, bin, "-fig7", "-advise", "-queries", "COURSE=100", "-inserts", "COURSE=2")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "COURSE,OFFER,TEACH,ASSIST") || !strings.Contains(out, "advice") {
		t.Errorf("advise output:\n%s", out)
	}
	if out, err := run(t, bin, "-fig7", "-advise", "-queries", "garbage"); err == nil {
		t.Errorf("bad frequency should fail:\n%s", out)
	}
}

func TestSDTCLITeoreyBaseline(t *testing.T) {
	bin := buildTool(t, "sdt")
	dir := t.TempDir()
	eerFile := filepath.Join(dir, "fig1.eer")
	os.WriteFile(eerFile, []byte(`
entity PROJECT prefix PJ attrs (PJ.NR project_nr) id (PJ.NR) copybase (NR)
entity EMPLOYEE prefix E attrs (E.SSN ssn) id (E.SSN) copybase (SSN)
relationship WORKS prefix W parts (EMPLOYEE many, PROJECT one) attrs (W.DATE date)
relationship MANAGES prefix M parts (EMPLOYEE many, PROJECT one)
`), 0o644)
	out, err := run(t, bin, "-eer", eerFile, "-teorey", "-out", "paper")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "EMPLOYEE(E.SSN*, W.NR, W.DATE, M.NR)") {
		t.Errorf("Teorey folding wrong:\n%s", out)
	}
	if strings.Contains(out, "⊑") && strings.Contains(out, "W.DATE ⊑") {
		t.Errorf("Teorey baseline must not generate null-existence constraints:\n%s", out)
	}
}

func TestBenchreportCLI(t *testing.T) {
	bin := buildTool(t, "benchreport")
	out, err := run(t, bin, "-only", "E10")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "true (Rk=OFFER)") {
		t.Errorf("E10 table wrong:\n%s", out)
	}
	if out, err := run(t, bin, "-only", "NOPE"); err == nil {
		t.Errorf("unknown experiment should fail:\n%s", out)
	}
}
